"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so that editable installs work in offline
environments whose setuptools/pip lack PEP 660 editable-wheel support
(``pip install -e . --no-use-pep517 --no-build-isolation``).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reclaiming the energy of a schedule: models and algorithms "
        "(SPAA'11 reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    # numpy >= 2.0: the SP decomposition's bitset closure uses np.bitwise_count
    install_requires=["numpy>=2.0", "scipy>=1.10", "networkx>=3.0"],
)
