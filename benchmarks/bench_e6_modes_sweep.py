"""E6 — report-style figure: energy ratio vs number of modes.

Regenerates DESIGN.md experiment E6: the mean energy ratio over the
Continuous lower bound for the Discrete heuristic, the Vdd-Hopping LP and
the Incremental approximation, as the number of available modes grows.
Expected shape: every curve decreases towards 1; Vdd-Hopping converges
fastest because it can interpolate between modes.
"""

from conftest import run_once

from repro.experiments.drivers import experiment_e6_modes_sweep


def test_e6_modes_sweep(benchmark):
    table = run_once(benchmark, experiment_e6_modes_sweep,
                     n_tasks=24, mode_counts=(2, 3, 4, 6, 8), slack=1.5,
                     repetitions=2, seed=6)
    vdd = table.column("vdd_ratio")
    disc = table.column("discrete_ratio")
    inc = table.column("incremental_ratio")
    # all ratios are valid (>= 1) and shrink as modes are added
    for series in (vdd, disc, inc):
        assert all(r >= 1.0 - 1e-9 for r in series)
        assert series[-1] <= series[0] + 1e-9
    # with many modes Vdd-Hopping is (weakly) the closest to the bound
    assert vdd[-1] <= disc[-1] + 1e-9
    assert vdd[-1] <= inc[-1] + 1e-9
