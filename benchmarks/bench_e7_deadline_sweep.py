"""E7 — report-style figure: energy ratio vs deadline tightness.

Regenerates DESIGN.md experiment E7: the mean energy ratio over the
Continuous lower bound as the deadline loosens from 1.05x to 4x the minimum
makespan.  Expected shape: the mode-based models track the bound well for
tight-to-moderate deadlines and drift away once the bound drops below the
slowest available mode; the uniform baseline is consistently the worst of
the reclaiming strategies.
"""

from conftest import run_once

from repro.experiments.drivers import experiment_batch_sweep, experiment_e7_deadline_sweep


def test_e7_deadline_sweep(benchmark):
    table = run_once(benchmark, experiment_e7_deadline_sweep,
                     n_tasks=24, slacks=(1.05, 1.2, 1.5, 2.0, 3.0), n_modes=5,
                     repetitions=2, seed=7)
    for column in ("discrete_ratio", "vdd_ratio", "incremental_ratio",
                   "uniform_baseline_ratio"):
        assert all(r >= 1.0 - 1e-9 for r in table.column(column))
    # Vdd-Hopping is never worse than the plain Discrete heuristic
    for v, d in zip(table.column("vdd_ratio"), table.column("discrete_ratio")):
        assert v <= d + 1e-9


def test_e7_deadline_sweep_batch(benchmark):
    """The same deadline axis driven through the batch sweep engine."""
    table = run_once(benchmark, experiment_batch_sweep, case="e7_deadline_batch",
                     graph_classes=("layered",), sizes=(24,),
                     slacks=(1.05, 1.2, 1.5, 2.0, 3.0), alphas=(3.0,),
                     model="discrete", n_modes=5, repetitions=2, seed=7)
    assert all(table.column("ok"))
    assert len(table) == 10  # 5 slacks x 2 repetitions
    assert all(e > 0 for e in table.column("energy"))
    assert all(s > 0 for s in table.column("seconds"))
