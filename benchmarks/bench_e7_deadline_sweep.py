"""E7 — report-style figure: energy ratio vs deadline tightness.

Regenerates DESIGN.md experiment E7: the mean energy ratio over the
Continuous lower bound as the deadline loosens from 1.05x to 4x the minimum
makespan.  Expected shape: the mode-based models track the bound well for
tight-to-moderate deadlines and drift away once the bound drops below the
slowest available mode; the uniform baseline is consistently the worst of
the reclaiming strategies.
"""

from conftest import run_once

from repro.experiments.drivers import experiment_e7_deadline_sweep


def test_e7_deadline_sweep(benchmark):
    table = run_once(benchmark, experiment_e7_deadline_sweep,
                     n_tasks=24, slacks=(1.05, 1.2, 1.5, 2.0, 3.0), n_modes=5,
                     repetitions=2, seed=7)
    for column in ("discrete_ratio", "vdd_ratio", "incremental_ratio",
                   "uniform_baseline_ratio"):
        assert all(r >= 1.0 - 1e-9 for r in table.column(column))
    # Vdd-Hopping is never worse than the plain Discrete heuristic
    for v, d in zip(table.column("vdd_ratio"), table.column("discrete_ratio")):
        assert v <= d + 1e-9
