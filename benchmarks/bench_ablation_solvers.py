"""Ablation — design choices called out in DESIGN.md.

Two ablations of the library's own design decisions (not paper results):

* **LP backend**: the Vdd-Hopping LP solved by every *available* backend
  registered on the modeling layer's registry (HiGHS, the library's
  self-contained two-phase simplex, plus whichever optional cvxpy-family
  backends are installed — the table grows automatically with
  registrations).  All must return the same optimum; HiGHS is expected to
  be the fastest, which is why it is the default backend.
* **Continuous method**: the series-parallel equivalent-load algorithm vs
  the general convex program on the same SP instances.  Both must return
  the same optimum; the closed form is expected to be orders of magnitude
  faster, which is why the dispatcher prefers it.
"""

import time

from conftest import run_once

from repro.core.models import ContinuousModel, VddHoppingModel
from repro.core.problem import MinEnergyProblem
from repro.continuous.general import solve_general_convex
from repro.continuous.series_parallel import solve_series_parallel
from repro.graphs import generators
from repro.graphs.analysis import longest_path_length
from repro.modeling import BACKENDS
from repro.utils.tables import Table
from repro.vdd.lp import solve_vdd_lp


def _ablation_lp_backends(sizes=(6, 10, 14), seed=21) -> Table:
    table = Table(columns=["n_tasks", "backend", "energy",
                           "relative_difference", "seconds",
                           "build_seconds", "solve_seconds"],
                  title="Ablation A1 - Vdd-Hopping LP backend sweep "
                        "(every available registered backend vs HiGHS)")
    backends = BACKENDS.available("lp")
    for i, n in enumerate(sizes):
        graph = generators.layered_dag(n, seed=seed + i)
        model = VddHoppingModel(modes=(0.4, 0.7, 1.0))
        deadline = 1.5 * longest_path_length(graph)
        problem = MinEnergyProblem(graph=graph, deadline=deadline, model=model)
        reference = solve_vdd_lp(problem, backend="highs")
        for backend in backends:
            start = time.perf_counter()
            solution = solve_vdd_lp(problem, backend=backend)
            seconds = time.perf_counter() - start
            diff = abs(solution.energy - reference.energy) / reference.energy
            table.add_row(n, backend, solution.energy, diff, seconds,
                          solution.metadata["build_seconds"],
                          solution.metadata["solve_seconds"])
    return table


def _ablation_sp_vs_convex(sizes=(8, 16, 32), seed=22) -> Table:
    table = Table(columns=["n_tasks", "sp_energy", "convex_energy",
                           "relative_difference", "sp_seconds", "convex_seconds"],
                  title="Ablation A2 - series-parallel closed form vs convex program")
    for i, n in enumerate(sizes):
        graph = generators.random_series_parallel(n, seed=seed + i)
        deadline = 2.0 * longest_path_length(graph)
        problem = MinEnergyProblem(graph=graph, deadline=deadline,
                                   model=ContinuousModel(s_max=10.0))
        start = time.perf_counter()
        sp = solve_series_parallel(problem)
        sp_seconds = time.perf_counter() - start
        start = time.perf_counter()
        convex = solve_general_convex(problem)
        convex_seconds = time.perf_counter() - start
        diff = abs(sp.energy - convex.energy) / convex.energy
        table.add_row(n, sp.energy, convex.energy, diff, sp_seconds, convex_seconds)
    return table


def test_ablation_lp_backends(benchmark):
    table = run_once(benchmark, _ablation_lp_backends)
    assert max(table.column("relative_difference")) < 1e-6


def test_ablation_sp_vs_convex(benchmark):
    table = run_once(benchmark, _ablation_sp_vs_convex)
    assert max(table.column("relative_difference")) < 1e-4
    # the closed form is never slower than the convex program on SP graphs
    for sp_s, cv_s in zip(table.column("sp_seconds"), table.column("convex_seconds")):
        assert sp_s <= cv_s
