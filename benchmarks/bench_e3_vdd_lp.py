"""E3 — Theorem 3: the Vdd-Hopping linear program.

Regenerates DESIGN.md experiment E3: LP optimum vs the Continuous lower
bound and the two-mode-mixing heuristic as the number of modes grows.
Expected shape: the LP tracks the lower bound more and more closely as
modes are added, and the mixing heuristic stays within a few percent of it.
"""

from conftest import run_once

from repro.experiments.drivers import experiment_e3_lp_scaling, experiment_e3_vdd_lp


def test_e3_vdd_lp(benchmark):
    table = run_once(benchmark, experiment_e3_vdd_lp,
                     n_tasks=20, mode_counts=(2, 3, 4, 6, 8), slack=1.5,
                     repetitions=2, seed=3)
    ratios = table.column("lp_over_lb")
    assert all(r >= 1.0 - 1e-9 for r in ratios)
    # more modes bring the LP closer to the continuous bound
    assert ratios[-1] <= ratios[0] + 1e-9
    assert all(m >= 1.0 - 1e-9 for m in table.column("mixing_over_lp"))


def test_e3_vdd_lp_scaling(benchmark):
    """Sparse LP assembly/solve at 1k/5k/10k-task general DAGs (PR 4).

    Emits the peak-RSS and constraint-matrix memory columns; the dense
    equivalent at 10k tasks would be >100 GB, so the ≥50x memory-ratio
    assertion is the acceptance check of the sparse assembly.
    """
    table = run_once(benchmark, experiment_e3_lp_scaling,
                     sizes=(1000, 5000, 10_000), n_modes=5, slack=1.5, seed=3)
    assert table.column("n_tasks") == [1000, 5000, 10_000]
    assert all(r >= 50.0 for r in table.column("memory_ratio"))
    assert all(s > 0 for s in table.column("solve_seconds"))
    # assembly is array concatenation, never the bottleneck
    assert all(a < s for a, s in zip(table.column("assemble_seconds"),
                                     table.column("solve_seconds")))


def test_e3_vdd_lp_scaling_smoke(benchmark):
    """CI-sized variant: one 1,000-task row with the memory columns."""
    table = run_once(benchmark, experiment_e3_lp_scaling,
                     case="e3_lp_scaling_smoke", sizes=(1000,),
                     n_modes=5, slack=1.5, seed=3)
    assert all(r >= 50.0 for r in table.column("memory_ratio"))
    assert all(rss > 0 for rss in table.column("peak_rss_mb"))
