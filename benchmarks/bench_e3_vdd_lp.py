"""E3 — Theorem 3: the Vdd-Hopping linear program.

Regenerates DESIGN.md experiment E3: LP optimum vs the Continuous lower
bound and the two-mode-mixing heuristic as the number of modes grows.
Expected shape: the LP tracks the lower bound more and more closely as
modes are added, and the mixing heuristic stays within a few percent of it.
"""

from conftest import run_once

from repro.experiments.drivers import experiment_e3_vdd_lp


def test_e3_vdd_lp(benchmark):
    table = run_once(benchmark, experiment_e3_vdd_lp,
                     n_tasks=20, mode_counts=(2, 3, 4, 6, 8), slack=1.5,
                     repetitions=2, seed=3)
    ratios = table.column("lp_over_lb")
    assert all(r >= 1.0 - 1e-9 for r in ratios)
    # more modes bring the LP closer to the continuous bound
    assert ratios[-1] <= ratios[0] + 1e-9
    assert all(m >= 1.0 - 1e-9 for m in table.column("mixing_over_lp"))
