"""E1 — Theorem 1: fork closed form vs the convex optimum.

Regenerates the rows of DESIGN.md experiment E1: for fork graphs of growing
size and several deadline slacks, the closed-form energy, the numerical
optimum, their relative difference (must be ~0) and whether the saturated
branch of Theorem 1 was exercised.
"""

from conftest import run_once

from repro.experiments.drivers import experiment_e1_fork_closed_form


def test_e1_fork_closed_form(benchmark):
    table = run_once(benchmark, experiment_e1_fork_closed_form,
                     sizes=(2, 4, 8, 16, 32), slacks=(1.2, 2.0, 4.0), seed=1)
    assert max(table.column("relative_difference")) < 1e-6
    # the tight-deadline rows exercise the s_max-saturated branch
    assert any(table.column("saturated_branch"))
