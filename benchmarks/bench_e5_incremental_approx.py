"""E5 — Theorem 5 / Proposition 1: Incremental approximation ratios.

Regenerates DESIGN.md experiment E5: for several grid increments ``delta``
and accuracy parameters ``K``, the measured approximation ratio against the
Continuous lower bound, compared with the proven
``(1 + delta/s_min)^2 (1 + 1/K)^2`` bound.  The measured ratio must always
stay below the bound, and it shrinks as ``delta`` shrinks.
"""

from conftest import run_once

from repro.experiments.drivers import experiment_e5_incremental_approx


def test_e5_incremental_approx(benchmark):
    table = run_once(benchmark, experiment_e5_incremental_approx,
                     n_tasks=16, deltas=(0.35, 0.175, 0.1, 0.05),
                     k_values=(1, 4, 1000), repetitions=2, seed=5)
    assert all(table.column("within_guarantee"))
    worst = table.column("worst_measured_ratio")
    # finer grids (later rows) achieve better ratios than the coarsest grid
    assert min(worst[-3:]) <= worst[0] + 1e-9
