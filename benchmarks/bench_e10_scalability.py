"""E10 — solver scalability.

Regenerates DESIGN.md experiment E10: wall-clock solver time as a function
of the instance size for each model's default algorithm.  Expected shape:
the Vdd-Hopping LP stays fast (HiGHS scales well on these LPs), while the
general convex solver and the greedy slack-reclamation heuristic dominate
the cost on larger non-series-parallel graphs.

A second case exercises the batch engine on the structured classes the
array-based core makes cheap: deep chains and trees up to 10,000 tasks
solved through the iterative Theorem-2 paths (these used to blow the
recursion limit around 1,000 tasks).

A third case runs the same grid twice through a shared result cache: the
emitted rows are the warm pass, so the ``cache_hit`` column (and the solve
times collapsing to lookups) records the cache's effect in the BENCH JSON.

A fourth case shards one grid three ways (cost-weighted partitioning),
merges the per-shard tables, and records per-shard and merged wall time
against the unsharded baseline — the single-machine proxy for the CI
shard matrix: the slowest shard bounds the distributed wall time, and the
merge itself must cost (near) nothing.
"""

import time

from conftest import run_once

from repro.experiments.drivers import (
    experiment_batch_sweep,
    experiment_e10_scalability,
    experiment_e10_sparse_scaling,
)
from repro.utils.tables import Table


def test_e10_scalability(benchmark):
    table = run_once(benchmark, experiment_e10_scalability,
                     sizes=(10, 20, 40), n_modes=5, slack=1.5, seed=10)
    for column in ("continuous_seconds", "vdd_lp_seconds",
                   "discrete_heuristic_seconds", "incremental_seconds"):
        assert all(v > 0 for v in table.column(column))
    assert table.column("n_tasks") == [10, 20, 40]


def test_e10_deep_graph_batch(benchmark):
    table = run_once(benchmark, experiment_batch_sweep, case="e10_deep_graph_batch",
                     graph_classes=("chain", "tree"), sizes=(1000, 10_000),
                     slacks=(2.0,), alphas=(3.0,), model="continuous",
                     s_max=float("inf"), repetitions=1, seed=10)
    assert all(table.column("ok"))
    # deep graphs must route through the O(n) structured solvers
    assert set(table.column("solver")) <= {"continuous-chain", "continuous-tree"}


def test_e10_sparse_scaling(benchmark):
    """Sparse solver paths at 1k/5k/10k-task general DAGs (PR 4 tentpole).

    The 1k/5k/10k rows sit beyond the dense pipeline's historical
    ``max_dense_tasks`` cap; the small sizes give the dense-vs-sparse
    head-to-head the acceptance criteria ask for.
    """
    table = run_once(benchmark, experiment_e10_sparse_scaling,
                     sizes=(1000, 5000, 10_000), small_sizes=(40, 80, 160),
                     n_modes=5, slack=1.5, seed=10)
    assert table.column("n_tasks") == [40, 80, 160, 1000, 5000, 10_000]
    assert all(v > 0 for v in table.column("convex_sparse_seconds"))
    assert all(v > 0 for v in table.column("discrete_heuristic_seconds"))
    for n, sparse_s, dense_s, sparse_e, dense_e in zip(
            table.column("n_tasks"), table.column("convex_sparse_seconds"),
            table.column("gp_slsqp_seconds"), table.column("convex_sparse_energy"),
            table.column("gp_slsqp_energy")):
        if dense_s is None:
            continue
        # the sparse path must beat the dense one at every overlapping size
        # without giving up solution quality
        assert sparse_s < dense_s, (n, sparse_s, dense_s)
        assert sparse_e <= dense_e * (1.0 + 1e-4), (n, sparse_e, dense_e)


def test_e10_sparse_smoke(benchmark):
    """CI-sized variant of the sparse scaling case (sub-second sizes)."""
    table = run_once(benchmark, experiment_e10_sparse_scaling,
                     case="e10_sparse_smoke",
                     sizes=(500,), small_sizes=(40, 80),
                     n_modes=5, slack=1.5, seed=10)
    assert all(v > 0 for v in table.column("convex_sparse_seconds"))
    dense_over_sparse = [r for r in table.column("dense_over_sparse")
                         if r is not None]
    assert dense_over_sparse and all(r > 1.0 for r in dense_over_sparse)


def _cached_resweep(**kwargs):
    """Run the same sweep grid cold then warm through one result cache."""
    from repro.cache import memory_cache

    cache = memory_cache()
    start = time.perf_counter()
    experiment_batch_sweep(cache=cache, **kwargs)           # cold: fills
    cold_seconds = time.perf_counter() - start
    start = time.perf_counter()
    warm = experiment_batch_sweep(cache=cache, **kwargs)    # warm: all hits
    warm_seconds = time.perf_counter() - start
    from repro.batch import sweep_cache_stats

    stats = sweep_cache_stats(warm)
    warm.title += (f" [cold {cold_seconds:.3f}s -> warm {warm_seconds:.3f}s, "
                   f"warm hit rate {stats['hit_rate']:.0%}]")
    return warm


def test_e10_cached_resweep(benchmark):
    table = run_once(benchmark, _cached_resweep, case="e10_cached_resweep",
                     graph_classes=("layered",), sizes=(24, 48),
                     slacks=(1.2, 2.0), alphas=(3.0,), model="continuous",
                     repetitions=2, seed=10)
    assert all(table.column("ok"))
    assert all(table.column("cache_hit"))  # the emitted pass is fully warm


def _sharded_sweep(*, shards=3, **kwargs):
    """One grid: unsharded baseline, then N shard legs, then the merge."""
    from repro.batch import (ShardDump, dump_payload, merge_shard_dumps,
                             rows_signature)

    table = Table(
        columns=["stage", "shard", "rows", "seconds", "vs_unsharded"],
        title="E10 sharded sweep - per-shard and merged wall time",
    )
    start = time.perf_counter()
    full = experiment_batch_sweep(**kwargs)
    baseline = time.perf_counter() - start
    table.add_row("unsharded", "-", len(full), baseline, 1.0)

    dumps = []
    slowest = 0.0
    for i in range(1, shards + 1):
        start = time.perf_counter()
        leg = experiment_batch_sweep(shard=f"{i}/{shards}", **kwargs)
        seconds = time.perf_counter() - start
        slowest = max(slowest, seconds)
        table.add_row("shard", f"{i}/{shards}", len(leg), seconds,
                      seconds / baseline)
        dumps.append(ShardDump.from_payload(dump_payload(leg),
                                            path=f"<shard {i}/{shards}>"))
    start = time.perf_counter()
    merged = merge_shard_dumps(dumps)
    merge_seconds = time.perf_counter() - start
    table.add_row("merge", "-", len(merged), merge_seconds,
                  merge_seconds / baseline)
    assert rows_signature(merged) == rows_signature(full)
    table.title += (f" [slowest shard {slowest:.3f}s vs unsharded "
                    f"{baseline:.3f}s]")
    return table


def test_e10_sharded_sweep(benchmark):
    table = run_once(benchmark, _sharded_sweep, case="e10_sharded_sweep",
                     graph_classes=("chain", "tree", "layered"),
                     sizes=(16, 48), slacks=(1.2, 2.0), alphas=(3.0,),
                     model="continuous", repetitions=2, seed=10)
    rows = {r[0]: r for r in table.rows if r[0] != "shard"}
    shard_rows = [r for r in table.rows if r[0] == "shard"]
    assert len(shard_rows) == 3
    # shards partition the grid exactly
    assert sum(r[2] for r in shard_rows) == rows["unsharded"][2]
    assert rows["merge"][2] == rows["unsharded"][2]
    # the merge is bookkeeping, not solving
    assert rows["merge"][3] < rows["unsharded"][3]
