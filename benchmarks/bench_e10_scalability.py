"""E10 — solver scalability.

Regenerates DESIGN.md experiment E10: wall-clock solver time as a function
of the instance size for each model's default algorithm.  Expected shape:
the Vdd-Hopping LP stays fast (HiGHS scales well on these LPs), while the
general convex solver and the greedy slack-reclamation heuristic dominate
the cost on larger non-series-parallel graphs.

A second case exercises the batch engine on the structured classes the
array-based core makes cheap: deep chains and trees up to 10,000 tasks
solved through the iterative Theorem-2 paths (these used to blow the
recursion limit around 1,000 tasks).

A third case runs the same grid twice through a shared result cache: the
emitted rows are the warm pass, so the ``cache_hit`` column (and the solve
times collapsing to lookups) records the cache's effect in the BENCH JSON.
"""

import time

from conftest import run_once

from repro.experiments.drivers import experiment_batch_sweep, experiment_e10_scalability


def test_e10_scalability(benchmark):
    table = run_once(benchmark, experiment_e10_scalability,
                     sizes=(10, 20, 40), n_modes=5, slack=1.5, seed=10)
    for column in ("continuous_seconds", "vdd_lp_seconds",
                   "discrete_heuristic_seconds", "incremental_seconds"):
        assert all(v > 0 for v in table.column(column))
    assert table.column("n_tasks") == [10, 20, 40]


def test_e10_deep_graph_batch(benchmark):
    table = run_once(benchmark, experiment_batch_sweep, case="e10_deep_graph_batch",
                     graph_classes=("chain", "tree"), sizes=(1000, 10_000),
                     slacks=(2.0,), alphas=(3.0,), model="continuous",
                     s_max=float("inf"), repetitions=1, seed=10)
    assert all(table.column("ok"))
    # deep graphs must route through the O(n) structured solvers
    assert set(table.column("solver")) <= {"continuous-chain", "continuous-tree"}


def _cached_resweep(**kwargs):
    """Run the same sweep grid cold then warm through one result cache."""
    from repro.cache import memory_cache

    cache = memory_cache()
    start = time.perf_counter()
    experiment_batch_sweep(cache=cache, **kwargs)           # cold: fills
    cold_seconds = time.perf_counter() - start
    start = time.perf_counter()
    warm = experiment_batch_sweep(cache=cache, **kwargs)    # warm: all hits
    warm_seconds = time.perf_counter() - start
    from repro.batch import sweep_cache_stats

    stats = sweep_cache_stats(warm)
    warm.title += (f" [cold {cold_seconds:.3f}s -> warm {warm_seconds:.3f}s, "
                   f"warm hit rate {stats['hit_rate']:.0%}]")
    return warm


def test_e10_cached_resweep(benchmark):
    table = run_once(benchmark, _cached_resweep, case="e10_cached_resweep",
                     graph_classes=("layered",), sizes=(24, 48),
                     slacks=(1.2, 2.0), alphas=(3.0,), model="continuous",
                     repetitions=2, seed=10)
    assert all(table.column("ok"))
    assert all(table.column("cache_hit"))  # the emitted pass is fully warm
