"""E10 — solver scalability.

Regenerates DESIGN.md experiment E10: wall-clock solver time as a function
of the instance size for each model's default algorithm.  Expected shape:
the Vdd-Hopping LP stays fast (HiGHS scales well on these LPs), while the
general convex solver and the greedy slack-reclamation heuristic dominate
the cost on larger non-series-parallel graphs.
"""

from conftest import run_once

from repro.experiments.drivers import experiment_e10_scalability


def test_e10_scalability(benchmark):
    table = run_once(benchmark, experiment_e10_scalability,
                     sizes=(10, 20, 40), n_modes=5, slack=1.5, seed=10)
    for column in ("continuous_seconds", "vdd_lp_seconds",
                   "discrete_heuristic_seconds", "incremental_seconds"):
        assert all(v > 0 for v in table.column(column))
    assert table.column("n_tasks") == [10, 20, 40]
