"""Throughput — the synchronous solve fast path over HTTP.

Drives the ``/v1/solve`` + ``/v1/solve_batch`` routes with concurrent
persistent-connection clients against a :class:`SolverHTTPServer` and
measures end-to-end solves/sec and request latency:

* **solve_batch**: each client POSTs pre-encoded batches of small random
  trees; one request = one codec round-trip = one vectorized batch tick.
  This is the headline number — the acceptance floor is 10k small-graph
  solves/sec through HTTP on a development machine.
* **solve singles**: each client POSTs one instance per request, all
  clients concurrently.  The server's micro-batcher coalesces the
  concurrent singles into shared vector ticks; the recorded mean/max
  occupancy (from ``/v1/batch_stats``) is the direct proof that N
  requests cost far fewer than N solve pipelines.

Standalone mode targets an external server (the CI ``throughput-smoke``
job starts ``repro serve`` and points ``--url`` at it)::

    python benchmarks/bench_throughput.py --clients 4 --batch 512 \
        --requests 8 --singles 500 --floor 1000 [--url http://...]
"""

from __future__ import annotations

import argparse
import http.client
import json
import pathlib
import sys
import threading
import time

_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    try:
        import repro  # noqa: F401
    except ImportError:  # pragma: no cover - only hit without installation
        sys.path.insert(0, str(_SRC))

from repro.api.protocol import SCHEMA_VERSION
from repro.graphs.analysis import longest_path_length
from repro.graphs.generators import random_tree
from repro.graphs.io import graph_to_dict
from repro.utils.tables import Table

S_MAX = 2.0


def _request_wire(n_tasks: int, seed: int, slack: float = 1.8) -> dict:
    graph = random_tree(n_tasks, seed=seed)
    deadline = slack * longest_path_length(
        graph, weight=lambda n: graph.work(n) / S_MAX)
    return {"schema_version": SCHEMA_VERSION, "graph": graph_to_dict(graph),
            "deadline": deadline, "model": "continuous", "s_max": S_MAX,
            "alpha": 3.0, "name": f"bench-{seed}"}


def _post_worker(host: str, port: int, path: str, bodies: list[bytes],
                 latencies: list[float], failures: list[str]) -> None:
    """One client: a persistent connection POSTing pre-encoded bodies."""
    conn = http.client.HTTPConnection(host, port, timeout=60)
    try:
        for body in bodies:
            start = time.perf_counter()
            conn.request("POST", path, body=body,
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            payload = response.read()
            latencies.append(time.perf_counter() - start)
            if response.status != 200:
                failures.append(f"HTTP {response.status}: {payload[:200]!r}")
                continue
            frame = json.loads(payload)
            if frame.get("errors") or frame.get("ok") is False:
                failures.append(f"error rows in {payload[:200]!r}")
    except OSError as exc:
        failures.append(f"{type(exc).__name__}: {exc}")
    finally:
        conn.close()


def _fan_out(host: str, port: int, path: str,
             per_client_bodies: list[list[bytes]]
             ) -> tuple[float, list[float], list[str]]:
    latencies: list[float] = []
    failures: list[str] = []
    threads = [threading.Thread(target=_post_worker,
                                args=(host, port, path, bodies,
                                      latencies, failures))
               for bodies in per_client_bodies]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return time.perf_counter() - start, latencies, failures


def _batch_stats(host: str, port: int) -> dict:
    conn = http.client.HTTPConnection(host, port, timeout=30)
    try:
        conn.request("GET", "/v1/batch_stats")
        return json.loads(conn.getresponse().read())
    finally:
        conn.close()


def _percentile(latencies: list[float], q: float) -> float:
    if not latencies:
        return 0.0
    ranked = sorted(latencies)
    return ranked[min(len(ranked) - 1, int(q * (len(ranked) - 1) + 0.5))]


def throughput_benchmark(*, clients: int = 4, batch: int = 512,
                         requests: int = 8, singles: int = 500,
                         n_tasks: int = 8, url: str = "",
                         seed: int = 11) -> Table:
    """Run both scenarios; return one table row per scenario."""
    table = Table(
        columns=["case", "clients", "batch", "requests", "solves", "seconds",
                 "solves_per_sec", "p50_ms", "p99_ms", "mean_occupancy",
                 "max_occupancy", "occupancy_histogram"],
        title="Throughput - vectorized solve fast path over HTTP "
              f"({n_tasks}-task random trees)")

    server = None
    if url:
        host, _, port_text = url.split("://", 1)[1].partition(":")
        port = int(port_text.rstrip("/") or 80)
    else:
        import tempfile

        from repro.api.client import DiskTransport
        from repro.server.http import SolverHTTPServer

        server = SolverHTTPServer(
            DiskTransport(tempfile.mkdtemp(prefix="repro-bench-jobs-")),
            port=0).start()
        host, port = server.host, server.port
    try:
        # a shared pool of distinct instances, recycled across requests
        pool = [_request_wire(n_tasks, seed + i) for i in range(max(batch, 64))]

        # -- scenario 1: pre-batched requests through /v1/solve_batch ---- #
        body = json.dumps({"schema_version": SCHEMA_VERSION,
                           "requests": pool[:batch],
                           "keep_speeds": False}).encode("utf-8")
        elapsed, latencies, failures = _fan_out(
            host, port, "/v1/solve_batch",
            [[body] * requests for _ in range(clients)])
        if failures:
            raise AssertionError(f"solve_batch failures: {failures[:3]}")
        solves = clients * requests * batch
        table.add_row("solve_batch", clients, batch, clients * requests,
                      solves, elapsed, solves / elapsed,
                      _percentile(latencies, 0.50) * 1e3,
                      _percentile(latencies, 0.99) * 1e3,
                      float(batch), batch, json.dumps({str(batch): clients * requests}))

        # -- scenario 2: concurrent singles coalesced by the batcher ----- #
        bodies = [json.dumps(pool[i % len(pool)]).encode("utf-8")
                  for i in range(singles)]
        per_client = [[bodies[i] for i in range(c, singles, clients)]
                      for c in range(clients)]
        before = _batch_stats(host, port)
        elapsed, latencies, failures = _fan_out(
            host, port, "/v1/solve", per_client)
        if failures:
            raise AssertionError(f"solve failures: {failures[:3]}")
        after = _batch_stats(host, port)
        ticks = after["ticks"] - before["ticks"]
        submitted = after["submitted"] - before["submitted"]
        histogram = {
            size: after["occupancy"].get(size, 0) - before["occupancy"].get(size, 0)
            for size in after["occupancy"]
            if after["occupancy"].get(size, 0) > before["occupancy"].get(size, 0)}
        table.add_row("solve_singles", clients, 1, singles, singles, elapsed,
                      singles / elapsed,
                      _percentile(latencies, 0.50) * 1e3,
                      _percentile(latencies, 0.99) * 1e3,
                      (submitted / ticks) if ticks else 0.0,
                      max((int(k) for k in histogram), default=0),
                      json.dumps(histogram, sort_keys=True))
    finally:
        if server is not None:
            server.shutdown()
    return table


def test_throughput_smoke(benchmark):
    from conftest import run_once

    table = run_once(benchmark, throughput_benchmark, case="throughput_smoke",
                     clients=4, batch=64, requests=4, singles=200, seed=11)
    rates = dict(zip(table.column("case"), table.column("solves_per_sec")))
    assert rates["solve_batch"] >= 1_000, rates
    occupancy = dict(zip(table.column("case"), table.column("mean_occupancy")))
    assert occupancy["solve_singles"] > 1.0, occupancy


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--batch", type=int, default=512,
                        help="instances per solve_batch request")
    parser.add_argument("--requests", type=int, default=8,
                        help="solve_batch requests per client")
    parser.add_argument("--singles", type=int, default=500,
                        help="total single /v1/solve requests")
    parser.add_argument("--n-tasks", type=int, default=8)
    parser.add_argument("--url", default="",
                        help="target an already-running repro serve "
                             "(default: start an in-process server)")
    parser.add_argument("--floor", type=float, default=0.0,
                        help="fail unless solve_batch reaches this many "
                             "solves/sec")
    parser.add_argument("--min-occupancy", type=float, default=0.0,
                        help="fail unless the singles scenario coalesces to "
                             "this mean batch occupancy")
    parser.add_argument("--out", default="",
                        help="write BENCH_throughput.json here (default: "
                             "benchmarks/results/)")
    args = parser.parse_args(argv)

    table = throughput_benchmark(clients=args.clients, batch=args.batch,
                                 requests=args.requests, singles=args.singles,
                                 n_tasks=args.n_tasks, url=args.url)
    print(table.to_ascii())

    out_dir = pathlib.Path(args.out) if args.out else (
        pathlib.Path(__file__).resolve().parent / "results")
    out_dir.mkdir(parents=True, exist_ok=True)
    payload = {
        "case": "throughput",
        "title": table.title,
        "params": {k: repr(v) for k, v in sorted(vars(args).items())},
        "columns": list(table.columns),
        "rows": [list(row) for row in table.rows],
    }
    (out_dir / "BENCH_throughput.json").write_text(
        json.dumps(payload, indent=2, default=str) + "\n", encoding="utf-8")

    rates = dict(zip(table.column("case"), table.column("solves_per_sec")))
    occupancy = dict(zip(table.column("case"), table.column("mean_occupancy")))
    print(f"solve_batch: {rates['solve_batch']:.0f} solves/sec; "
          f"singles: {rates['solve_singles']:.0f} solves/sec at mean "
          f"occupancy {occupancy['solve_singles']:.1f}")
    if args.floor and rates["solve_batch"] < args.floor:
        print(f"FAIL: solve_batch throughput {rates['solve_batch']:.0f} "
              f"< floor {args.floor:.0f}", file=sys.stderr)
        return 1
    if args.min_occupancy and occupancy["solve_singles"] < args.min_occupancy:
        print(f"FAIL: singles mean occupancy {occupancy['solve_singles']:.2f} "
              f"< {args.min_occupancy}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
