"""E2 — Theorem 2: tree and series-parallel polynomial algorithms.

Regenerates DESIGN.md experiment E2: the equivalent-load algorithms must
match the convex optimum on random trees and SP graphs of growing size.
"""

from conftest import run_once

from repro.experiments.drivers import experiment_e2_tree_sp


def test_e2_tree_sp(benchmark):
    table = run_once(benchmark, experiment_e2_tree_sp,
                     sizes=(8, 16, 32), slack=2.0, seed=2)
    assert max(table.column("relative_difference")) < 1e-4
    assert set(table.column("graph_class")) == {"tree", "series_parallel"}
