"""E9 — report-style table: energy reclaimed from the no-reclaim schedule.

Regenerates DESIGN.md experiment E9 (the paper's motivation quantified):
the fraction of the all-at-s_max energy saved by each strategy, as the
deadline slack grows.  Expected shape: savings grow with the slack roughly
like ``1 - 1/slack^2``; Continuous reclaims the most, followed by
Vdd-Hopping, the Discrete heuristic, the Incremental approximation, and the
uniform-scaling baseline reclaims the least of the model-aware strategies.
"""

from conftest import run_once

from repro.experiments.drivers import experiment_e9_reclaiming_gain


def test_e9_reclaiming_gain(benchmark):
    table = run_once(benchmark, experiment_e9_reclaiming_gain,
                     n_tasks=24, n_modes=5, slacks=(1.2, 1.5, 2.0, 3.0),
                     repetitions=2, seed=9)
    columns = list(table.columns)
    for row in table.rows:
        cont = row[columns.index("continuous_saving")]
        assert 0.0 <= cont < 1.0
        for label in ("vdd_saving", "discrete_saving", "incremental_saving"):
            assert cont >= row[columns.index(label)] - 1e-9
    # savings grow as the deadline loosens
    cont_savings = table.column("continuous_saving")
    assert cont_savings[-1] >= cont_savings[0]
