"""E8 — report-style table: per-graph-class comparison.

Regenerates DESIGN.md experiment E8: for each structural graph class
(chain, fork, tree, series-parallel, layered DAG) the mean Continuous
optimum and the energy ratios of the mode-based models.  Expected shape:
chains are the easiest class (a single common speed is optimal and modes
round it well); layered DAGs with heterogeneous per-task speeds show the
largest Discrete/Incremental ratios; Vdd-Hopping stays close to the bound
on every class.
"""

from conftest import run_once

from repro.experiments.drivers import experiment_e8_graph_classes


def test_e8_graph_classes(benchmark):
    table = run_once(benchmark, experiment_e8_graph_classes,
                     n_tasks=24, n_modes=5, slack=1.5, repetitions=2, seed=8)
    assert table.column("graph_class") == ["chain", "fork", "tree",
                                           "series_parallel", "layered"]
    for v, d in zip(table.column("vdd_ratio"), table.column("discrete_ratio")):
        assert 1.0 - 1e-9 <= v <= d + 1e-9
