"""Shared helpers for the benchmark harness.

Each ``bench_eN_*.py`` file regenerates one experiment of the index in
DESIGN.md section 4 (and EXPERIMENTS.md).  The benchmarks use
``benchmark.pedantic`` with a single round so that the heavy experiment
drivers run exactly once per session; the resulting table is printed so the
rows the "paper table/figure" would contain appear in the benchmark output.
"""

from __future__ import annotations

import pathlib
import sys

_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    try:
        import repro  # noqa: F401
    except ImportError:  # pragma: no cover - only hit without installation
        sys.path.insert(0, str(_SRC))


def run_once(benchmark, fn, **kwargs):
    """Run an experiment driver exactly once under pytest-benchmark and print it."""
    table = benchmark.pedantic(lambda: fn(**kwargs), rounds=1, iterations=1)
    print()
    print(table.to_ascii())
    return table
