"""Shared helpers for the benchmark harness.

Each ``bench_eN_*.py`` file regenerates one experiment of the index in
DESIGN.md section 4 (and EXPERIMENTS.md).  The benchmarks use
``benchmark.pedantic`` with a single round so that the heavy experiment
drivers run exactly once per session; the resulting table is printed so the
rows the "paper table/figure" would contain appear in the benchmark output.

Reproducibility: every case re-seeds the global ``random`` and NumPy RNGs
from its experiment seed before running (the drivers thread explicit seeds
everywhere, so this is belt-and-braces against stray global draws), and the
produced table is also written as machine-readable JSON rows to
``benchmarks/results/BENCH_<case>.json`` (directory overridable with the
``REPRO_BENCH_DIR`` environment variable, set it to ``0`` to disable) so
benchmark trajectories can be diffed across PRs.
"""

from __future__ import annotations

import json
import os
import pathlib
import random
import sys

import numpy as np

_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    try:
        import repro  # noqa: F401
    except ImportError:  # pragma: no cover - only hit without installation
        sys.path.insert(0, str(_SRC))


def _emit_json(name: str, table, kwargs: dict) -> None:
    """Write the table as one JSON document per benchmark case."""
    target = os.environ.get("REPRO_BENCH_DIR", "")
    if target == "0":
        return
    out_dir = pathlib.Path(target) if target else (
        pathlib.Path(__file__).resolve().parent / "results")
    out_dir.mkdir(parents=True, exist_ok=True)
    payload = {
        "case": name,
        "title": table.title,
        "params": {k: repr(v) for k, v in sorted(kwargs.items())},
        "columns": list(table.columns),
        "rows": [[None if v is None else v for v in row] for row in table.rows],
    }
    path = out_dir / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, default=str) + "\n",
                    encoding="utf-8")


def run_once(benchmark, fn, *, case: str | None = None, **kwargs):
    """Run an experiment driver exactly once under pytest-benchmark.

    Seeds the global RNGs from the case's ``seed`` kwarg, prints the table,
    and persists its rows as ``BENCH_<case>.json`` for cross-PR comparison.
    """
    name = (case or fn.__name__.removeprefix("experiment_")).lstrip("_")
    seed = int(kwargs.get("seed", 0))
    random.seed(seed)
    np.random.seed(seed % 2**32)
    table = benchmark.pedantic(lambda: fn(**kwargs), rounds=1, iterations=1)
    print()
    print(table.to_ascii())
    _emit_json(name, table, kwargs)
    return table
