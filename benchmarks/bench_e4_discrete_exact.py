"""E4 — Theorem 4: NP-completeness in practice.

Regenerates DESIGN.md experiment E4: the node count of exact branch and
bound grows rapidly with the instance size (the practical face of
NP-completeness), the heuristics stay close to the exact optimum on the
instances where the optimum is computable, and the 2-Partition reduction
gadget answers every instance consistently with a brute-force check.
"""

from conftest import run_once

from repro.experiments.drivers import experiment_e4_discrete_exact


def test_e4_discrete_exact(benchmark):
    table = run_once(benchmark, experiment_e4_discrete_exact,
                     sizes=(6, 8, 10, 12), repetitions=3, seed=4)
    nodes = table.column("mean_nodes_explored")
    assert nodes[-1] > nodes[0]  # exponential-ish growth
    assert all(a == 1.0 for a in table.column("two_partition_agreement"))
    assert all(r >= 1.0 - 1e-9 for r in table.column("heuristic_over_exact"))
