"""Compact binary row codec for batch solve responses.

``POST /v1/solve_batch`` answers with thousands of tiny result rows; as
per-row JSON objects they cost more to serialise and parse than the solves
themselves did.  This codec packs the numeric columns of all rows into one
base64 float64 matrix inside a single JSON frame:

- ``data``: little-endian float64, row-major ``count x len(columns)``;
  ``None`` travels as NaN, booleans as 0.0/1.0;
- ``solvers``: legend of solver names, indexed by the ``solver_id`` column;
- ``names``: per-row instance names (plain JSON — tiny next to the matrix);
- ``errors``: sparse ``[index, error_type, message]`` triples for failed
  rows;
- ``speeds`` (optional): one flat float64 vector of per-task speeds for all
  rows plus an int64 offset vector.  Task *names* never travel — the client
  reattaches them from its own request graphs, whose task order the server
  preserved.

The frame is versioned with the wire protocol's ``schema_version`` and
decodes into :class:`~repro.api.protocol.SolveResponse` rows.
"""

from __future__ import annotations

import base64
from typing import Any, Mapping, Sequence

import numpy as np

from repro.api.protocol import SCHEMA_VERSION, SolveResponse, check_schema_version
from repro.utils.errors import TransportError

#: Numeric column layout of the packed matrix (stable within a schema
#: version; decoders reject frames with a different layout).
BATCH_COLUMNS = ("ok", "n_tasks", "energy", "makespan", "optimal",
                 "lower_bound", "seconds", "solver_id")

#: Frame discriminator, so a batch response is self-describing.
FRAME_KIND = "solve-batch-rows"


def _b64(array: np.ndarray) -> str:
    return base64.b64encode(np.ascontiguousarray(array).tobytes()).decode("ascii")


def _unb64(data: Any, dtype: str, what: str) -> np.ndarray:
    try:
        return np.frombuffer(base64.b64decode(data, validate=True),
                             dtype=dtype)
    except (TypeError, ValueError) as exc:
        raise TransportError(f"malformed batch frame: bad {what}: {exc}") from exc


def _cell(value: float | bool | None) -> float:
    if value is None:
        return np.nan
    return float(value)


def encode_rows(rows: Sequence[Any], *,
                speeds_vectors: Sequence[np.ndarray | None] | None = None
                ) -> dict[str, Any]:
    """Pack result rows (``BatchResult`` or ``SolveResponse``) into a frame.

    ``speeds_vectors`` aligns with ``rows``: per-row float64 speed vectors
    in the row's task order, or ``None`` for rows without speeds (failed
    instances, ``keep_speeds=False``).  When omitted entirely, no speeds
    frame is emitted.
    """
    count = len(rows)
    matrix = np.full((count, len(BATCH_COLUMNS)), np.nan, dtype="<f8")
    solvers: list[str] = []
    solver_id: dict[str, int] = {}
    names: list[str] = []
    errors: list[list[Any]] = []
    for i, row in enumerate(rows):
        names.append(row.name)
        matrix[i, 0] = 1.0 if row.ok else 0.0
        matrix[i, 1] = row.n_tasks
        matrix[i, 2] = _cell(row.energy)
        matrix[i, 3] = _cell(row.makespan)
        matrix[i, 4] = _cell(row.optimal)
        matrix[i, 5] = _cell(row.lower_bound)
        matrix[i, 6] = row.seconds
        if row.solver is not None:
            sid = solver_id.setdefault(row.solver, len(solvers))
            if sid == len(solvers):
                solvers.append(row.solver)
            matrix[i, 7] = sid
        if not row.ok:
            errors.append([i, row.error_type or "", row.error or ""])

    frame: dict[str, Any] = {
        "schema_version": SCHEMA_VERSION,
        "kind": FRAME_KIND,
        "count": count,
        "columns": list(BATCH_COLUMNS),
        "data": _b64(matrix),
        "solvers": solvers,
        "names": names,
        "errors": errors,
    }
    if speeds_vectors is not None:
        ptr = np.zeros(count + 1, dtype="<i8")
        chunks: list[np.ndarray] = []
        for i, vec in enumerate(speeds_vectors):
            length = 0 if vec is None else int(vec.shape[0])
            ptr[i + 1] = ptr[i] + length
            if length:
                chunks.append(np.ascontiguousarray(vec, dtype="<f8"))
        flat = np.concatenate(chunks) if chunks else np.empty(0, dtype="<f8")
        frame["speeds"] = {"ptr": _b64(ptr), "data": _b64(flat)}
    return frame


def decode_rows(frame: Any, *,
                task_names: Sequence[Sequence[str] | None] | None = None
                ) -> list[SolveResponse]:
    """Unpack a batch frame into :class:`SolveResponse` rows.

    ``task_names`` aligns with the rows and supplies each instance's task
    order (the client's own request graphs); required to materialise the
    ``speeds`` dicts when the frame carries a speeds vector.
    """
    if not isinstance(frame, Mapping) or frame.get("kind") != FRAME_KIND:
        raise TransportError(
            f"malformed batch frame: expected kind {FRAME_KIND!r}")
    check_schema_version(frame, what="batch frame")
    if list(frame.get("columns") or []) != list(BATCH_COLUMNS):
        raise TransportError(
            f"malformed batch frame: column layout {frame.get('columns')!r} "
            f"does not match {list(BATCH_COLUMNS)!r}")
    try:
        count = int(frame["count"])
        names = [str(n) for n in frame.get("names") or []]
        solvers = [str(s) for s in frame.get("solvers") or []]
    except (TypeError, ValueError, KeyError) as exc:
        raise TransportError(f"malformed batch frame: {exc}") from exc
    matrix = _unb64(frame.get("data"), "<f8", "data matrix")
    if matrix.shape[0] != count * len(BATCH_COLUMNS):
        raise TransportError(
            f"malformed batch frame: data matrix holds {matrix.shape[0]} "
            f"cells, expected {count}x{len(BATCH_COLUMNS)}")
    matrix = matrix.reshape(count, len(BATCH_COLUMNS))
    if len(names) != count:
        raise TransportError(
            f"malformed batch frame: {len(names)} names for {count} rows")

    error_of: dict[int, tuple[str, str]] = {}
    for entry in frame.get("errors") or []:
        try:
            error_of[int(entry[0])] = (str(entry[1]), str(entry[2]))
        except (TypeError, ValueError, IndexError) as exc:
            raise TransportError(
                f"malformed batch frame: bad error entry {entry!r}") from exc

    speeds_ptr = speeds_flat = None
    speeds_frame = frame.get("speeds")
    if speeds_frame is not None:
        if not isinstance(speeds_frame, Mapping):
            raise TransportError("malformed batch frame: speeds is not an object")
        speeds_ptr = _unb64(speeds_frame.get("ptr"), "<i8", "speeds offsets")
        speeds_flat = _unb64(speeds_frame.get("data"), "<f8", "speeds vector")
        if speeds_ptr.shape[0] != count + 1 \
                or (count and speeds_ptr[-1] != speeds_flat.shape[0]):
            raise TransportError("malformed batch frame: speeds offsets "
                                 "do not tile the speeds vector")

    rows: list[SolveResponse] = []
    for i in range(count):
        ok = bool(matrix[i, 0] == 1.0)
        solver = None
        if not np.isnan(matrix[i, 7]):
            sid = int(matrix[i, 7])
            if not 0 <= sid < len(solvers):
                raise TransportError(
                    f"malformed batch frame: solver id {sid} out of range")
            solver = solvers[sid]
        error_type, error = error_of.get(i, (None, None))
        speeds = None
        if speeds_ptr is not None and ok:
            lo, hi = int(speeds_ptr[i]), int(speeds_ptr[i + 1])
            if hi > lo:
                tasks = task_names[i] if task_names is not None else None
                if tasks is None or len(tasks) != hi - lo:
                    raise TransportError(
                        f"malformed batch frame: row {i} carries {hi - lo} "
                        "speeds but the request-side task order is unknown")
                speeds = {str(t): float(s)
                          for t, s in zip(tasks, speeds_flat[lo:hi])}
        rows.append(SolveResponse(
            ok=ok, name=names[i],
            n_tasks=int(matrix[i, 1]) if not np.isnan(matrix[i, 1]) else 0,
            energy=None if np.isnan(matrix[i, 2]) else float(matrix[i, 2]),
            makespan=None if np.isnan(matrix[i, 3]) else float(matrix[i, 3]),
            solver=solver,
            optimal=None if np.isnan(matrix[i, 4]) else bool(matrix[i, 4]),
            lower_bound=None if np.isnan(matrix[i, 5]) else float(matrix[i, 5]),
            seconds=float(matrix[i, 6]) if not np.isnan(matrix[i, 6]) else 0.0,
            error=error, error_type=error_type, speeds=speeds))
    return rows
