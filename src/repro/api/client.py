"""The transport-agnostic solver client.

:class:`SolverClient` is the one programmatic surface for submitting
sweeps and following jobs; everything it does is expressed in the typed
envelopes of :mod:`repro.api.protocol` and executed by an interchangeable
:class:`Transport`:

:class:`LocalTransport`
    Wraps an in-process :class:`repro.service.SolverService` pool — the
    fastest path, nothing persisted.
:class:`DiskTransport`
    A durable job queue over :class:`repro.api.jobstore.JobStore`: records
    survive the submitting process, any later process can re-attach by job
    id, and an orphaned (pending or crashed-mid-run) job is *resumed* by
    re-running its stored request through the shared result cache — cells
    that already finished are served warm, only the remainder is solved.
:class:`HTTPTransport`
    Talks the ``/v1`` JSON protocol to a ``repro serve`` backend
    (:mod:`repro.server`), including the chunked progress-event stream.

All polling paths (``results``, ``wait``, ``events``, ``repro attach``)
share one exponential-backoff schedule (:func:`backoff_intervals`) so a
just-submitted job is noticed in milliseconds while a long sweep is polled
a couple of times a minute instead of in a tight loop.

Quickstart
----------
>>> from repro.api import DiskTransport, SolverClient, SweepRequest
>>> client = SolverClient(DiskTransport(".repro-jobs"))      # doctest: +SKIP
>>> record = client.submit(SweepRequest(sizes=(64,)))        # doctest: +SKIP
>>> table = client.results(record.job_id, timeout=300)       # doctest: +SKIP
"""

from __future__ import annotations

import http.client as httpclient
import json
import os
import random
import socket
import threading
import time
from typing import TYPE_CHECKING, Any, Callable, Iterator, Sequence
from urllib import error as urlerror
from urllib import request as urlrequest

from repro.api.jobstore import (
    JobStore,
    new_job_id,
    record_orphaned,
)
from repro.api.protocol import (
    PROTOCOL_PREFIX,
    SCHEMA_VERSION,
    JobRecord,
    ProgressEvent,
    SolveRequest,
    SolveResponse,
    SweepRequest,
    raise_wire_error,
    table_from_wire,
)
from repro.api.rowcodec import decode_rows
from repro.utils.errors import (
    JobStateError,
    ReproError,
    TransportError,
    UnknownJobError,
)
from repro.utils.tables import Table

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cache import ResultCache
    from repro.core.problem import MinEnergyProblem
    from repro.service import SolverService


#: Jitter fraction of the shared *remote*-polling paths (``wait``,
#: ``events``, the fleet worker's claim loop).  1.0 is AWS-style full
#: jitter: each sleep is uniform over ``(0, interval]``, so a fleet of
#: pollers that started in lockstep decorrelates within one cycle instead
#: of stampeding ``repro serve`` together.
POLL_JITTER = 1.0


def backoff_intervals(initial: float = 0.05, *, factor: float = 1.6,
                      maximum: float = 2.0, jitter: float = 0.0,
                      rng: "random.Random | None" = None) -> Iterator[float]:
    """Yield an unbounded exponential backoff schedule of sleep intervals.

    Starts at ``initial`` seconds and multiplies by ``factor`` until
    ``maximum`` is reached, then stays there — the shared schedule of every
    polling path (``repro submit``/``attach``/``status --watch`` and the
    transports' ``results``), replacing the old fixed-interval tight loop.

    ``jitter`` in ``[0, 1]`` randomises each yielded interval downwards:
    the value is drawn uniformly from ``[cap * (1 - jitter), cap]`` where
    ``cap`` is the deterministic schedule's value, so ``jitter=1.0`` is
    full jitter (uniform over ``(0, cap]``) and ``jitter=0.0`` (the
    default) keeps the exact deterministic schedule.  A fleet of clients
    polling one server should jitter — N workers that wake in the same
    millisecond otherwise stay synchronized forever, hitting the server
    as one thundering herd every cycle.  Pass ``rng`` to make a jittered
    schedule reproducible in tests.
    """
    if initial <= 0:
        raise ValueError(f"initial poll interval must be > 0, got {initial}")
    if factor < 1.0:
        raise ValueError(f"backoff factor must be >= 1, got {factor}")
    if not 0.0 <= jitter <= 1.0:
        raise ValueError(f"jitter must be within [0, 1], got {jitter}")
    if jitter and rng is None:
        rng = random.Random()
    interval = initial
    while True:
        cap = min(interval, maximum)
        yield cap - cap * jitter * rng.random() if jitter else cap
        interval = min(interval * factor, maximum)


# --------------------------------------------------------------------- #
# the synchronous solve fast path (shared by transports and the server)
# --------------------------------------------------------------------- #
def _request_failure(request: SolveRequest, exc: BaseException) -> SolveResponse:
    return SolveResponse.from_failure(
        exc, name=request.name,
        n_tasks=len(request.graph.get("tasks") or ()))


def execute_solve(service: "SolverService",
                  request: SolveRequest) -> SolveResponse:
    """Run one solve request on a service's coalescing fast path.

    Request-level failures (bad graph, bad model) come back as ``ok=False``
    rows exactly like solve failures, so every transport sees one shape.
    """
    try:
        item = request.to_instance()
    except ReproError as exc:
        return _request_failure(request, exc)
    result = service.solve(item, method=request.method, exact=request.exact,
                           options=request.options or None,
                           keep_speeds=request.keep_speeds,
                           validate=request.validate)
    return SolveResponse.from_result(result)


def execute_solve_batch(service: "SolverService",
                        requests: Sequence[SolveRequest], *,
                        keep_speeds: bool = False) -> list[SolveResponse]:
    """Run a pre-assembled request batch: one vectorized tick per distinct
    parameter set, per-instance error capture, results in request order.

    ``keep_speeds`` asks for speed maps on every row; a request's own
    ``keep_speeds`` flag turns them on for just that row.
    """
    rows: list[SolveResponse | None] = [None] * len(requests)
    groups: dict[tuple, list[tuple[int, Any, SolveRequest]]] = {}
    for i, request in enumerate(requests):
        try:
            item = request.to_instance()
        except ReproError as exc:
            rows[i] = _request_failure(request, exc)
            continue
        key = (request.method, request.exact,
               tuple(sorted((k, repr(v)) for k, v in request.options.items())),
               keep_speeds or request.keep_speeds, request.validate)
        groups.setdefault(key, []).append((i, item, request))
    for members in groups.values():
        first = members[0][2]
        results = service.solve_many_now(
            [item for _i, item, _r in members], method=first.method,
            exact=first.exact, options=first.options or None,
            keep_speeds=keep_speeds or first.keep_speeds,
            validate=first.validate)
        for (i, _item, _r), result in zip(members, results):
            rows[i] = SolveResponse.from_result(result)
    return rows  # type: ignore[return-value]


class Transport:
    """Base transport: the verb surface plus shared polling helpers.

    Subclasses implement ``submit`` / ``status`` / ``fetch_results`` /
    ``cancel`` / ``jobs`` (and may override ``attach``/``events``); the
    base class provides backoff-polled ``wait``, ``results`` and a
    poll-derived ``events`` stream so every transport behaves identically
    from the client's point of view.
    """

    def submit(self, request: SweepRequest) -> JobRecord:
        raise NotImplementedError

    def solve(self, request: SolveRequest) -> SolveResponse:
        """One synchronous solve (no job record); failures are ``ok=False``
        rows, never raised — :meth:`SolverClient.solve` adds the raising."""
        raise NotImplementedError

    def solve_batch(self, requests: Sequence[SolveRequest], *,
                    keep_speeds: bool = False) -> list[SolveResponse]:
        """Solve a request batch in one round-trip / one batch tick."""
        raise NotImplementedError

    def status(self, job_id: str) -> JobRecord:
        raise NotImplementedError

    def fetch_results(self, job_id: str) -> Table:
        """Results of a job already known to be terminal."""
        raise NotImplementedError

    def cancel(self, job_id: str) -> JobRecord:
        raise NotImplementedError

    def jobs(self) -> list[JobRecord]:
        raise NotImplementedError

    def scan_jobs(self) -> tuple[list[JobRecord], list[tuple[str, str]]]:
        """Job listing plus ``(name, reason)`` pairs for unreadable records.

        Backends without a notion of corrupt records (the local pool)
        report an empty skip list; the disk store and the HTTP server
        surface theirs so ``repro jobs --strict`` audits every transport.
        """
        return self.jobs(), []

    def attach(self, job_id: str) -> JobRecord:
        """Re-attach to an existing job (a no-op status check by default;
        the disk transport additionally resumes orphaned work)."""
        return self.status(job_id)

    def close(self) -> None:
        """Release transport resources (pools, sockets)."""

    # ------------------------------------------------------------------ #
    # shared polling
    # ------------------------------------------------------------------ #
    def wait(self, job_id: str, *, timeout: float | None = None,
             poll_interval: float = 0.05) -> JobRecord:
        """Poll with full-jitter exponential backoff until terminal."""
        deadline = None if timeout is None else time.monotonic() + timeout
        for interval in backoff_intervals(poll_interval, jitter=POLL_JITTER):
            record = self.status(job_id)
            if record.terminal:
                return record
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError(
                        f"job {job_id}: still {record.status} "
                        f"({record.done}/{record.total} done) after {timeout}s"
                    )
                interval = min(interval, remaining)
            time.sleep(interval)
        raise AssertionError("unreachable")  # pragma: no cover

    def results(self, job_id: str, *, timeout: float | None = None,
                poll_interval: float = 0.05) -> Table:
        """Block (with backoff) for completion, then fetch the table."""
        record = self.wait(job_id, timeout=timeout,
                           poll_interval=poll_interval)
        if record.status == "failed":
            raise TransportError(
                f"job {job_id} failed before producing results: "
                f"{record.error or 'unknown error'}"
            )
        return self.fetch_results(job_id)

    def events(self, job_id: str, *, poll_interval: float = 0.05,
               timeout: float | None = None) -> Iterator[ProgressEvent]:
        """Progress events derived from status polling (backoff-paced).

        Emits an event whenever the (status, done, failed) triple changes,
        and always emits the terminal event last.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        seq = 0
        last: tuple | None = None
        for interval in backoff_intervals(poll_interval, jitter=POLL_JITTER):
            record = self.status(job_id)
            key = (record.status, record.done, record.failed)
            if key != last:
                last = key
                event = ProgressEvent.from_record(record, seq)
                seq += 1
                yield event
                if event.terminal:
                    return
            elif record.terminal:  # pragma: no cover - first poll terminal
                return
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id}: event stream timed out after {timeout}s")
            time.sleep(interval)


class SolverClient:
    """Typed facade over one transport — the one client every entry point
    (CLI verbs, tests, user code) goes through.

    Context-manageable: ``with SolverClient(DiskTransport(...)) as c: ...``
    closes the transport (and any pool it owns) on exit.
    """

    def __init__(self, transport: Transport) -> None:
        self.transport = transport

    def submit(self, request: "SweepRequest | None" = None,
               **grid: Any) -> JobRecord:
        """Submit a sweep request (or build one from keyword arguments)."""
        if request is None:
            request = SweepRequest(**grid)
        elif grid:
            raise ValueError(
                "pass either a SweepRequest or grid keyword arguments, not both")
        return self.transport.submit(request)

    @staticmethod
    def _as_request(problem: "MinEnergyProblem | SolveRequest", *,
                    method: str | None, exact: bool | None,
                    options: "dict[str, Any] | None", keep_speeds: bool,
                    validate: bool) -> SolveRequest:
        if isinstance(problem, SolveRequest):
            return problem
        return SolveRequest.from_problem(problem, method=method, exact=exact,
                                         options=options,
                                         keep_speeds=keep_speeds,
                                         validate=validate)

    def solve(self, problem: "MinEnergyProblem | SolveRequest", *,
              method: str | None = None, exact: bool | None = None,
              options: "dict[str, Any] | None" = None,
              keep_speeds: bool = True,
              validate: bool = False) -> SolveResponse:
        """Solve one instance synchronously on whatever backend the
        transport talks to; identical behaviour on every transport.

        Accepts a :class:`~repro.core.problem.MinEnergyProblem` (encoded
        via :meth:`SolveRequest.from_problem`; the keyword knobs apply) or
        a ready-made :class:`SolveRequest` (used as-is).  A captured
        failure re-raises as its typed library exception — use
        :meth:`solve_batch` for the non-raising, row-per-instance flavour.
        """
        request = self._as_request(problem, method=method, exact=exact,
                                   options=options, keep_speeds=keep_speeds,
                                   validate=validate)
        return self.transport.solve(request).raise_for_error()

    def solve_batch(self, problems: "Sequence[MinEnergyProblem | SolveRequest]",
                    *, method: str | None = None, exact: bool | None = None,
                    options: "dict[str, Any] | None" = None,
                    keep_speeds: bool = False,
                    validate: bool = False) -> list[SolveResponse]:
        """Solve many instances in one round-trip and one batch tick.

        Returns one :class:`SolveResponse` per input, in order; failed
        instances are ``ok=False`` rows (typed ``error_type``), never
        raised, so one bad instance cannot sink the batch.
        """
        requests = [self._as_request(p, method=method, exact=exact,
                                     options=options, keep_speeds=False,
                                     validate=validate) for p in problems]
        return self.transport.solve_batch(requests, keep_speeds=keep_speeds)

    def status(self, job_id: str) -> JobRecord:
        return self.transport.status(job_id)

    def results(self, job_id: str, *, timeout: float | None = None,
                poll_interval: float = 0.05) -> Table:
        return self.transport.results(job_id, timeout=timeout,
                                      poll_interval=poll_interval)

    def cancel(self, job_id: str) -> JobRecord:
        return self.transport.cancel(job_id)

    def jobs(self) -> list[JobRecord]:
        return self.transport.jobs()

    def scan_jobs(self) -> tuple[list[JobRecord], list[tuple[str, str]]]:
        return self.transport.scan_jobs()

    def attach(self, job_id: str) -> JobRecord:
        return self.transport.attach(job_id)

    def wait(self, job_id: str, *, timeout: float | None = None,
             poll_interval: float = 0.05) -> JobRecord:
        return self.transport.wait(job_id, timeout=timeout,
                                   poll_interval=poll_interval)

    def events(self, job_id: str, *, poll_interval: float = 0.05,
               timeout: float | None = None) -> Iterator[ProgressEvent]:
        return self.transport.events(job_id, poll_interval=poll_interval,
                                     timeout=timeout)

    def close(self) -> None:
        self.transport.close()

    def __enter__(self) -> "SolverClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


# --------------------------------------------------------------------- #
# local (in-process) transport
# --------------------------------------------------------------------- #
class LocalTransport(Transport):
    """In-process transport over a :class:`repro.service.SolverService`.

    The service pool may be shared (pass one in) or owned (created lazily
    and shut down by :meth:`close`).  Nothing is persisted: job ids are
    only resolvable inside this process — exactly the old
    ``SolverService`` contract, behind the client protocol.
    """

    def __init__(self, service: "SolverService | None" = None, *,
                 workers: int = 2, use_threads: bool = False,
                 cache: "ResultCache | None" = None) -> None:
        self._service = service
        self._owns_service = service is None
        self._workers = workers
        self._use_threads = use_threads
        self._cache = cache

    def service(self) -> "SolverService":
        if self._service is None:
            from repro.service import SolverService

            self._service = SolverService(workers=self._workers,
                                          use_threads=self._use_threads,
                                          cache=self._cache)
        return self._service

    def submit(self, request: SweepRequest) -> JobRecord:
        handle = self.service().submit_sweep(
            **request.grid_kwargs(), method=request.method,
            exact=request.exact, options=request.options or None,
            name=request.name, shard=request.shard_spec(),
            priors=request.fit_priors())
        return JobRecord.from_handle(handle)

    def solve(self, request: SolveRequest) -> SolveResponse:
        return execute_solve(self.service(), request)

    def solve_batch(self, requests: Sequence[SolveRequest], *,
                    keep_speeds: bool = False) -> list[SolveResponse]:
        return execute_solve_batch(self.service(), requests,
                                   keep_speeds=keep_speeds)

    def _handle(self, job_id: str):
        try:
            return self.service().job(job_id)
        except KeyError:
            raise UnknownJobError(
                f"no job {job_id!r} in this process (local jobs do not "
                "survive a restart; use a disk or HTTP transport for that)"
            ) from None

    def status(self, job_id: str) -> JobRecord:
        return JobRecord.from_handle(self._handle(job_id))

    def fetch_results(self, job_id: str) -> Table:
        return self.service().job_table(job_id)

    def cancel(self, job_id: str) -> JobRecord:
        handle = self._handle(job_id)
        handle.cancel()
        return JobRecord.from_handle(handle)

    def jobs(self) -> list[JobRecord]:
        return [JobRecord.from_handle(h) for h in self.service().jobs()]

    def close(self) -> None:
        if self._owns_service and self._service is not None:
            self._service.shutdown()
            self._service = None


# --------------------------------------------------------------------- #
# durable disk transport
# --------------------------------------------------------------------- #
#: Default staleness threshold: a ``running`` record without a lease whose
#: runner heartbeat is older than this is considered orphaned (its process
#: died) and may be resumed on attach.  Override per transport with the
#: ``stale_after=`` constructor argument or the
#: ``REPRO_STALE_RUNNER_SECONDS`` environment variable.
STALE_RUNNER_SECONDS = 10.0

#: Default heartbeat cadence: the runner refreshes its record heartbeat
#: (and renews its lease) at least this often.  Override with the
#: ``heartbeat_seconds=`` constructor argument or ``REPRO_HEARTBEAT_SECONDS``.
#:
#: **Invariant: the lease must outlive the heartbeat** —
#: ``lease_seconds > heartbeat_seconds`` (in practice by >= 2x, the
#: constructor enforces the strict inequality), otherwise a perfectly
#: healthy runner's lease expires between two renewals and another worker
#: "reclaims" a live job.
HEARTBEAT_SECONDS = 2.0

#: Backwards-compatible alias of :data:`HEARTBEAT_SECONDS`.
_HEARTBEAT_SECONDS = HEARTBEAT_SECONDS


def _env_seconds(name: str, default: float) -> float:
    """A positive seconds value from the environment, else ``default``."""
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(
            f"{name} must be a number of seconds, got {raw!r}") from None
    if value <= 0:
        raise ValueError(f"{name} must be > 0 seconds, got {raw!r}")
    return value


def default_worker_id() -> str:
    """The ``host-pid`` worker identity used when none is configured."""
    try:
        host = socket.gethostname() or "localhost"
    except OSError:  # pragma: no cover - exotic resolver failures
        host = "localhost"
    return f"{host}-{os.getpid()}"


class DiskTransport(Transport):
    """Durable jobs over a :class:`~repro.api.jobstore.JobStore`.

    ``submit`` persists the record first and then executes it on a
    background runner (daemon) thread, streaming progress counters into
    the record with atomic replaces; if the process dies mid-job the
    record survives as ``pending``/``running`` and **any later process**
    can :meth:`attach`, which resumes the stored request — with a shared
    ``cache_dir`` the already-finished cells come back as warm hits and
    only the remainder is re-solved.

    Ownership is heartbeat-based: the runner stamps ``runner_pid`` and a
    ``runner_heartbeat`` timestamp into the record every couple of
    seconds, and :meth:`attach` only resumes a ``running`` record whose
    heartbeat has gone stale (:data:`STALE_RUNNER_SECONDS`) — attaching
    to a job that is alive in another process just follows it, it never
    duplicates the execution.

    ``start=False`` submits without executing (the CLI's ``--detach``
    against a plain directory): the record waits on disk until someone
    attaches.

    Ownership timings are configurable per transport: ``stale_after``
    (orphan threshold for legacy no-lease records), ``heartbeat_seconds``
    (progress/renewal cadence) and ``lease_seconds`` (claim duration,
    default ``stale_after``); each falls back to its
    ``REPRO_STALE_RUNNER_SECONDS`` / ``REPRO_HEARTBEAT_SECONDS`` /
    ``REPRO_LEASE_SECONDS`` environment variable before the module
    default.  The constructor enforces the lease-outlives-heartbeat
    invariant (see :data:`HEARTBEAT_SECONDS`).
    """

    def __init__(self, jobs_dir: "str | Any", *,
                 cache_dir: "str | None" = None,
                 cache: "ResultCache | None" = None,
                 workers: int = 2, use_threads: bool = False,
                 stale_after: float | None = None,
                 heartbeat_seconds: float | None = None,
                 lease_seconds: float | None = None,
                 worker_id: str | None = None) -> None:
        self.store = JobStore(jobs_dir)
        self._cache = cache
        # default the cache next to the records so resume-after-crash works
        # out of the box; "cache/" does not match the store's *.json scan.
        # Created lazily so read-only verbs (status, jobs) touch nothing.
        self._cache_dir = cache_dir or str(self.store.directory / "cache")
        self._workers = workers
        self._use_threads = use_threads
        self.stale_after = (stale_after if stale_after is not None else
                            _env_seconds("REPRO_STALE_RUNNER_SECONDS",
                                         STALE_RUNNER_SECONDS))
        self.heartbeat_seconds = (
            heartbeat_seconds if heartbeat_seconds is not None else
            _env_seconds("REPRO_HEARTBEAT_SECONDS", HEARTBEAT_SECONDS))
        self.lease_seconds = (lease_seconds if lease_seconds is not None else
                              _env_seconds("REPRO_LEASE_SECONDS",
                                           self.stale_after))
        for name, value in (("stale_after", self.stale_after),
                            ("heartbeat_seconds", self.heartbeat_seconds),
                            ("lease_seconds", self.lease_seconds)):
            if value <= 0:
                raise ValueError(f"{name} must be > 0, got {value}")
        if self.lease_seconds <= self.heartbeat_seconds:
            raise ValueError(
                f"lease_seconds ({self.lease_seconds}) must exceed "
                f"heartbeat_seconds ({self.heartbeat_seconds}): a lease "
                "shorter than the renewal cadence expires under a healthy "
                "runner and invites spurious reclaims"
            )
        self.worker_id = worker_id or default_worker_id()
        self._runners: dict[str, threading.Thread] = {}
        self._lock = threading.Lock()
        self._solve_service: "SolverService | None" = None

    @property
    def cache(self) -> "ResultCache":
        if self._cache is None:
            from repro.cache import disk_cache

            self._cache = disk_cache(self._cache_dir)
        return self._cache

    def submit(self, request: SweepRequest, *, start: bool = True) -> JobRecord:
        record = self.store.create(request, job_id=new_job_id())
        if start:
            self._start_runner(record["job_id"], request)
        return JobRecord.from_wire(record)

    def status(self, job_id: str) -> JobRecord:
        return self.store.record(job_id)

    def fetch_results(self, job_id: str) -> Table:
        payload = self.store.load(job_id)
        columns = payload.get("columns")
        if not isinstance(columns, list):
            from repro.batch.sweep import SWEEP_COLUMNS

            # cancelled before anything ran: an empty sweep-shaped table
            return Table(columns=list(SWEEP_COLUMNS),
                         title=f"job {payload.get('name') or job_id}")
        table = Table(columns=[str(c) for c in columns],
                      rows=[list(r) for r in payload.get("rows") or []],
                      title=str(payload.get("title") or f"job {job_id}"))
        manifest = payload.get("manifest")
        if isinstance(manifest, dict):
            table.manifest = manifest
        return table

    def cancel(self, job_id: str) -> JobRecord:
        payload = self.store.load(job_id)
        status = payload.get("status")
        if status in ("done", "cancelled", "failed"):
            return JobRecord.from_wire(payload)  # terminal: nothing to do
        with self._lock:
            live = job_id in self._runners
        try:
            if live or not record_orphaned(payload,
                                           stale_after=self.stale_after):
                # a runner (here or elsewhere) owns the record; it observes
                # the flag at its next progress tick, cancels the pool
                # futures and transitions
                self.store.update(job_id, cancel_requested=True)
            else:
                self.store.transition(job_id, "cancelled")
        except JobStateError:
            pass  # the job reached a terminal state while we decided
        return self.store.record(job_id)

    def jobs(self) -> list[JobRecord]:
        return self.scan_jobs()[0]

    def scan_jobs(self) -> tuple[list[JobRecord], list[tuple[str, str]]]:
        records, skipped = self.store.scan()
        return [JobRecord.from_wire(r) for r in records], skipped

    def attach(self, job_id: str) -> JobRecord:
        """Re-attach by id; resume the stored request if it is orphaned.

        A ``pending`` record (detached submit, or a submitter that died
        before starting) is started; a ``running`` record is resumed only
        when no runner in this process owns it **and** its lease has
        expired (legacy records: stale heartbeat) — a live lease means
        another process is executing the job, and attaching must follow
        it, not fork a duplicate run.  The runner claims through
        :meth:`JobStore.claim`, so even two processes attaching the same
        orphan in the same instant resolve to one execution.  Resuming is
        idempotent through the result cache: finished cells are warm hits.
        """
        payload = self.store.load(job_id)
        status = payload.get("status")
        with self._lock:
            live = job_id in self._runners
        if not live and (
                status == "pending"
                or (status == "running"
                    and record_orphaned(payload,
                                        stale_after=self.stale_after))):
            self._start_runner(job_id, self.store.request(job_id))
        return self.store.record(job_id)

    def _solver(self) -> "SolverService":
        """The lazy in-process service behind ``solve``/``solve_batch``.

        Synchronous solves never touch the job store — they ride the
        vectorized fast path of a private single-thread service (the solve
        path never hops to the pool anyway).
        """
        with self._lock:
            if self._solve_service is None:
                from repro.service import SolverService

                self._solve_service = SolverService(workers=1,
                                                    use_threads=True)
            return self._solve_service

    def solve(self, request: SolveRequest) -> SolveResponse:
        return execute_solve(self._solver(), request)

    def solve_batch(self, requests: Sequence[SolveRequest], *,
                    keep_speeds: bool = False) -> list[SolveResponse]:
        return execute_solve_batch(self._solver(), requests,
                                   keep_speeds=keep_speeds)

    def close(self) -> None:
        with self._lock:
            runners = list(self._runners.values())
            solver, self._solve_service = self._solve_service, None
        if solver is not None:
            solver.shutdown()
        for thread in runners:
            thread.join(timeout=0.1)

    # ------------------------------------------------------------------ #
    # the runner
    # ------------------------------------------------------------------ #
    def _start_runner(self, job_id: str, request: SweepRequest) -> None:
        thread = threading.Thread(target=self._run, args=(job_id, request),
                                  name=f"repro-job-{job_id}", daemon=True)
        with self._lock:
            self._runners[job_id] = thread
        thread.start()

    def _run(self, job_id: str, request: SweepRequest) -> None:
        """Thread target: claim the record, then execute it to a terminal
        state.  Losing the claim (another worker owns a live lease, or a
        merge job's dependencies are not terminal yet) is not an error —
        the record belongs to someone else and this runner walks away.
        """
        try:
            try:
                self.store.claim(job_id, self.worker_id, self.lease_seconds)
            except JobStateError:
                return
            self.run_claimed(job_id, request)
        finally:
            with self._lock:
                self._runners.pop(job_id, None)

    def run_claimed(self, job_id: str, request: SweepRequest, *,
                    should_stop: "Callable[[], bool] | None" = None) -> str:
        """Execute a record this worker has already claimed; return the
        final status (``done`` / ``cancelled`` / ``failed`` /
        ``released`` / ``lost``).

        The shared execution body of the transport's runner threads and
        the ``repro work`` fleet loop.  Progress writes renew the lease
        (heartbeat == renewal, one atomic write); ``should_stop`` is the
        worker's shutdown flag — when it flips, the in-flight instances
        are cancelled and the record is *released* back to ``pending`` so
        any other worker picks it up immediately.  A ``JobStateError``
        from a conditional write means the lease was lost to another
        claimer: execution is abandoned without touching the record
        (``lost``), so two live lease holders never both write rows.
        """
        from repro.service import SolverService

        if self.store.load(job_id).get("job_type") == "merge":
            from repro.fleet.submit import execute_merge_job

            return execute_merge_job(self.store, job_id,
                                     worker_id=self.worker_id)
        try:
            with SolverService(workers=self._workers,
                               use_threads=self._use_threads,
                               cache=self.cache) as service:
                handle = service.submit_sweep(
                    **request.grid_kwargs(), method=request.method,
                    exact=request.exact, options=request.options or None,
                    name=request.name or job_id, shard=request.shard_spec(),
                    priors=request.fit_priors())
                self.store.update(job_id, expected_worker=self.worker_id,
                                  total=handle.total,
                                  grid_fingerprint=handle.fingerprint,
                                  params=dict(handle.params))
                outcome = self._poll_to_completion(job_id, handle,
                                                   should_stop=should_stop)
                if outcome == "released":
                    handle.cancel()
                    self.store.release(job_id, self.worker_id)
                    return "released"
                table = service.job_table(handle.job_id, timeout=60)
            progress = handle.progress()
            status = "cancelled" if outcome == "cancelled" else "done"
            self.store.transition(
                job_id, status, expected_worker=self.worker_id,
                done=progress.done, failed=progress.failed,
                cache_hits=progress.cache_hits,
                title=table.title, columns=list(table.columns),
                rows=[list(row) for row in table.rows],
                manifest=getattr(table, "manifest", None))
            return status
        except JobStateError:
            # the lease was lost (reclaimed after an expiry) or the record
            # was force-transitioned externally: never write over the new
            # owner's work
            return "lost"
        except Exception as exc:  # the record must reflect the blow-up
            try:
                self.store.transition(job_id, "failed",
                                      expected_worker=self.worker_id,
                                      error=f"{type(exc).__name__}: {exc}")
            except JobStateError:  # cancel or a reclaim raced us
                pass
            return "failed"

    def _poll_to_completion(self, job_id: str, handle, *,
                            should_stop: "Callable[[], bool] | None" = None
                            ) -> str:
        """Mirror live progress into the record; honour cancel requests.

        Besides the counters, every write renews the lease and refreshes
        the runner heartbeat in one atomic :meth:`JobStore.renew_lease`
        (and one is forced at least every ``heartbeat_seconds``), so
        observers can tell this job is owned by a live process and the
        lease never lapses under a healthy runner.  A
        :class:`JobStateError` from the store means the lease was lost or
        another process force-transitioned the record (external cancel) —
        it propagates, the service context manager cancels the pending
        pool futures.  Returns ``"done"``, ``"cancelled"`` or
        ``"released"`` (``should_stop`` flipped mid-run).
        """
        cancelled = False
        last: tuple | None = None
        last_beat = 0.0
        for interval in backoff_intervals(0.02, maximum=0.5):
            if should_stop is not None and should_stop():
                return "released"
            progress = handle.progress()
            key = (progress.done, progress.failed, progress.cache_hits)
            now = time.time()
            if key != last or now - last_beat >= self.heartbeat_seconds:
                last = key
                last_beat = now
                self.store.renew_lease(job_id, self.worker_id,
                                       self.lease_seconds,
                                       done=progress.done,
                                       failed=progress.failed,
                                       cache_hits=progress.cache_hits)
            if handle.done():
                return "cancelled" if cancelled else "done"
            if not cancelled:
                payload = self.store.load(job_id)
                if payload.get("cancel_requested"):
                    handle.cancel()
                    cancelled = True
            time.sleep(interval)
        raise AssertionError("unreachable")  # pragma: no cover


# --------------------------------------------------------------------- #
# HTTP transport
# --------------------------------------------------------------------- #
class HTTPTransport(Transport):
    """Client of the ``repro serve`` HTTP backend (:mod:`repro.server`).

    Speaks the ``/v1`` JSON protocol with stdlib ``urllib`` only.  Typed
    error bodies re-raise as their library exception classes
    (:class:`UnknownJobError` for 404s, :class:`SchemaVersionError` for
    version mismatches, ...); connection-level failures raise
    :class:`TransportError`.  ``events`` consumes the server's chunked
    ndjson stream instead of polling.
    """

    def __init__(self, base_url: str, *, timeout: float = 30.0,
                 token: str | None = None) -> None:
        if not base_url.startswith(("http://", "https://")):
            raise TransportError(
                f"HTTP transport needs an http(s):// URL, got {base_url!r}")
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        # bearer token for a --token'd server; defaults from REPRO_TOKEN so
        # every CLI verb inherits auth without per-command plumbing
        self.token = token if token is not None else (
            os.environ.get("REPRO_TOKEN") or None)

    def _url(self, path: str) -> str:
        return f"{self.base_url}{PROTOCOL_PREFIX}{path}"

    def _headers(self) -> dict[str, str]:
        headers = {"Content-Type": "application/json"}
        if self.token:
            headers["Authorization"] = f"Bearer {self.token}"
        return headers

    def _call(self, method: str, path: str, *,
              body: dict | None = None) -> Any:
        data = None if body is None else json.dumps(body).encode("utf-8")
        req = urlrequest.Request(self._url(path), data=data, method=method,
                                 headers=self._headers())
        try:
            with urlrequest.urlopen(req, timeout=self.timeout) as resp:
                return json.loads(resp.read().decode("utf-8"))
        except urlerror.HTTPError as exc:
            self._raise_http_error(exc)
        except urlerror.URLError as exc:
            raise TransportError(
                f"cannot reach {self.base_url}: {exc.reason}") from exc
        except json.JSONDecodeError as exc:
            raise TransportError(
                f"{self.base_url} returned non-JSON output: {exc}") from exc

    @staticmethod
    def _raise_http_error(exc: urlerror.HTTPError) -> None:
        try:
            payload = json.loads(exc.read().decode("utf-8"))
        except Exception:
            raise TransportError(
                f"HTTP {exc.code} from {exc.url} (no typed error body)"
            ) from exc
        raise_wire_error(payload, fallback=f"HTTP {exc.code} from {exc.url}")

    def submit(self, request: SweepRequest) -> JobRecord:
        return JobRecord.from_wire(
            self._call("POST", "/jobs", body=request.to_wire()))

    def solve(self, request: SolveRequest) -> SolveResponse:
        return SolveResponse.from_wire(
            self._call("POST", "/solve", body=request.to_wire()))

    def solve_batch(self, requests: Sequence[SolveRequest], *,
                    keep_speeds: bool = False) -> list[SolveResponse]:
        frame = self._call("POST", "/solve_batch", body={
            "schema_version": SCHEMA_VERSION,
            "requests": [r.to_wire() for r in requests],
            "keep_speeds": bool(keep_speeds),
        })
        # reattach task names from our own request graphs: the server
        # preserved each instance's task order, so names never travel
        task_names = [list((r.graph.get("tasks") or {}).keys())
                      for r in requests]
        rows = decode_rows(frame, task_names=task_names)
        if len(rows) != len(requests):
            raise TransportError(
                f"batch response carries {len(rows)} rows for "
                f"{len(requests)} requests")
        return rows

    def status(self, job_id: str) -> JobRecord:
        return JobRecord.from_wire(self._call("GET", f"/jobs/{job_id}"))

    def fetch_results(self, job_id: str) -> Table:
        return table_from_wire(self._call("GET", f"/jobs/{job_id}/results"))

    def cancel(self, job_id: str) -> JobRecord:
        return JobRecord.from_wire(
            self._call("POST", f"/jobs/{job_id}/cancel"))

    def jobs(self) -> list[JobRecord]:
        return self.scan_jobs()[0]

    def scan_jobs(self) -> tuple[list[JobRecord], list[tuple[str, str]]]:
        payload = self._call("GET", "/jobs")
        if not isinstance(payload, dict) or "jobs" not in payload:
            raise TransportError("malformed job listing from the server")
        skipped = [(str(name), str(reason))
                   for name, reason in payload.get("skipped") or []]
        return [JobRecord.from_wire(r) for r in payload["jobs"]], skipped

    def events(self, job_id: str, *, poll_interval: float = 0.05,
               timeout: float | None = None) -> Iterator[ProgressEvent]:
        """Consume the server's chunked ndjson progress stream."""
        req = urlrequest.Request(self._url(f"/jobs/{job_id}/events"),
                                 headers=self._headers())
        stream_timeout = timeout if timeout is not None else 3600.0
        try:
            resp = urlrequest.urlopen(req, timeout=stream_timeout)
        except urlerror.HTTPError as exc:
            self._raise_http_error(exc)
            raise AssertionError("unreachable")  # pragma: no cover
        except urlerror.URLError as exc:
            raise TransportError(
                f"cannot reach {self.base_url}: {exc.reason}") from exc
        with resp:
            while True:
                try:
                    raw = resp.readline()
                except (OSError, httpclient.HTTPException) as exc:
                    # the server died or the socket timed out mid-stream:
                    # keep the typed-error contract instead of leaking a
                    # raw socket exception through the generator
                    raise TransportError(
                        f"event stream from {self.base_url} broke: {exc}"
                    ) from exc
                if not raw:
                    return
                line = raw.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line.decode("utf-8"))
                except (ValueError, UnicodeDecodeError) as exc:
                    raise TransportError(
                        f"malformed event-stream line: {line[:120]!r}"
                    ) from exc
                if isinstance(payload, dict) and "error" in payload:
                    raise_wire_error(payload)
                event = ProgressEvent.from_wire(payload)
                yield event
                if event.terminal:
                    return
