"""The transport-agnostic solver client.

:class:`SolverClient` is the one programmatic surface for submitting
sweeps and following jobs; everything it does is expressed in the typed
envelopes of :mod:`repro.api.protocol` and executed by an interchangeable
:class:`Transport`:

:class:`LocalTransport`
    Wraps an in-process :class:`repro.service.SolverService` pool — the
    fastest path, nothing persisted.
:class:`DiskTransport`
    A durable job queue over :class:`repro.api.jobstore.JobStore`: records
    survive the submitting process, any later process can re-attach by job
    id, and an orphaned (pending or crashed-mid-run) job is *resumed* by
    re-running its stored request through the shared result cache — cells
    that already finished are served warm, only the remainder is solved.
:class:`HTTPTransport`
    Talks the ``/v1`` JSON protocol to a ``repro serve`` backend
    (:mod:`repro.server`), including the chunked progress-event stream.

All polling paths (``results``, ``wait``, ``events``, ``repro attach``)
share one exponential-backoff schedule (:func:`backoff_intervals`) so a
just-submitted job is noticed in milliseconds while a long sweep is polled
a couple of times a minute instead of in a tight loop.

Quickstart
----------
>>> from repro.api import DiskTransport, SolverClient, SweepRequest
>>> client = SolverClient(DiskTransport(".repro-jobs"))      # doctest: +SKIP
>>> record = client.submit(SweepRequest(sizes=(64,)))        # doctest: +SKIP
>>> table = client.results(record.job_id, timeout=300)       # doctest: +SKIP
"""

from __future__ import annotations

import dataclasses
import http.client as httpclient
import json
import os
import random
import socket
import threading
import time
from typing import TYPE_CHECKING, Any, Callable, Iterator, Sequence
from urllib import error as urlerror
from urllib import request as urlrequest

from repro.api.jobstore import (
    JobStore,
    new_job_id,
    record_orphaned,
)
from repro.api.protocol import (
    PROTOCOL_PREFIX,
    SCHEMA_VERSION,
    JobRecord,
    ProgressEvent,
    SolveRequest,
    SolveResponse,
    SweepRequest,
    raise_wire_error,
    table_from_wire,
)
from repro.api.rowcodec import decode_rows
from repro.reliability import failpoints
from repro.reliability.policy import (
    DEADLINE_HEADER,
    CircuitBreaker,
    Deadline,
    RetryPolicy,
    current_deadline,
    deadline_scope,
)
from repro.utils.errors import (
    InvalidParameterError,
    JobStateError,
    PollTimeoutError,
    ReproError,
    ServerShutdownError,
    TransientTransportError,
    TransportError,
    UnknownJobError,
)
from repro.utils.tables import Table

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cache import ResultCache
    from repro.core.problem import MinEnergyProblem
    from repro.service import SolverService


#: Jitter fraction of the shared *remote*-polling paths (``wait``,
#: ``events``, the fleet worker's claim loop).  1.0 is AWS-style full
#: jitter: each sleep is uniform over ``(0, interval]``, so a fleet of
#: pollers that started in lockstep decorrelates within one cycle instead
#: of stampeding ``repro serve`` together.
POLL_JITTER = 1.0


def backoff_intervals(initial: float = 0.05, *, factor: float = 1.6,
                      maximum: float = 2.0, jitter: float = 0.0,
                      rng: "random.Random | None" = None) -> Iterator[float]:
    """Yield an unbounded exponential backoff schedule of sleep intervals.

    Starts at ``initial`` seconds and multiplies by ``factor`` until
    ``maximum`` is reached, then stays there — the shared schedule of every
    polling path (``repro submit``/``attach``/``status --watch`` and the
    transports' ``results``), replacing the old fixed-interval tight loop.

    ``jitter`` in ``[0, 1]`` randomises each yielded interval downwards:
    the value is drawn uniformly from ``[cap * (1 - jitter), cap]`` where
    ``cap`` is the deterministic schedule's value, so ``jitter=1.0`` is
    full jitter (uniform over ``(0, cap]``) and ``jitter=0.0`` (the
    default) keeps the exact deterministic schedule.  A fleet of clients
    polling one server should jitter — N workers that wake in the same
    millisecond otherwise stay synchronized forever, hitting the server
    as one thundering herd every cycle.  Pass ``rng`` to make a jittered
    schedule reproducible in tests.
    """
    if initial <= 0:
        raise InvalidParameterError(f"initial poll interval must be > 0, got {initial}")
    if factor < 1.0:
        raise InvalidParameterError(f"backoff factor must be >= 1, got {factor}")
    if not 0.0 <= jitter <= 1.0:
        raise InvalidParameterError(f"jitter must be within [0, 1], got {jitter}")
    if jitter and rng is None:
        rng = random.Random()
    interval = initial
    while True:
        cap = min(interval, maximum)
        yield cap - cap * jitter * rng.random() if jitter else cap
        interval = min(interval * factor, maximum)


# --------------------------------------------------------------------- #
# the synchronous solve fast path (shared by transports and the server)
# --------------------------------------------------------------------- #
def _request_failure(request: SolveRequest, exc: BaseException) -> SolveResponse:
    return SolveResponse.from_failure(
        exc, name=request.name,
        n_tasks=len(request.graph.get("tasks") or ()))


def execute_solve(service: "SolverService", request: SolveRequest, *,
                  deadline: "Deadline | None" = None) -> SolveResponse:
    """Run one solve request on a service's coalescing fast path.

    Request-level failures (bad graph, bad model) come back as ``ok=False``
    rows exactly like solve failures, so every transport sees one shape.
    ``deadline`` bounds the solve (the batcher honours it);
    :class:`~repro.utils.errors.DeadlineExceededError` propagates to the
    caller — a spent budget is a request-level refusal, not a row.
    """
    try:
        item = request.to_instance()
    except ReproError as exc:
        return _request_failure(request, exc)
    result = service.solve(item, method=request.method, exact=request.exact,
                           options=request.options or None,
                           keep_speeds=request.keep_speeds,
                           validate=request.validate, deadline=deadline)
    return SolveResponse.from_result(result)


def execute_solve_batch(service: "SolverService",
                        requests: Sequence[SolveRequest], *,
                        keep_speeds: bool = False) -> list[SolveResponse]:
    """Run a pre-assembled request batch: one vectorized tick per distinct
    parameter set, per-instance error capture, results in request order.

    ``keep_speeds`` asks for speed maps on every row; a request's own
    ``keep_speeds`` flag turns them on for just that row.
    """
    rows: list[SolveResponse | None] = [None] * len(requests)
    groups: dict[tuple, list[tuple[int, Any, SolveRequest]]] = {}
    for i, request in enumerate(requests):
        try:
            item = request.to_instance()
        except ReproError as exc:
            rows[i] = _request_failure(request, exc)
            continue
        key = (request.method, request.exact,
               tuple(sorted((k, repr(v)) for k, v in request.options.items())),
               keep_speeds or request.keep_speeds, request.validate)
        groups.setdefault(key, []).append((i, item, request))
    for members in groups.values():
        first = members[0][2]
        results = service.solve_many_now(
            [item for _i, item, _r in members], method=first.method,
            exact=first.exact, options=first.options or None,
            keep_speeds=keep_speeds or first.keep_speeds,
            validate=first.validate)
        for (i, _item, _r), result in zip(members, results):
            rows[i] = SolveResponse.from_result(result)
    return rows  # type: ignore[return-value]


class Transport:
    """Base transport: the verb surface plus shared polling helpers.

    Subclasses implement ``submit`` / ``status`` / ``fetch_results`` /
    ``cancel`` / ``jobs`` (and may override ``attach``/``events``); the
    base class provides backoff-polled ``wait``, ``results`` and a
    poll-derived ``events`` stream so every transport behaves identically
    from the client's point of view.
    """

    def submit(self, request: SweepRequest) -> JobRecord:
        raise NotImplementedError

    def solve(self, request: SolveRequest) -> SolveResponse:
        """One synchronous solve (no job record); failures are ``ok=False``
        rows, never raised — :meth:`SolverClient.solve` adds the raising."""
        raise NotImplementedError

    def solve_batch(self, requests: Sequence[SolveRequest], *,
                    keep_speeds: bool = False) -> list[SolveResponse]:
        """Solve a request batch in one round-trip / one batch tick."""
        raise NotImplementedError

    def status(self, job_id: str) -> JobRecord:
        raise NotImplementedError

    def fetch_results(self, job_id: str) -> Table:
        """Results of a job already known to be terminal."""
        raise NotImplementedError

    def cancel(self, job_id: str) -> JobRecord:
        raise NotImplementedError

    def jobs(self) -> list[JobRecord]:
        raise NotImplementedError

    def scan_jobs(self) -> tuple[list[JobRecord], list[tuple[str, str]]]:
        """Job listing plus ``(name, reason)`` pairs for unreadable records.

        Backends without a notion of corrupt records (the local pool)
        report an empty skip list; the disk store and the HTTP server
        surface theirs so ``repro jobs --strict`` audits every transport.
        """
        return self.jobs(), []

    def attach(self, job_id: str) -> JobRecord:
        """Re-attach to an existing job (a no-op status check by default;
        the disk transport additionally resumes orphaned work)."""
        return self.status(job_id)

    def close(self) -> None:
        """Release transport resources (pools, sockets)."""

    # ------------------------------------------------------------------ #
    # shared polling
    # ------------------------------------------------------------------ #
    #: Consecutive transient status failures a polling loop rides out
    #: before giving up.  A long-running ``wait`` must survive a server
    #: restart or a dropped connection — one reset killing an hour-long
    #: poll is exactly the bug this bounds — while a server that stays
    #: down still fails with the last typed error instead of hanging.
    POLL_TRANSIENT_TOLERANCE = 5

    def _poll_status(self, job_id: str, failures: list[int]) -> "JobRecord | None":
        """One tolerant status poll: a transient failure increments the
        shared counter and returns ``None`` (skip this tick); success
        resets it; the failure past the tolerance (or any terminal
        transport error) propagates."""
        try:
            record = self.status(job_id)
        except TransientTransportError:
            failures[0] += 1
            if failures[0] > self.POLL_TRANSIENT_TOLERANCE:
                raise
            return None
        failures[0] = 0
        return record

    def wait(self, job_id: str, *, timeout: float | None = None,
             poll_interval: float = 0.05) -> JobRecord:
        """Poll with full-jitter exponential backoff until terminal.

        Transient transport failures (connection resets, an overloaded or
        restarting server) are ridden out up to
        :data:`POLL_TRANSIENT_TOLERANCE` consecutive polls instead of
        killing the wait.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        failures = [0]
        for interval in backoff_intervals(poll_interval, jitter=POLL_JITTER):
            record = self._poll_status(job_id, failures)
            if record is not None and record.terminal:
                return record
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    detail = ("transport errors while polling"
                              if record is None else
                              f"still {record.status} "
                              f"({record.done}/{record.total} done)")
                    raise PollTimeoutError(
                        f"job {job_id}: {detail} after {timeout}s")
                interval = min(interval, remaining)
            time.sleep(interval)
        raise AssertionError("unreachable")  # pragma: no cover

    def results(self, job_id: str, *, timeout: float | None = None,
                poll_interval: float = 0.05) -> Table:
        """Block (with backoff) for completion, then fetch the table."""
        record = self.wait(job_id, timeout=timeout,
                           poll_interval=poll_interval)
        if record.status == "failed":
            raise TransportError(
                f"job {job_id} failed before producing results: "
                f"{record.error or 'unknown error'}"
            )
        return self.fetch_results(job_id)

    def events(self, job_id: str, *, poll_interval: float = 0.05,
               timeout: float | None = None) -> Iterator[ProgressEvent]:
        """Progress events derived from status polling (backoff-paced).

        Emits an event whenever the (status, done, failed) triple changes,
        and always emits the terminal event last.  Transient status
        failures are ridden out like :meth:`wait` does.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        seq = 0
        last: tuple | None = None
        failures = [0]
        for interval in backoff_intervals(poll_interval, jitter=POLL_JITTER):
            record = self._poll_status(job_id, failures)
            if record is not None:
                key = (record.status, record.done, record.failed)
                if key != last:
                    last = key
                    event = ProgressEvent.from_record(record, seq)
                    seq += 1
                    yield event
                    if event.terminal:
                        return
                elif record.terminal:  # pragma: no cover - first poll terminal
                    return
            if deadline is not None and time.monotonic() >= deadline:
                raise PollTimeoutError(
                    f"job {job_id}: event stream timed out after {timeout}s")
            time.sleep(interval)


class SolverClient:
    """Typed facade over one transport — the one client every entry point
    (CLI verbs, tests, user code) goes through.

    Context-manageable: ``with SolverClient(DiskTransport(...)) as c: ...``
    closes the transport (and any pool it owns) on exit.

    Reliability knobs apply uniformly over every transport:
    ``retry_policy`` re-issues verbs that died with a
    :class:`~repro.utils.errors.TransientTransportError` (``submit`` is
    retried only when the failure provably happened before the backend
    acted, so jobs are never duplicated), and ``deadline`` (seconds)
    bounds each verb — propagated to an HTTP backend in the
    ``X-Repro-Deadline`` header, raising
    :class:`~repro.utils.errors.DeadlineExceededError` when spent.
    """

    def __init__(self, transport: Transport, *,
                 retry_policy: "RetryPolicy | None" = None,
                 deadline: float | None = None) -> None:
        self.transport = transport
        self.retry_policy = retry_policy
        if deadline is not None and deadline <= 0:
            raise InvalidParameterError(f"deadline must be > 0 seconds, got {deadline}")
        self.deadline = deadline

    def _invoke(self, fn: Callable[[], Any], *,
                idempotent: bool = True) -> Any:
        """Run one transport verb under the client's policies."""
        deadline = (Deadline.after(self.deadline)
                    if self.deadline is not None else None)
        with deadline_scope(deadline if deadline is not None
                            else current_deadline()):
            if self.retry_policy is None:
                if deadline is not None:
                    deadline.require("request")
                return fn()
            return self.retry_policy.call(fn, idempotent=idempotent,
                                          deadline=deadline)

    def submit(self, request: "SweepRequest | None" = None,
               **grid: Any) -> JobRecord:
        """Submit a sweep request (or build one from keyword arguments)."""
        if request is None:
            request = SweepRequest(**grid)
        elif grid:
            raise InvalidParameterError(
                "pass either a SweepRequest or grid keyword arguments, not both")
        final = request
        return self._invoke(lambda: self.transport.submit(final),
                            idempotent=False)

    @staticmethod
    def _as_request(problem: "MinEnergyProblem | SolveRequest", *,
                    method: str | None, exact: bool | None,
                    options: "dict[str, Any] | None", keep_speeds: bool,
                    validate: bool) -> SolveRequest:
        if isinstance(problem, SolveRequest):
            return problem
        return SolveRequest.from_problem(problem, method=method, exact=exact,
                                         options=options,
                                         keep_speeds=keep_speeds,
                                         validate=validate)

    def solve(self, problem: "MinEnergyProblem | SolveRequest", *,
              method: str | None = None, exact: bool | None = None,
              options: "dict[str, Any] | None" = None,
              keep_speeds: bool = True,
              validate: bool = False) -> SolveResponse:
        """Solve one instance synchronously on whatever backend the
        transport talks to; identical behaviour on every transport.

        Accepts a :class:`~repro.core.problem.MinEnergyProblem` (encoded
        via :meth:`SolveRequest.from_problem`; the keyword knobs apply) or
        a ready-made :class:`SolveRequest` (used as-is).  A captured
        failure re-raises as its typed library exception — use
        :meth:`solve_batch` for the non-raising, row-per-instance flavour.
        """
        request = self._as_request(problem, method=method, exact=exact,
                                   options=options, keep_speeds=keep_speeds,
                                   validate=validate)
        response = self._invoke(lambda: self.transport.solve(request))
        return response.raise_for_error()

    def solve_batch(self, problems: "Sequence[MinEnergyProblem | SolveRequest]",
                    *, method: str | None = None, exact: bool | None = None,
                    options: "dict[str, Any] | None" = None,
                    keep_speeds: bool = False,
                    validate: bool = False) -> list[SolveResponse]:
        """Solve many instances in one round-trip and one batch tick.

        Returns one :class:`SolveResponse` per input, in order; failed
        instances are ``ok=False`` rows (typed ``error_type``), never
        raised, so one bad instance cannot sink the batch.
        """
        requests = [self._as_request(p, method=method, exact=exact,
                                     options=options, keep_speeds=False,
                                     validate=validate) for p in problems]
        return self._invoke(lambda: self.transport.solve_batch(
            requests, keep_speeds=keep_speeds))

    def status(self, job_id: str) -> JobRecord:
        return self._invoke(lambda: self.transport.status(job_id))

    def results(self, job_id: str, *, timeout: float | None = None,
                poll_interval: float = 0.05) -> Table:
        # wait() has its own transient tolerance; the policy layer only
        # scopes the deadline and retries the final table fetch
        deadline = (Deadline.after(self.deadline)
                    if self.deadline is not None else None)
        with deadline_scope(deadline if deadline is not None
                            else current_deadline()):
            if deadline is not None:
                timeout = (deadline.remaining() if timeout is None
                           else min(timeout, deadline.remaining()))
            return self.transport.results(job_id, timeout=timeout,
                                          poll_interval=poll_interval)

    def cancel(self, job_id: str) -> JobRecord:
        return self._invoke(lambda: self.transport.cancel(job_id))

    def jobs(self) -> list[JobRecord]:
        return self._invoke(lambda: self.transport.jobs())

    def scan_jobs(self) -> tuple[list[JobRecord], list[tuple[str, str]]]:
        return self._invoke(lambda: self.transport.scan_jobs())

    def attach(self, job_id: str) -> JobRecord:
        return self._invoke(lambda: self.transport.attach(job_id))

    def wait(self, job_id: str, *, timeout: float | None = None,
             poll_interval: float = 0.05) -> JobRecord:
        return self.transport.wait(job_id, timeout=timeout,
                                   poll_interval=poll_interval)

    def events(self, job_id: str, *, poll_interval: float = 0.05,
               timeout: float | None = None) -> Iterator[ProgressEvent]:
        return self.transport.events(job_id, poll_interval=poll_interval,
                                     timeout=timeout)

    def close(self) -> None:
        self.transport.close()

    def __enter__(self) -> "SolverClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


# --------------------------------------------------------------------- #
# local (in-process) transport
# --------------------------------------------------------------------- #
class LocalTransport(Transport):
    """In-process transport over a :class:`repro.service.SolverService`.

    The service pool may be shared (pass one in) or owned (created lazily
    and shut down by :meth:`close`).  Nothing is persisted: job ids are
    only resolvable inside this process — exactly the old
    ``SolverService`` contract, behind the client protocol.
    """

    def __init__(self, service: "SolverService | None" = None, *,
                 workers: int = 2, use_threads: bool = False,
                 cache: "ResultCache | None" = None) -> None:
        self._service = service
        self._owns_service = service is None
        self._workers = workers
        self._use_threads = use_threads
        self._cache = cache

    def service(self) -> "SolverService":
        if self._service is None:
            from repro.service import SolverService

            self._service = SolverService(workers=self._workers,
                                          use_threads=self._use_threads,
                                          cache=self._cache)
        return self._service

    def submit(self, request: SweepRequest) -> JobRecord:
        handle = self.service().submit_sweep(
            **request.grid_kwargs(), method=request.method,
            exact=request.exact, options=request.options or None,
            name=request.name, shard=request.shard_spec(),
            priors=request.fit_priors())
        return JobRecord.from_handle(handle)

    def solve(self, request: SolveRequest) -> SolveResponse:
        return execute_solve(self.service(), request,
                             deadline=current_deadline())

    def solve_batch(self, requests: Sequence[SolveRequest], *,
                    keep_speeds: bool = False) -> list[SolveResponse]:
        return execute_solve_batch(self.service(), requests,
                                   keep_speeds=keep_speeds)

    def _handle(self, job_id: str):
        try:
            return self.service().job(job_id)
        except KeyError:
            raise UnknownJobError(
                f"no job {job_id!r} in this process (local jobs do not "
                "survive a restart; use a disk or HTTP transport for that)"
            ) from None

    def status(self, job_id: str) -> JobRecord:
        return JobRecord.from_handle(self._handle(job_id))

    def fetch_results(self, job_id: str) -> Table:
        return self.service().job_table(job_id)

    def cancel(self, job_id: str) -> JobRecord:
        handle = self._handle(job_id)
        handle.cancel()
        return JobRecord.from_handle(handle)

    def jobs(self) -> list[JobRecord]:
        return [JobRecord.from_handle(h) for h in self.service().jobs()]

    def close(self) -> None:
        if self._owns_service and self._service is not None:
            self._service.shutdown()
            self._service = None


# --------------------------------------------------------------------- #
# durable disk transport
# --------------------------------------------------------------------- #
#: Default staleness threshold: a ``running`` record without a lease whose
#: runner heartbeat is older than this is considered orphaned (its process
#: died) and may be resumed on attach.  Override per transport with the
#: ``stale_after=`` constructor argument or the
#: ``REPRO_STALE_RUNNER_SECONDS`` environment variable.
STALE_RUNNER_SECONDS = 10.0

#: Default heartbeat cadence: the runner refreshes its record heartbeat
#: (and renews its lease) at least this often.  Override with the
#: ``heartbeat_seconds=`` constructor argument or ``REPRO_HEARTBEAT_SECONDS``.
#:
#: **Invariant: the lease must outlive the heartbeat** —
#: ``lease_seconds > heartbeat_seconds`` (in practice by >= 2x, the
#: constructor enforces the strict inequality), otherwise a perfectly
#: healthy runner's lease expires between two renewals and another worker
#: "reclaims" a live job.
HEARTBEAT_SECONDS = 2.0

#: Backwards-compatible alias of :data:`HEARTBEAT_SECONDS`.
_HEARTBEAT_SECONDS = HEARTBEAT_SECONDS


def _env_seconds(name: str, default: float) -> float:
    """A positive seconds value from the environment, else ``default``."""
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        value = float(raw)
    except ValueError:
        raise InvalidParameterError(
            f"{name} must be a number of seconds, got {raw!r}") from None
    if value <= 0:
        raise InvalidParameterError(f"{name} must be > 0 seconds, got {raw!r}")
    return value


def default_worker_id() -> str:
    """The ``host-pid`` worker identity used when none is configured."""
    try:
        host = socket.gethostname() or "localhost"
    except OSError:  # pragma: no cover - exotic resolver failures
        host = "localhost"
    return f"{host}-{os.getpid()}"


class DiskTransport(Transport):
    """Durable jobs over a :class:`~repro.api.jobstore.JobStore`.

    ``submit`` persists the record first and then executes it on a
    background runner (daemon) thread, streaming progress counters into
    the record with atomic replaces; if the process dies mid-job the
    record survives as ``pending``/``running`` and **any later process**
    can :meth:`attach`, which resumes the stored request — with a shared
    ``cache_dir`` the already-finished cells come back as warm hits and
    only the remainder is re-solved.

    Ownership is heartbeat-based: the runner stamps ``runner_pid`` and a
    ``runner_heartbeat`` timestamp into the record every couple of
    seconds, and :meth:`attach` only resumes a ``running`` record whose
    heartbeat has gone stale (:data:`STALE_RUNNER_SECONDS`) — attaching
    to a job that is alive in another process just follows it, it never
    duplicates the execution.

    ``start=False`` submits without executing (the CLI's ``--detach``
    against a plain directory): the record waits on disk until someone
    attaches.

    Ownership timings are configurable per transport: ``stale_after``
    (orphan threshold for legacy no-lease records), ``heartbeat_seconds``
    (progress/renewal cadence) and ``lease_seconds`` (claim duration,
    default ``stale_after``); each falls back to its
    ``REPRO_STALE_RUNNER_SECONDS`` / ``REPRO_HEARTBEAT_SECONDS`` /
    ``REPRO_LEASE_SECONDS`` environment variable before the module
    default.  The constructor enforces the lease-outlives-heartbeat
    invariant (see :data:`HEARTBEAT_SECONDS`).
    """

    def __init__(self, jobs_dir: "str | Any", *,
                 cache_dir: "str | None" = None,
                 cache: "ResultCache | None" = None,
                 workers: int = 2, use_threads: bool = False,
                 stale_after: float | None = None,
                 heartbeat_seconds: float | None = None,
                 lease_seconds: float | None = None,
                 worker_id: str | None = None) -> None:
        self.store = JobStore(jobs_dir)
        self._cache = cache
        # default the cache next to the records so resume-after-crash works
        # out of the box; "cache/" does not match the store's *.json scan.
        # Created lazily so read-only verbs (status, jobs) touch nothing.
        self._cache_dir = cache_dir or str(self.store.directory / "cache")
        self._workers = workers
        self._use_threads = use_threads
        self.stale_after = (stale_after if stale_after is not None else
                            _env_seconds("REPRO_STALE_RUNNER_SECONDS",
                                         STALE_RUNNER_SECONDS))
        self.heartbeat_seconds = (
            heartbeat_seconds if heartbeat_seconds is not None else
            _env_seconds("REPRO_HEARTBEAT_SECONDS", HEARTBEAT_SECONDS))
        self.lease_seconds = (lease_seconds if lease_seconds is not None else
                              _env_seconds("REPRO_LEASE_SECONDS",
                                           self.stale_after))
        for name, value in (("stale_after", self.stale_after),
                            ("heartbeat_seconds", self.heartbeat_seconds),
                            ("lease_seconds", self.lease_seconds)):
            if value <= 0:
                raise InvalidParameterError(f"{name} must be > 0, got {value}")
        if self.lease_seconds <= self.heartbeat_seconds:
            raise InvalidParameterError(
                f"lease_seconds ({self.lease_seconds}) must exceed "
                f"heartbeat_seconds ({self.heartbeat_seconds}): a lease "
                "shorter than the renewal cadence expires under a healthy "
                "runner and invites spurious reclaims"
            )
        self.worker_id = worker_id or default_worker_id()
        self._runners: dict[str, threading.Thread] = {}
        self._lock = threading.Lock()
        self._solve_service: "SolverService | None" = None
        # a small fixed policy around every job-store write: a transient
        # write failure (flaky filesystem, injected fault) must not turn
        # into a "failed" record or a lost heartbeat.  JobStateError is
        # not transient and still propagates immediately.
        self._store_retry = RetryPolicy(retries=4, initial=0.01,
                                        maximum=0.1, jitter=0.0)

    @property
    def cache(self) -> "ResultCache":
        if self._cache is None:
            from repro.cache import disk_cache

            self._cache = disk_cache(self._cache_dir)
        return self._cache

    def submit(self, request: SweepRequest, *, start: bool = True) -> JobRecord:
        job_id = new_job_id()  # fixed across write retries: no duplicates
        record = self._store_retry.call(
            lambda: self.store.create(request, job_id=job_id),
            idempotent=True)  # job_id is fixed, so re-create cannot duplicate
        if start:
            self._start_runner(record["job_id"], request)
        return JobRecord.from_wire(record)

    def status(self, job_id: str) -> JobRecord:
        return self.store.record(job_id)

    def fetch_results(self, job_id: str) -> Table:
        payload = self.store.load(job_id)
        columns = payload.get("columns")
        if not isinstance(columns, list):
            from repro.batch.sweep import SWEEP_COLUMNS

            # cancelled before anything ran: an empty sweep-shaped table
            return Table(columns=list(SWEEP_COLUMNS),
                         title=f"job {payload.get('name') or job_id}")
        table = Table(columns=[str(c) for c in columns],
                      rows=[list(r) for r in payload.get("rows") or []],
                      title=str(payload.get("title") or f"job {job_id}"))
        manifest = payload.get("manifest")
        if isinstance(manifest, dict):
            table.manifest = manifest
        return table

    def cancel(self, job_id: str) -> JobRecord:
        payload = self.store.load(job_id)
        status = payload.get("status")
        if status in ("done", "cancelled", "failed"):
            return JobRecord.from_wire(payload)  # terminal: nothing to do
        with self._lock:
            live = job_id in self._runners
        try:
            if live or not record_orphaned(payload,
                                           stale_after=self.stale_after):
                # a runner (here or elsewhere) owns the record; it observes
                # the flag at its next progress tick, cancels the pool
                # futures and transitions
                self.store.update(job_id, cancel_requested=True)
            else:
                self.store.transition(job_id, "cancelled")
        except JobStateError:
            pass  # the job reached a terminal state while we decided
        return self.store.record(job_id)

    def jobs(self) -> list[JobRecord]:
        return self.scan_jobs()[0]

    def scan_jobs(self) -> tuple[list[JobRecord], list[tuple[str, str]]]:
        records, skipped = self.store.scan()
        return [JobRecord.from_wire(r) for r in records], skipped

    def attach(self, job_id: str) -> JobRecord:
        """Re-attach by id; resume the stored request if it is orphaned.

        A ``pending`` record (detached submit, or a submitter that died
        before starting) is started; a ``running`` record is resumed only
        when no runner in this process owns it **and** its lease has
        expired (legacy records: stale heartbeat) — a live lease means
        another process is executing the job, and attaching must follow
        it, not fork a duplicate run.  The runner claims through
        :meth:`JobStore.claim`, so even two processes attaching the same
        orphan in the same instant resolve to one execution.  Resuming is
        idempotent through the result cache: finished cells are warm hits.
        """
        payload = self.store.load(job_id)
        status = payload.get("status")
        with self._lock:
            live = job_id in self._runners
        if not live and (
                status == "pending"
                or (status == "running"
                    and record_orphaned(payload,
                                        stale_after=self.stale_after))):
            self._start_runner(job_id, self.store.request(job_id))
        return self.store.record(job_id)

    def _solver(self) -> "SolverService":
        """The lazy in-process service behind ``solve``/``solve_batch``.

        Synchronous solves never touch the job store — they ride the
        vectorized fast path of a private single-thread service (the solve
        path never hops to the pool anyway).
        """
        with self._lock:
            if self._solve_service is None:
                from repro.service import SolverService

                self._solve_service = SolverService(workers=1,
                                                    use_threads=True)
            return self._solve_service

    def solve(self, request: SolveRequest) -> SolveResponse:
        return execute_solve(self._solver(), request,
                             deadline=current_deadline())

    def solve_batch(self, requests: Sequence[SolveRequest], *,
                    keep_speeds: bool = False) -> list[SolveResponse]:
        return execute_solve_batch(self._solver(), requests,
                                   keep_speeds=keep_speeds)

    def drain(self, *, timeout: float | None = None) -> int:
        """Wait for the in-flight runner threads to finish their jobs.

        The graceful-shutdown half of the transport: ``repro serve``
        calls it on SIGTERM so accepted jobs reach a terminal record
        before the process exits.  Returns the number of runners still
        alive when ``timeout`` ran out (0 = fully drained).
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            runners = list(self._runners.values())
        still_alive = 0
        for thread in runners:
            wait = (None if deadline is None
                    else max(0.0, deadline - time.monotonic()))
            thread.join(timeout=wait)
            if thread.is_alive():
                still_alive += 1
        return still_alive

    def close(self) -> None:
        with self._lock:
            runners = list(self._runners.values())
            solver, self._solve_service = self._solve_service, None
        if solver is not None:
            solver.shutdown()
        for thread in runners:
            thread.join(timeout=0.1)

    # ------------------------------------------------------------------ #
    # the runner
    # ------------------------------------------------------------------ #
    def _start_runner(self, job_id: str, request: SweepRequest) -> None:
        thread = threading.Thread(target=self._run, args=(job_id, request),
                                  name=f"repro-job-{job_id}", daemon=True)
        with self._lock:
            self._runners[job_id] = thread
        thread.start()

    def _run(self, job_id: str, request: SweepRequest) -> None:
        """Thread target: claim the record, then execute it to a terminal
        state.  Losing the claim (another worker owns a live lease, or a
        merge job's dependencies are not terminal yet) is not an error —
        the record belongs to someone else and this runner walks away.
        """
        try:
            try:
                self._store_retry.call(lambda: self.store.claim(
                    job_id, self.worker_id, self.lease_seconds),
                    idempotent=True)  # claim is keyed by worker_id: replayable
            except JobStateError:
                return
            self.run_claimed(job_id, request)
        finally:
            with self._lock:
                self._runners.pop(job_id, None)

    def run_claimed(self, job_id: str, request: SweepRequest, *,
                    should_stop: "Callable[[], bool] | None" = None) -> str:
        """Execute a record this worker has already claimed; return the
        final status (``done`` / ``cancelled`` / ``failed`` /
        ``released`` / ``lost``).

        The shared execution body of the transport's runner threads and
        the ``repro work`` fleet loop.  Progress writes renew the lease
        (heartbeat == renewal, one atomic write); ``should_stop`` is the
        worker's shutdown flag — when it flips, the in-flight instances
        are cancelled and the record is *released* back to ``pending`` so
        any other worker picks it up immediately.  A ``JobStateError``
        from a conditional write means the lease was lost to another
        claimer: execution is abandoned without touching the record
        (``lost``), so two live lease holders never both write rows.
        """
        from repro.service import SolverService

        if self.store.load(job_id).get("job_type") == "merge":
            from repro.fleet.submit import execute_merge_job

            return execute_merge_job(self.store, job_id,
                                     worker_id=self.worker_id)
        try:
            with SolverService(workers=self._workers,
                               use_threads=self._use_threads,
                               cache=self.cache) as service:
                handle = service.submit_sweep(
                    **request.grid_kwargs(), method=request.method,
                    exact=request.exact, options=request.options or None,
                    name=request.name or job_id, shard=request.shard_spec(),
                    priors=request.fit_priors())
                self._store_retry.call(lambda: self.store.update(
                    job_id, expected_worker=self.worker_id,
                    total=handle.total,
                    grid_fingerprint=handle.fingerprint,
                    params=dict(handle.params)))
                outcome = self._poll_to_completion(job_id, handle,
                                                   should_stop=should_stop)
                if outcome == "released":
                    handle.cancel()
                    self._store_retry.call(
                        lambda: self.store.release(job_id, self.worker_id))
                    return "released"
                table = service.job_table(handle.job_id, timeout=60)
            progress = handle.progress()
            status = "cancelled" if outcome == "cancelled" else "done"
            self._store_retry.call(lambda: self.store.transition(
                job_id, status, expected_worker=self.worker_id,
                done=progress.done, failed=progress.failed,
                cache_hits=progress.cache_hits,
                title=table.title, columns=list(table.columns),
                rows=[list(row) for row in table.rows],
                manifest=getattr(table, "manifest", None)))
            return status
        except JobStateError:
            # the lease was lost (reclaimed after an expiry) or the record
            # was force-transitioned externally: never write over the new
            # owner's work
            return "lost"
        except Exception as exc:  # the record must reflect the blow-up
            try:
                self._store_retry.call(lambda: self.store.transition(
                    job_id, "failed", expected_worker=self.worker_id,
                    error=f"{type(exc).__name__}: {exc}"))
            except (JobStateError, TransientTransportError):
                pass  # cancel/reclaim raced us, or the store stayed down
            return "failed"

    def _poll_to_completion(self, job_id: str, handle, *,
                            should_stop: "Callable[[], bool] | None" = None
                            ) -> str:
        """Mirror live progress into the record; honour cancel requests.

        Besides the counters, every write renews the lease and refreshes
        the runner heartbeat in one atomic :meth:`JobStore.renew_lease`
        (and one is forced at least every ``heartbeat_seconds``), so
        observers can tell this job is owned by a live process and the
        lease never lapses under a healthy runner.  A
        :class:`JobStateError` from the store means the lease was lost or
        another process force-transitioned the record (external cancel) —
        it propagates, the service context manager cancels the pending
        pool futures.  Returns ``"done"``, ``"cancelled"`` or
        ``"released"`` (``should_stop`` flipped mid-run).
        """
        cancelled = False
        last: tuple | None = None
        last_beat = 0.0
        missed_beats = 0
        # how many consecutive beats may fail before the lease itself is
        # at risk (never fewer than 1: one missed beat is always
        # survivable because the lease outlives the heartbeat cadence)
        max_missed = max(1, int(self.lease_seconds
                                / self.heartbeat_seconds) - 1)
        for interval in backoff_intervals(0.02, maximum=0.5):
            if should_stop is not None and should_stop():
                return "released"
            progress = handle.progress()
            key = (progress.done, progress.failed, progress.cache_hits)
            now = time.time()
            if key != last or now - last_beat >= self.heartbeat_seconds:
                try:
                    failpoints.fire("worker.heartbeat", job_id=job_id,
                                    worker=self.worker_id)
                    self.store.renew_lease(job_id, self.worker_id,
                                           self.lease_seconds,
                                           done=progress.done,
                                           failed=progress.failed,
                                           cache_hits=progress.cache_hits)
                except TransientTransportError:
                    # a flaky store (or an armed worker.heartbeat
                    # failpoint) skips this beat; the next tick retries
                    missed_beats += 1
                    if missed_beats > max_missed:
                        raise
                else:
                    missed_beats = 0
                    last = key
                    last_beat = now
            if handle.done():
                return "cancelled" if cancelled else "done"
            if not cancelled:
                try:
                    payload = self.store.load(job_id)
                except TransientTransportError:
                    payload = None  # check again next tick
                if payload is not None and payload.get("cancel_requested"):
                    handle.cancel()
                    cancelled = True
            time.sleep(interval)
        raise AssertionError("unreachable")  # pragma: no cover


# --------------------------------------------------------------------- #
# HTTP transport
# --------------------------------------------------------------------- #
class HTTPTransport(Transport):
    """Client of the ``repro serve`` HTTP backend (:mod:`repro.server`).

    Speaks the ``/v1`` JSON protocol with stdlib ``urllib`` only.  Typed
    error bodies re-raise as their library exception classes
    (:class:`UnknownJobError` for 404s, :class:`SchemaVersionError` for
    version mismatches, ...).  ``events`` consumes the server's chunked
    ndjson stream instead of polling.

    Connection-level failures are *classified*: resets, timeouts,
    refused connections and garbled bodies raise
    :class:`~repro.utils.errors.TransientTransportError` (refused
    connections additionally carry ``maybe_executed=False`` — the server
    provably never saw the request), everything else stays a terminal
    :class:`TransportError`.  ``retry_policy`` (default: 2 retries,
    ``REPRO_RETRIES`` overrides) re-issues idempotent calls on transient
    failures; a job submission is retried only when the failure was
    provably pre-execution.  ``breaker`` fails fast with
    :class:`~repro.utils.errors.CircuitOpenError` once the backend has
    refused enough consecutive connections.  An ambient
    :func:`~repro.reliability.deadline_scope` deadline is stamped onto
    every request as the ``X-Repro-Deadline`` header.
    """

    def __init__(self, base_url: str, *, timeout: float = 30.0,
                 token: str | None = None,
                 retry_policy: "RetryPolicy | None" = None,
                 breaker: "CircuitBreaker | None" = None) -> None:
        if not base_url.startswith(("http://", "https://")):
            raise TransportError(
                f"HTTP transport needs an http(s):// URL, got {base_url!r}")
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        # bearer token for a --token'd server; defaults from REPRO_TOKEN so
        # every CLI verb inherits auth without per-command plumbing
        self.token = token if token is not None else (
            os.environ.get("REPRO_TOKEN") or None)
        self.retry_policy = (retry_policy if retry_policy is not None
                             else RetryPolicy.from_env(default_retries=2,
                                                       maximum=1.0))
        self.breaker = breaker if breaker is not None else CircuitBreaker()

    def _url(self, path: str) -> str:
        return f"{self.base_url}{PROTOCOL_PREFIX}{path}"

    def _headers(self) -> dict[str, str]:
        headers = {"Content-Type": "application/json"}
        if self.token:
            headers["Authorization"] = f"Bearer {self.token}"
        deadline = current_deadline()
        if deadline is not None:
            headers[DEADLINE_HEADER] = deadline.to_header()
        return headers

    def _classify_urlerror(self, exc: urlerror.URLError) -> TransportError:
        """A typed, retryability-classified error for a connection failure."""
        reason = exc.reason
        if isinstance(reason, ConnectionRefusedError) or (
                isinstance(reason, OSError)
                and reason.errno in (111, 61)):  # ECONNREFUSED linux/mac
            # the server never accepted the connection: provably
            # pre-execution, so even a submission may retry
            error = TransientTransportError(
                f"cannot reach {self.base_url}: connection refused")
            error.maybe_executed = False
            return error
        if isinstance(reason, (ConnectionError, socket.timeout, TimeoutError,
                               OSError)):
            return TransientTransportError(
                f"cannot reach {self.base_url}: {reason}")
        return TransportError(f"cannot reach {self.base_url}: {reason}")

    def _call(self, method: str, path: str, *, body: dict | None = None,
              idempotent: bool = True) -> Any:
        """One request under the transport's policies: circuit breaker,
        failure classification, and transient-failure retries."""
        return self.retry_policy.call(
            lambda: self._call_once(method, path, body=body),
            idempotent=idempotent, deadline=current_deadline())

    def _call_once(self, method: str, path: str, *,
                   body: dict | None = None) -> Any:
        self.breaker.allow(what=f"{method} {path}")
        # "garbage" asks us to corrupt the response body we are about to
        # read; "raise" and "latency" act inside fire() itself
        action = failpoints.fire("http.request", method=method, path=path)
        data = None if body is None else json.dumps(body).encode("utf-8")
        req = urlrequest.Request(self._url(path), data=data, method=method,
                                 headers=self._headers())
        try:
            with urlrequest.urlopen(req, timeout=self.timeout) as resp:
                raw = resp.read()
        except urlerror.HTTPError as exc:
            # the server answered: the backend is alive
            self.breaker.record_success()
            self._raise_http_error(exc)
        except urlerror.URLError as exc:
            error = self._classify_urlerror(exc)
            if isinstance(error, TransientTransportError):
                self.breaker.record_failure()
            raise error from exc
        except (socket.timeout, TimeoutError, ConnectionError,
                httpclient.HTTPException, OSError) as exc:
            # died mid-exchange (reset, truncated chunk, socket timeout):
            # the request may have executed, but it is safe to retry reads
            self.breaker.record_failure()
            raise TransientTransportError(
                f"request to {self.base_url} broke: {exc}") from exc
        self.breaker.record_success()
        if action == "garbage":
            raw = b"\xffgarbage\xff" + raw[: len(raw) // 3]
        try:
            return json.loads(raw.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            # a truncated/garbled body reads as a transient wire glitch,
            # not a protocol violation: the next attempt usually parses
            raise TransientTransportError(
                f"{self.base_url} returned a garbled body: {exc}") from exc

    @staticmethod
    def _raise_http_error(exc: urlerror.HTTPError) -> None:
        try:
            payload = json.loads(exc.read().decode("utf-8"))
        except Exception:
            raise TransportError(
                f"HTTP {exc.code} from {exc.url} (no typed error body)"
            ) from exc
        raise_wire_error(payload, fallback=f"HTTP {exc.code} from {exc.url}")

    def submit(self, request: SweepRequest) -> JobRecord:
        return JobRecord.from_wire(
            self._call("POST", "/jobs", body=request.to_wire(),
                       idempotent=False))

    def solve(self, request: SolveRequest) -> SolveResponse:
        return SolveResponse.from_wire(
            self._call("POST", "/solve", body=request.to_wire()))

    def solve_batch(self, requests: Sequence[SolveRequest], *,
                    keep_speeds: bool = False) -> list[SolveResponse]:
        frame = self._call("POST", "/solve_batch", body={
            "schema_version": SCHEMA_VERSION,
            "requests": [r.to_wire() for r in requests],
            "keep_speeds": bool(keep_speeds),
        })
        # reattach task names from our own request graphs: the server
        # preserved each instance's task order, so names never travel
        task_names = [list((r.graph.get("tasks") or {}).keys())
                      for r in requests]
        rows = decode_rows(frame, task_names=task_names)
        if len(rows) != len(requests):
            raise TransportError(
                f"batch response carries {len(rows)} rows for "
                f"{len(requests)} requests")
        return rows

    def status(self, job_id: str) -> JobRecord:
        return JobRecord.from_wire(self._call("GET", f"/jobs/{job_id}"))

    def fetch_results(self, job_id: str) -> Table:
        return table_from_wire(self._call("GET", f"/jobs/{job_id}/results"))

    def cancel(self, job_id: str) -> JobRecord:
        return JobRecord.from_wire(
            self._call("POST", f"/jobs/{job_id}/cancel"))

    def jobs(self) -> list[JobRecord]:
        return self.scan_jobs()[0]

    def scan_jobs(self) -> tuple[list[JobRecord], list[tuple[str, str]]]:
        payload = self._call("GET", "/jobs")
        if not isinstance(payload, dict) or "jobs" not in payload:
            raise TransportError("malformed job listing from the server")
        skipped = [(str(name), str(reason))
                   for name, reason in payload.get("skipped") or []]
        return [JobRecord.from_wire(r) for r in payload["jobs"]], skipped

    def events(self, job_id: str, *, poll_interval: float = 0.05,
               timeout: float | None = None) -> Iterator[ProgressEvent]:
        """Consume the server's chunked ndjson progress stream.

        A *transient* break (connection reset mid-stream, an armed
        ``http.stream`` failpoint) reconnects — up to the retry policy's
        attempt count — deduplicating the fresh connection's leading
        snapshot event and renumbering ``seq`` continuously, so the
        consumer sees one uninterrupted stream.  Typed in-band errors
        from the server (a draining server's
        :class:`~repro.utils.errors.ServerShutdownError` line) propagate
        as their exception class, never as a silent truncation.
        """
        stream_timeout = timeout if timeout is not None else 3600.0
        seq = 0
        last_key: tuple | None = None
        breaks = 0
        max_breaks = max(1, self.retry_policy.retries)
        while True:
            try:
                resp = self._open_stream(job_id, stream_timeout)
                with resp:
                    while True:
                        failpoints.fire("http.stream", job_id=job_id)
                        try:
                            raw = resp.readline()
                        except (OSError,
                                httpclient.HTTPException) as exc:
                            # the server died or the socket timed out
                            # mid-stream: typed, and retryable
                            raise TransientTransportError(
                                f"event stream from {self.base_url} "
                                f"broke: {exc}") from exc
                        if not raw:
                            return
                        line = raw.strip()
                        if not line:
                            continue
                        try:
                            payload = json.loads(line.decode("utf-8"))
                        except (ValueError, UnicodeDecodeError) as exc:
                            raise TransientTransportError(
                                f"malformed event-stream line: "
                                f"{line[:120]!r}") from exc
                        if isinstance(payload, dict) and "error" in payload:
                            raise_wire_error(payload)
                        event = ProgressEvent.from_wire(payload)
                        key = (event.status, event.done, event.failed)
                        if key == last_key:
                            continue  # reconnect replayed the snapshot
                        last_key = key
                        event = dataclasses.replace(event, seq=seq)
                        seq += 1
                        yield event
                        if event.terminal:
                            return
            except TransientTransportError as exc:
                if isinstance(exc, ServerShutdownError):
                    # the server's typed in-band drain line is the
                    # contract (satellite of the drain behaviour): the
                    # consumer must see it, not a quiet reconnect loop
                    raise
                breaks += 1
                if breaks > max_breaks:
                    raise
                time.sleep(min(0.05 * breaks, 0.5))

    def _open_stream(self, job_id: str, stream_timeout: float):
        """Open the chunked event stream (typed connection errors)."""
        req = urlrequest.Request(self._url(f"/jobs/{job_id}/events"),
                                 headers=self._headers())
        try:
            return urlrequest.urlopen(req, timeout=stream_timeout)
        except urlerror.HTTPError as exc:
            self._raise_http_error(exc)
            raise AssertionError("unreachable")  # pragma: no cover
        except urlerror.URLError as exc:
            raise self._classify_urlerror(exc) from exc
