"""Durable on-disk job store under ``.repro-jobs/``.

One JSON file per job, the record shape of
:class:`repro.api.protocol.JobRecord` plus the submitted
:class:`~repro.api.protocol.SweepRequest` (so an orphaned job can be
resumed by any later process) and, once terminal, the full result rows.

Writes are atomic (temp file + ``os.replace``), so a crashed writer never
leaves a truncated record behind, and **state transitions are checked**: a
terminal record (``done``/``cancelled``/``failed``) can never transition
again, and only the legal lifecycle edges
(``pending -> running|cancelled|failed``, ``running -> running|done|
cancelled|failed``) are accepted — an illegal edge raises
:class:`~repro.utils.errors.JobStateError` instead of silently clobbering
a finished job.

Fleet execution is built on **claim-with-lease**: :meth:`JobStore.claim`
is the one way a worker takes ownership of a record.  It is atomic across
processes and machines sharing the directory (an ``O_CREAT|O_EXCL`` lock
file serialises the read-modify-write), moves ``pending -> running``
stamped with ``worker_id`` and a ``lease_expires_at`` expiry, and is the
*only* sanctioned way to take over a ``running`` record — allowed exactly
when its lease has expired (the owner died or stalled), so two live lease
holders can never race one record.  :meth:`renew_lease` extends a held
lease (runners fold it into their heartbeat writes), :meth:`release` hands
a record back to ``pending`` cleanly (SIGTERM), and writers that pass
``expected_worker=`` to :meth:`transition`/:meth:`update` are refused with
:class:`~repro.utils.errors.JobStateError` once their lease has been lost
to another claimer — a stalled ex-owner can never overwrite the work of
the worker that reclaimed its job.

Every record carries ``schema_version``; :meth:`JobStore.load` rejects
unknown versions with :class:`~repro.utils.errors.SchemaVersionError`, and
:meth:`JobStore.scan` reports (rather than hides) unreadable files so
``repro jobs --strict`` can fail loudly.
"""

from __future__ import annotations

import contextlib
import json
import os
import threading
import time
import uuid
from pathlib import Path
from typing import Any, Iterator

from repro.api.protocol import (
    JOB_STATUSES,
    SCHEMA_VERSION,
    TERMINAL_STATUSES,
    JobRecord,
    SweepRequest,
    check_schema_version,
)
from repro.reliability import failpoints
from repro.utils.errors import (
    InjectedFaultError,
    InvalidParameterError,
    JobStateError,
    TransportError,
    UnknownJobError,
)

#: ``kind`` marker of a job-record JSON document.
JOB_RECORD_KIND = "repro-job"

#: A ``running`` record with no lease (written by a pre-lease build) whose
#: runner heartbeat is older than this is considered orphaned.  Leased
#: records use their own ``lease_expires_at`` instead.
STALE_RUNNER_SECONDS = 10.0

#: A claim lock file older than this is assumed to belong to a claimer
#: that died between acquiring and releasing it (the lock is only ever
#: held for one read-modify-write, i.e. milliseconds) and is broken.
_STALE_LOCK_SECONDS = 30.0

#: Legal lifecycle edges (``running -> running`` carries progress updates).
_LEGAL_TRANSITIONS = {
    "pending": ("running", "cancelled", "failed"),
    "running": ("running", "done", "cancelled", "failed"),
}


def new_job_id() -> str:
    """A fresh collision-resistant job id (sortable by creation time)."""
    return f"job-{int(time.time())}-{uuid.uuid4().hex[:8]}"


def record_orphaned(payload: dict, *, now: float | None = None,
                    stale_after: float = STALE_RUNNER_SECONDS) -> bool:
    """Whether a ``running`` record's owner is presumed dead.

    A leased record (written by :meth:`JobStore.claim` or a lease-renewing
    runner) is orphaned exactly when its ``lease_expires_at`` has passed —
    the contractual takeover point.  A legacy record without a lease falls
    back to the old heartbeat-staleness check (``runner_heartbeat`` older
    than ``stale_after`` seconds).
    """
    now = time.time() if now is None else now
    lease = payload.get("lease_expires_at")
    if lease is not None:
        try:
            return now > float(lease)
        except (TypeError, ValueError):
            return True
    try:
        heartbeat = float(payload.get("runner_heartbeat") or 0.0)
    except (TypeError, ValueError):
        heartbeat = 0.0
    return now - heartbeat > stale_after


class JobStore:
    """One JSON record per job under ``directory``, atomically updated."""

    def __init__(self, directory: "str | os.PathLike") -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()

    def path(self, job_id: str) -> Path:
        if not job_id or "/" in job_id or job_id.startswith("."):
            raise UnknownJobError(f"invalid job id {job_id!r}")
        return self.directory / f"{job_id}.json"

    # ------------------------------------------------------------------ #
    # cross-process mutual exclusion
    # ------------------------------------------------------------------ #
    @contextlib.contextmanager
    def _job_mutex(self, job_id: str, *,
                   timeout: float = 5.0) -> Iterator[None]:
        """Exclusive cross-process lock for one record's read-modify-write.

        Acquired via ``O_CREAT|O_EXCL`` creation of a ``.<job_id>.lock``
        sidecar (atomic on every platform and on the shared filesystems a
        fleet mounts the store on), so two worker *processes* serialise
        exactly like two threads.  The lock is held for milliseconds; one
        left behind by a claimer that died mid-write is broken after
        :data:`_STALE_LOCK_SECONDS`.
        """
        self.path(job_id)  # reject malformed ids before touching the fs
        lock_path = self.directory / f".{job_id}.lock"
        deadline = time.monotonic() + timeout
        while True:
            try:
                fd = os.open(lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                break
            except FileExistsError:
                try:
                    age = time.time() - lock_path.stat().st_mtime
                except OSError:  # released between open() and stat()
                    age = 0.0
                if age > _STALE_LOCK_SECONDS:
                    with contextlib.suppress(OSError):
                        lock_path.unlink()
                    continue
                if time.monotonic() >= deadline:
                    raise JobStateError(
                        f"could not lock job {job_id} within {timeout}s "
                        f"(stuck lock file {lock_path.name}?)"
                    )
                time.sleep(0.003)
        try:
            with contextlib.suppress(OSError):
                os.write(fd, f"{os.getpid()}\n".encode("ascii"))
            os.close(fd)
            yield
        finally:
            with contextlib.suppress(OSError):
                lock_path.unlink()

    # ------------------------------------------------------------------ #
    # writing
    # ------------------------------------------------------------------ #
    def create(self, request: SweepRequest, *, job_id: str | None = None,
               status: str = "pending",
               extra: dict[str, Any] | None = None) -> dict[str, Any]:
        """Persist a fresh record for a submitted request; return it.

        ``extra`` folds additional fields into the record — the fleet
        layer uses it for ``job_type`` (``"merge"``) and ``depends_on``
        (the shard job ids a merge job waits for).
        """
        job_id = job_id or new_job_id()
        record: dict[str, Any] = {
            "kind": JOB_RECORD_KIND,
            "schema_version": SCHEMA_VERSION,
            "job_id": job_id,
            "name": request.name or job_id,
            "status": status,
            "created_at": time.time(),
            "finished_at": None,
            "total": 0,
            "done": 0,
            "failed": 0,
            "cache_hits": 0,
            "shard": request.shard,
            "grid_fingerprint": "",
            "params": {"kind": "sweep", "model": request.model},
            "error": None,
            "request": request.to_wire(),
        }
        if extra:
            forbidden = {"job_id", "status", "kind", "schema_version"}
            bad = forbidden & set(extra)
            if bad:
                raise JobStateError(
                    f"create(extra=...) cannot override {sorted(bad)}")
            record.update(extra)
        with self._lock:
            if self.path(job_id).exists():
                raise JobStateError(f"job record {job_id} already exists")
            self._write(record)
        return record

    @staticmethod
    def _check_owner(record: dict[str, Any], expected_worker: str | None,
                     verb: str) -> None:
        """Refuse a write from a worker whose lease has been lost."""
        if expected_worker is None:
            return
        owner = record.get("worker_id")
        if owner != expected_worker:
            raise JobStateError(
                f"job {record.get('job_id')}: {verb} refused — the lease "
                f"of {expected_worker!r} was lost (record now owned by "
                f"{owner!r}); abandon this execution, the new owner "
                "re-runs the job"
            )

    def transition(self, job_id: str, status: str, *,
                   expected_worker: str | None = None,
                   **updates: Any) -> dict[str, Any]:
        """Atomically move a record to ``status``, folding in ``updates``.

        Raises :class:`JobStateError` for an edge the lifecycle does not
        allow — in particular any transition out of a terminal state —
        and, when ``expected_worker`` is given, for a record whose lease
        is no longer held by that worker.
        """
        if status not in JOB_STATUSES:
            raise JobStateError(f"unknown job status {status!r}")
        with self._lock, self._job_mutex(job_id):
            record = self._load_locked(job_id)
            current = record.get("status", "pending")
            if current in TERMINAL_STATUSES:
                raise JobStateError(
                    f"job {job_id} is already {current}; records in a "
                    f"terminal state cannot transition (to {status!r})"
                )
            if status not in _LEGAL_TRANSITIONS.get(current, ()):
                raise JobStateError(
                    f"illegal job transition {current!r} -> {status!r} "
                    f"for {job_id}"
                )
            self._check_owner(record, expected_worker, f"-> {status}")
            record["status"] = status
            if status in TERMINAL_STATUSES and record.get("finished_at") is None:
                record["finished_at"] = time.time()
            record.update(updates)
            self._write(record)
        return record

    def update(self, job_id: str, *, expected_worker: str | None = None,
               **updates: Any) -> dict[str, Any]:
        """Fold non-lifecycle updates (progress counters) into a record.

        Refuses ``status`` (use :meth:`transition` / :meth:`reclaim`) and
        refuses to touch a terminal record — the "terminal records never
        change" invariant holds against every writer, so a runner whose
        job was cancelled from another process gets a
        :class:`JobStateError` on its next progress tick instead of
        silently mutating a finished record.  ``expected_worker`` makes
        the write conditional on still holding the lease, so a stalled
        runner notices the takeover at its next heartbeat.
        """
        if "status" in updates:
            raise JobStateError(
                "update() cannot change a record's status; use "
                "transition() or reclaim()"
            )
        with self._lock, self._job_mutex(job_id):
            record = self._load_locked(job_id)
            if record.get("status") in TERMINAL_STATUSES:
                raise JobStateError(
                    f"job {job_id} is already {record.get('status')}; "
                    "terminal records do not take updates"
                )
            self._check_owner(record, expected_worker, "update")
            record.update(updates)
            self._write(record)
        return record

    # ------------------------------------------------------------------ #
    # claim / lease
    # ------------------------------------------------------------------ #
    def claim(self, job_id: str, worker_id: str,
              lease_seconds: float) -> dict[str, Any]:
        """Atomically take ownership of a record for ``lease_seconds``.

        Succeeds for a ``pending`` record whose dependencies (if any) are
        all terminal, and for a ``running`` record whose lease has
        expired (the previous owner died or stalled — the record's
        ``reclaims`` counter is bumped).  Everything else raises
        :class:`JobStateError`: a live lease, unmet dependencies, or a
        terminal record.  The read-modify-write runs under the
        cross-process job mutex, so of N concurrent claimers exactly one
        wins and the rest get the typed error.
        """
        if not worker_id:
            raise InvalidParameterError("claim() needs a non-empty worker_id")
        if not lease_seconds > 0:
            raise InvalidParameterError(
                f"lease_seconds must be > 0, got {lease_seconds}")
        with self._lock, self._job_mutex(job_id):
            record = self._load_locked(job_id)
            status = record.get("status", "pending")
            now = time.time()
            if status in TERMINAL_STATUSES:
                raise JobStateError(
                    f"job {job_id} is already {status}; terminal records "
                    "cannot be claimed"
                )
            if status == "pending":
                waiting = self._unfinished_dependencies(record)
                if waiting:
                    raise JobStateError(
                        f"job {job_id} is not claimable yet: waiting on "
                        f"{len(waiting)} dependenc"
                        f"{'y' if len(waiting) == 1 else 'ies'} "
                        f"({', '.join(waiting[:4])})"
                    )
            else:  # running: take over only across an expired lease
                if not record_orphaned(record, now=now):
                    lease = record.get("lease_expires_at")
                    holder = record.get("worker_id") or "another worker"
                    detail = (f"lease held for another "
                              f"{float(lease) - now:.1f}s"
                              if lease is not None else "heartbeat is fresh")
                    raise JobStateError(
                        f"job {job_id} is running under {holder} ({detail}); "
                        "a live lease cannot be claimed"
                    )
                record["reclaims"] = int(record.get("reclaims") or 0) + 1
            record["status"] = "running"
            record["worker_id"] = worker_id
            record["lease_seconds"] = float(lease_seconds)
            record["lease_expires_at"] = now + float(lease_seconds)
            record["runner_pid"] = os.getpid()
            record["runner_heartbeat"] = now
            record["claim_count"] = int(record.get("claim_count") or 0) + 1
            self._write(record)
        return record

    def renew_lease(self, job_id: str, worker_id: str,
                    lease_seconds: float, **updates: Any) -> dict[str, Any]:
        """Extend a held lease (and fold progress ``updates`` in).

        One atomic write covers lease renewal, the runner heartbeat and
        the progress counters — the runner's heartbeat *is* its renewal.
        Raises :class:`JobStateError` if the lease is no longer held by
        ``worker_id`` (another claimer took over after expiry) or the
        record went terminal (external cancel).
        """
        now = time.time()
        return self.update(job_id, expected_worker=worker_id,
                           lease_expires_at=now + float(lease_seconds),
                           runner_heartbeat=now, **updates)

    def release(self, job_id: str, worker_id: str) -> dict[str, Any]:
        """Hand a claimed record back to ``pending`` (clean shutdown).

        The cooperative counterpart of lease expiry: a worker that must
        stop (SIGTERM, drain) releases its claim so any other worker can
        pick the job up immediately instead of waiting out the lease.
        Ownership is enforced — only the lease holder can release.
        """
        with self._lock, self._job_mutex(job_id):
            record = self._load_locked(job_id)
            if record.get("status") != "running":
                raise JobStateError(
                    f"job {job_id} is {record.get('status')!r}, not "
                    "'running'; only claimed running records can be released"
                )
            self._check_owner(record, worker_id, "release")
            record["status"] = "pending"
            record["worker_id"] = None
            record["lease_expires_at"] = None
            self._write(record)
        return record

    def reclaim(self, job_id: str) -> dict[str, Any]:
        """Take an orphaned ``running`` record back to ``pending``.

        The one sanctioned back-edge in the lifecycle, used by
        :meth:`repro.api.client.DiskTransport.attach` when the process
        that owned a running job died (expired lease / stale heartbeat).
        Raises :class:`JobStateError` for any other state.
        """
        with self._lock, self._job_mutex(job_id):
            record = self._load_locked(job_id)
            if record.get("status") != "running":
                raise JobStateError(
                    f"job {job_id} is {record.get('status')!r}, not "
                    "'running'; only orphaned running records can be "
                    "reclaimed"
                )
            record["status"] = "pending"
            record["worker_id"] = None
            record["lease_expires_at"] = None
            self._write(record)
        return record

    def _unfinished_dependencies(self, record: dict[str, Any]) -> list[str]:
        """Ids in ``depends_on`` that are not terminal yet.

        A dependency whose record is missing or unreadable counts as
        satisfied — the claim then fails loudly at execution time
        (:class:`UnknownJobError`) instead of parking the dependent job
        in an invisible forever-pending state.
        """
        waiting: list[str] = []
        for dep in record.get("depends_on") or []:
            try:
                dep_record = self._load_locked(str(dep))
            except (UnknownJobError, TransportError):
                continue
            if dep_record.get("status") not in TERMINAL_STATUSES:
                waiting.append(str(dep))
        return waiting

    def claimable(self, *, now: float | None = None,
                  stale_after: float = STALE_RUNNER_SECONDS
                  ) -> list[dict[str, Any]]:
        """Records a worker may claim right now, oldest first.

        ``pending`` records whose dependencies are all terminal, plus
        ``running`` records whose lease has expired (legacy no-lease
        records: heartbeat older than ``stale_after``).  The list is a
        snapshot — :meth:`claim` still arbitrates, so a worker simply
        tries each candidate and moves on when it loses the race.
        """
        now = time.time() if now is None else now
        records, _ = self.scan()
        out: list[dict[str, Any]] = []
        for record in records:
            status = record.get("status")
            if status == "pending":
                with self._lock:
                    if self._unfinished_dependencies(record):
                        continue
                out.append(record)
            elif status == "running" and record_orphaned(
                    record, now=now, stale_after=stale_after):
                out.append(record)
        return out

    def _write(self, record: dict[str, Any]) -> None:
        path = self.path(record["job_id"])
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        payload = json.dumps(record, indent=2, default=repr) + "\n"
        action = failpoints.fire("jobstore.write",
                                 job_id=record.get("job_id"),
                                 status=record.get("status"),
                                 worker=record.get("worker_id"))
        if action == "torn":
            # a torn write dies mid-flush: only the temp file holds the
            # truncated bytes, the visible record is untouched — this is
            # exactly the crash the atomic os.replace protects against
            tmp.write_text(payload[: max(1, len(payload) // 2)],
                           encoding="utf-8")
            raise InjectedFaultError(
                f"failpoint 'jobstore.write' tore the write of "
                f"{record.get('job_id')!r} (temp file truncated)")
        tmp.write_text(payload, encoding="utf-8")
        os.replace(tmp, path)

    # ------------------------------------------------------------------ #
    # reading
    # ------------------------------------------------------------------ #
    def load(self, job_id: str) -> dict[str, Any]:
        """Read one record; typed errors for missing/corrupt/newer files."""
        with self._lock:
            return self._load_locked(job_id)

    def _load_locked(self, job_id: str) -> dict[str, Any]:
        path = self.path(job_id)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise UnknownJobError(
                f"no job {job_id!r} under {self.directory}") from None
        except (OSError, ValueError) as exc:
            raise TransportError(
                f"corrupt job record {path.name}: {exc}") from exc
        if not isinstance(payload, dict) or "job_id" not in payload:
            raise TransportError(f"{path.name} is not a job record")
        check_schema_version(payload, what=f"job record {path.name}")
        return payload

    def record(self, job_id: str) -> JobRecord:
        """The typed :class:`JobRecord` view of one stored record."""
        return JobRecord.from_wire(self.load(job_id))

    def request(self, job_id: str) -> SweepRequest:
        """The submitted request of a stored record (for resume)."""
        payload = self.load(job_id)
        wire = payload.get("request")
        if not isinstance(wire, dict):
            raise TransportError(
                f"job record {job_id} carries no resumable request")
        return SweepRequest.from_wire(wire)

    def scan(self) -> tuple[list[dict[str, Any]], list[tuple[str, str]]]:
        """All readable records plus ``(filename, reason)`` skip pairs.

        Sorted by creation time.  Unreadable, mistyped and
        version-mismatched files land in the skip list instead of being
        silently dropped — the caller decides whether that is fatal
        (``repro jobs --strict``).
        """
        records: list[dict[str, Any]] = []
        skipped: list[tuple[str, str]] = []
        for path in sorted(self.directory.glob("*.json")):
            job_id = path.stem
            try:
                with self._lock:
                    records.append(self._load_locked(job_id))
            except (TransportError, UnknownJobError) as exc:
                skipped.append((path.name, str(exc)))
        records.sort(key=lambda r: float(r.get("created_at") or 0.0)
                     if isinstance(r.get("created_at"), (int, float)) else 0.0)
        return records, skipped

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.json"))
