"""Durable on-disk job store under ``.repro-jobs/``.

One JSON file per job, the record shape of
:class:`repro.api.protocol.JobRecord` plus the submitted
:class:`~repro.api.protocol.SweepRequest` (so an orphaned job can be
resumed by any later process) and, once terminal, the full result rows.

Writes are atomic (temp file + ``os.replace``), so a crashed writer never
leaves a truncated record behind, and **state transitions are checked**: a
terminal record (``done``/``cancelled``/``failed``) can never transition
again, and only the legal lifecycle edges
(``pending -> running|cancelled|failed``, ``running -> running|done|
cancelled|failed``) are accepted — an illegal edge raises
:class:`~repro.utils.errors.JobStateError` instead of silently clobbering
a finished job.

Every record carries ``schema_version``; :meth:`JobStore.load` rejects
unknown versions with :class:`~repro.utils.errors.SchemaVersionError`, and
:meth:`JobStore.scan` reports (rather than hides) unreadable files so
``repro jobs --strict`` can fail loudly.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from pathlib import Path
from typing import Any

from repro.api.protocol import (
    JOB_STATUSES,
    SCHEMA_VERSION,
    TERMINAL_STATUSES,
    JobRecord,
    SweepRequest,
    check_schema_version,
)
from repro.utils.errors import (
    JobStateError,
    TransportError,
    UnknownJobError,
)

#: ``kind`` marker of a job-record JSON document.
JOB_RECORD_KIND = "repro-job"

#: Legal lifecycle edges (``running -> running`` carries progress updates).
_LEGAL_TRANSITIONS = {
    "pending": ("running", "cancelled", "failed"),
    "running": ("running", "done", "cancelled", "failed"),
}


def new_job_id() -> str:
    """A fresh collision-resistant job id (sortable by creation time)."""
    return f"job-{int(time.time())}-{uuid.uuid4().hex[:8]}"


class JobStore:
    """One JSON record per job under ``directory``, atomically updated."""

    def __init__(self, directory: "str | os.PathLike") -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()

    def path(self, job_id: str) -> Path:
        if not job_id or "/" in job_id or job_id.startswith("."):
            raise UnknownJobError(f"invalid job id {job_id!r}")
        return self.directory / f"{job_id}.json"

    # ------------------------------------------------------------------ #
    # writing
    # ------------------------------------------------------------------ #
    def create(self, request: SweepRequest, *, job_id: str | None = None,
               status: str = "pending") -> dict[str, Any]:
        """Persist a fresh record for a submitted request; return it."""
        job_id = job_id or new_job_id()
        record: dict[str, Any] = {
            "kind": JOB_RECORD_KIND,
            "schema_version": SCHEMA_VERSION,
            "job_id": job_id,
            "name": request.name or job_id,
            "status": status,
            "created_at": time.time(),
            "finished_at": None,
            "total": 0,
            "done": 0,
            "failed": 0,
            "cache_hits": 0,
            "shard": request.shard,
            "grid_fingerprint": "",
            "params": {"kind": "sweep", "model": request.model},
            "error": None,
            "request": request.to_wire(),
        }
        with self._lock:
            if self.path(job_id).exists():
                raise JobStateError(f"job record {job_id} already exists")
            self._write(record)
        return record

    def transition(self, job_id: str, status: str,
                   **updates: Any) -> dict[str, Any]:
        """Atomically move a record to ``status``, folding in ``updates``.

        Raises :class:`JobStateError` for an edge the lifecycle does not
        allow — in particular any transition out of a terminal state.
        """
        if status not in JOB_STATUSES:
            raise JobStateError(f"unknown job status {status!r}")
        with self._lock:
            record = self._load_locked(job_id)
            current = record.get("status", "pending")
            if current in TERMINAL_STATUSES:
                raise JobStateError(
                    f"job {job_id} is already {current}; records in a "
                    f"terminal state cannot transition (to {status!r})"
                )
            if status not in _LEGAL_TRANSITIONS.get(current, ()):
                raise JobStateError(
                    f"illegal job transition {current!r} -> {status!r} "
                    f"for {job_id}"
                )
            record["status"] = status
            if status in TERMINAL_STATUSES and record.get("finished_at") is None:
                record["finished_at"] = time.time()
            record.update(updates)
            self._write(record)
        return record

    def update(self, job_id: str, **updates: Any) -> dict[str, Any]:
        """Fold non-lifecycle updates (progress counters) into a record.

        Refuses ``status`` (use :meth:`transition` / :meth:`reclaim`) and
        refuses to touch a terminal record — the "terminal records never
        change" invariant holds against every writer, so a runner whose
        job was cancelled from another process gets a
        :class:`JobStateError` on its next progress tick instead of
        silently mutating a finished record.
        """
        if "status" in updates:
            raise JobStateError(
                "update() cannot change a record's status; use "
                "transition() or reclaim()"
            )
        with self._lock:
            record = self._load_locked(job_id)
            if record.get("status") in TERMINAL_STATUSES:
                raise JobStateError(
                    f"job {job_id} is already {record.get('status')}; "
                    "terminal records do not take updates"
                )
            record.update(updates)
            self._write(record)
        return record

    def reclaim(self, job_id: str) -> dict[str, Any]:
        """Take an orphaned ``running`` record back to ``pending``.

        The one sanctioned back-edge in the lifecycle, used by
        :meth:`repro.api.client.DiskTransport.attach` when the process
        that owned a running job died (stale heartbeat).  Raises
        :class:`JobStateError` for any other state.
        """
        with self._lock:
            record = self._load_locked(job_id)
            if record.get("status") != "running":
                raise JobStateError(
                    f"job {job_id} is {record.get('status')!r}, not "
                    "'running'; only orphaned running records can be "
                    "reclaimed"
                )
            record["status"] = "pending"
            self._write(record)
        return record

    def _write(self, record: dict[str, Any]) -> None:
        path = self.path(record["job_id"])
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(record, indent=2, default=repr) + "\n",
                       encoding="utf-8")
        os.replace(tmp, path)

    # ------------------------------------------------------------------ #
    # reading
    # ------------------------------------------------------------------ #
    def load(self, job_id: str) -> dict[str, Any]:
        """Read one record; typed errors for missing/corrupt/newer files."""
        with self._lock:
            return self._load_locked(job_id)

    def _load_locked(self, job_id: str) -> dict[str, Any]:
        path = self.path(job_id)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise UnknownJobError(
                f"no job {job_id!r} under {self.directory}") from None
        except (OSError, ValueError) as exc:
            raise TransportError(
                f"corrupt job record {path.name}: {exc}") from exc
        if not isinstance(payload, dict) or "job_id" not in payload:
            raise TransportError(f"{path.name} is not a job record")
        check_schema_version(payload, what=f"job record {path.name}")
        return payload

    def record(self, job_id: str) -> JobRecord:
        """The typed :class:`JobRecord` view of one stored record."""
        return JobRecord.from_wire(self.load(job_id))

    def request(self, job_id: str) -> SweepRequest:
        """The submitted request of a stored record (for resume)."""
        payload = self.load(job_id)
        wire = payload.get("request")
        if not isinstance(wire, dict):
            raise TransportError(
                f"job record {job_id} carries no resumable request")
        return SweepRequest.from_wire(wire)

    def scan(self) -> tuple[list[dict[str, Any]], list[tuple[str, str]]]:
        """All readable records plus ``(filename, reason)`` skip pairs.

        Sorted by creation time.  Unreadable, mistyped and
        version-mismatched files land in the skip list instead of being
        silently dropped — the caller decides whether that is fatal
        (``repro jobs --strict``).
        """
        records: list[dict[str, Any]] = []
        skipped: list[tuple[str, str]] = []
        for path in sorted(self.directory.glob("*.json")):
            job_id = path.stem
            try:
                with self._lock:
                    records.append(self._load_locked(job_id))
            except (TransportError, UnknownJobError) as exc:
                skipped.append((path.name, str(exc)))
        records.sort(key=lambda r: float(r.get("created_at") or 0.0)
                     if isinstance(r.get("created_at"), (int, float)) else 0.0)
        return records, skipped

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.json"))
