"""Versioned request/response envelopes of the solver-client protocol.

This module is the single definition of what travels between a
:class:`repro.api.SolverClient` and any of its backends — in-process, the
on-disk job store, or the ``repro serve`` HTTP server.  Everything on the
wire is a JSON object stamped with ``schema_version``; loaders reject
unknown versions with a typed
:class:`~repro.utils.errors.SchemaVersionError` instead of failing
obscurely downstream.

The envelopes:

:class:`SweepRequest`
    A submittable sweep grid (the keyword surface of
    :func:`repro.batch.sweep`) plus solver method/options, shard identity
    and a display name.
:class:`SolveRequest` / :class:`SolveResponse`
    One synchronous solve: a graph payload plus model/deadline/solver
    parameters, answered immediately (no job lifecycle).  ``POST
    /v1/solve`` is the HTTP fast path the server's micro-batcher
    coalesces; ``POST /v1/solve_batch`` carries many requests in one
    envelope and answers with the packed row codec
    (:mod:`repro.api.rowcodec`).
:class:`JobRecord`
    The transport-independent snapshot of one job: lifecycle status,
    progress counters, shard/fingerprint identity and timestamps.  The
    same record shape is stored on disk, returned over HTTP and derived
    from live :class:`~repro.service.jobs.JobHandle` objects, which is what
    makes ``repro status`` behave identically against every transport.
:class:`ProgressEvent`
    One tick of a job's streaming progress feed (``repro attach``, the
    HTTP chunked event stream).

Result tables reuse the sweep row schema verbatim
(:func:`table_to_wire` / :func:`table_from_wire`), and failures travel as
typed error bodies (:func:`error_to_wire` / :func:`raise_wire_error`) so a
server-side :class:`~repro.utils.errors.UnknownJobError` re-raises as
exactly that class in the client process.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field, fields
from typing import TYPE_CHECKING, Any, Mapping

from repro.utils.errors import (
    AuthError,
    BackendUnavailableError,
    CircuitOpenError,
    DeadlineExceededError,
    FailpointSpecError,
    FingerprintMismatchError,
    InfeasibleProblemError,
    InjectedFaultError,
    InvalidArgumentTypeError,
    InvalidGraphError,
    InvalidModelError,
    InvalidOptionError,
    InvalidParameterError,
    InvalidSolutionError,
    JobStateError,
    MergeError,
    NotSeriesParallelError,
    OverloadedError,
    PollTimeoutError,
    ReproError,
    SchemaVersionError,
    ServerShutdownError,
    ShardError,
    ShardGapError,
    ShardOverlapError,
    ShutdownError,
    SolverError,
    TransientTransportError,
    TransportError,
    UnknownBackendError,
    UnknownColumnError,
    UnknownJobError,
    UnknownOptionError,
    UnknownSolverError,
    WorkerCrashLoopError,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.batch.engine import BatchResult
    from repro.batch.vectorized import InstanceSpec
    from repro.core.problem import MinEnergyProblem
from repro.utils.tables import Table

#: Version stamped on every wire envelope, job record and shard dump.
SCHEMA_VERSION = 1

#: URL prefix of the HTTP wire protocol (bumped with SCHEMA_VERSION).
PROTOCOL_PREFIX = "/v1"

#: Job lifecycle states a record may carry (superset of the in-process
#: :class:`repro.service.jobs.JobStatus`: a durable record can also be
#: ``failed`` when submission itself blew up before any instance ran).
JOB_STATUSES = ("pending", "running", "done", "cancelled", "failed")

#: Terminal states: a record in one of these never changes again.
TERMINAL_STATUSES = ("done", "cancelled", "failed")

_SWEEP_MODELS = ("continuous", "discrete", "vdd", "incremental")


def check_schema_version(payload: Mapping[str, Any], *, what: str,
                         supported: int = SCHEMA_VERSION) -> int:
    """Validate a document's ``schema_version``; return it.

    A missing field is read as version 1 (documents written before the
    field existed); anything other than an integer in ``1..supported``
    raises :class:`SchemaVersionError` naming the document and both
    versions.  ``supported`` defaults to the wire protocol's version;
    independently-versioned documents (shard dumps) pass their own.
    """
    version = payload.get("schema_version", 1)
    if not isinstance(version, int) or isinstance(version, bool) \
            or version < 1 or version > supported:
        raise SchemaVersionError(
            f"{what}: unsupported schema_version {version!r} (this build "
            f"supports versions 1..{supported}); refusing to guess at "
            "a newer or malformed layout"
        )
    return version


@dataclass(frozen=True)
class SweepRequest:
    """A submittable sweep grid plus its solver and shard parameters.

    Field-for-field the keyword surface of :func:`repro.batch.sweep`
    (grid axes, model knobs, ``method``/``exact``/``options``), plus the
    ``"I/N"`` shard spelling and a display ``name``.  ``priors`` carries a
    cost-partitioner calibration (graph class -> ``(coeff, exponent)``;
    the empty-string key is the fallback class) so sharded submissions
    balance identically on every machine.
    """

    graph_classes: tuple[str, ...] = ("chain", "tree", "layered")
    sizes: tuple[int, ...] = (32,)
    slacks: tuple[float, ...] = (1.5,)
    alphas: tuple[float, ...] = (3.0,)
    model: str = "continuous"
    n_modes: int = 5
    s_max: float = 1.0
    n_processors: int = 0
    mapping: str = "none"
    repetitions: int = 1
    seed: int = 0
    method: str | None = None
    exact: bool | None = None
    options: dict[str, Any] = field(default_factory=dict)
    shard: str | None = None
    shard_strategy: str = "cost-weighted"
    priors: dict[str, tuple[float, float]] | None = None
    name: str = ""

    def __post_init__(self) -> None:
        if self.model not in _SWEEP_MODELS:
            raise InvalidModelError(
                f"unknown sweep model {self.model!r}; choose one of "
                f"{', '.join(_SWEEP_MODELS)}"
            )

    def grid_kwargs(self) -> dict[str, Any]:
        """The :func:`repro.batch.sweep` grid keyword arguments."""
        return dict(
            graph_classes=self.graph_classes, sizes=self.sizes,
            slacks=self.slacks, alphas=self.alphas, model=self.model,
            n_modes=self.n_modes, s_max=self.s_max,
            n_processors=self.n_processors, mapping=self.mapping,
            repetitions=self.repetitions, seed=self.seed,
        )

    def shard_spec(self):
        """The parsed :class:`~repro.batch.shard.ShardSpec` (or ``None``)."""
        if not self.shard:
            return None
        from repro.batch.shard import ShardSpec

        return ShardSpec.parse(self.shard, strategy=self.shard_strategy)

    def fit_priors(self) -> dict[str | None, tuple[float, float]] | None:
        """Wire priors back in :func:`~repro.batch.shard.estimate_cost` form."""
        if not self.priors:
            return None
        return {(cls or None): (float(c), float(e))
                for cls, (c, e) in self.priors.items()}

    def to_wire(self) -> dict[str, Any]:
        payload: dict[str, Any] = {"schema_version": SCHEMA_VERSION}
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, tuple):
                value = list(value)
            payload[f.name] = value
        if self.priors is not None:
            payload["priors"] = {cls: list(ce)
                                 for cls, ce in self.priors.items()}
        return payload

    @classmethod
    def from_wire(cls, payload: Any) -> "SweepRequest":
        """Decode and validate a wire payload into a request.

        Raises :class:`SchemaVersionError` for unknown versions and
        :class:`TransportError` for structurally malformed payloads, so
        the HTTP server maps both to typed 4xx bodies.
        """
        if not isinstance(payload, Mapping):
            raise TransportError(
                f"malformed sweep request: expected a JSON object, got "
                f"{type(payload).__name__}"
            )
        check_schema_version(payload, what="sweep request")
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known - {"schema_version"}
        if unknown:
            raise TransportError(
                f"malformed sweep request: unknown fields {sorted(unknown)}"
            )
        try:
            priors = payload.get("priors")
            return cls(
                graph_classes=tuple(str(c) for c in payload.get(
                    "graph_classes", cls.graph_classes)),
                sizes=tuple(int(n) for n in payload.get("sizes", cls.sizes)),
                slacks=tuple(float(s) for s in payload.get("slacks", cls.slacks)),
                alphas=tuple(float(a) for a in payload.get("alphas", cls.alphas)),
                model=str(payload.get("model", cls.model)),
                n_modes=int(payload.get("n_modes", cls.n_modes)),
                s_max=float(payload.get("s_max", cls.s_max)),
                n_processors=int(payload.get("n_processors", cls.n_processors)),
                mapping=str(payload.get("mapping", cls.mapping)),
                repetitions=int(payload.get("repetitions", cls.repetitions)),
                seed=int(payload.get("seed", cls.seed)),
                method=(None if payload.get("method") is None
                        else str(payload["method"])),
                exact=(None if payload.get("exact") is None
                       else bool(payload["exact"])),
                options=dict(payload.get("options") or {}),
                shard=(None if not payload.get("shard")
                       else str(payload["shard"])),
                shard_strategy=str(payload.get("shard_strategy",
                                               cls.shard_strategy)),
                priors=(None if priors is None else
                        {str(k): (float(v[0]), float(v[1]))
                         for k, v in dict(priors).items()}),
                name=str(payload.get("name", "")),
            )
        except InvalidModelError:
            raise
        except (TypeError, ValueError, KeyError, IndexError) as exc:
            raise TransportError(
                f"malformed sweep request: {exc}") from exc


# --------------------------------------------------------------------- #
# synchronous solves
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class SolveRequest:
    """One synchronous solve: a graph payload plus its model and knobs.

    The graph travels in :func:`repro.graphs.io.graph_to_dict` form
    (``{"name", "tasks": {task: work}, "edges": [[u, v], ...]}``).  Exactly
    one of ``deadline`` (absolute) and ``slack`` (multiple of the critical
    path at the model's maximum speed, like ``repro solve --slack``) must
    be given; slack-relative requests need a finite maximum speed.

    ``s_max`` of ``None`` means an uncapped Continuous model (``inf`` is
    not valid JSON).  ``keep_speeds`` asks for the per-task speed map in
    the response; ``validate`` re-checks the solution server-side before
    answering.  Deadline-given Continuous requests with default dispatch
    ride the vectorized batch fast path (:mod:`repro.batch.vectorized`)
    without ever materialising a :class:`TaskGraph`.
    """

    graph: dict[str, Any] = field(default_factory=dict)
    deadline: float | None = None
    slack: float | None = None
    model: str = "continuous"
    s_max: float | None = 1.0
    modes: tuple[float, ...] = ()
    alpha: float = 3.0
    method: str | None = None
    exact: bool | None = None
    options: dict[str, Any] = field(default_factory=dict)
    keep_speeds: bool = False
    validate: bool = False
    name: str = ""

    def __post_init__(self) -> None:
        if self.model not in _SWEEP_MODELS:
            raise InvalidModelError(
                f"unknown solve model {self.model!r}; choose one of "
                f"{', '.join(_SWEEP_MODELS)}"
            )
        if (self.deadline is None) == (self.slack is None):
            raise InvalidOptionError(
                "a solve request needs exactly one of deadline= and slack=")

    # -- construction ------------------------------------------------- #
    @classmethod
    def from_problem(cls, problem: "MinEnergyProblem", *,
                     method: str | None = None, exact: bool | None = None,
                     options: dict[str, Any] | None = None,
                     keep_speeds: bool = False,
                     validate: bool = False) -> "SolveRequest":
        """Encode an in-process problem object for the wire."""
        from repro.core.models import (
            ContinuousModel, DiscreteModel, IncrementalModel, VddHoppingModel)
        from repro.graphs.io import graph_to_dict

        model = problem.model
        modes: tuple[float, ...] = ()
        s_max: float | None = None
        if isinstance(model, ContinuousModel):
            kind = "continuous"
            s_max = None if math.isinf(model.s_max) else float(model.s_max)
        elif isinstance(model, IncrementalModel):
            kind, modes = "incremental", tuple(model.modes)
        elif isinstance(model, VddHoppingModel):
            kind, modes = "vdd", tuple(model.modes)
        elif isinstance(model, DiscreteModel):
            kind, modes = "discrete", tuple(model.modes)
        else:
            raise InvalidModelError(
                f"cannot express model {type(model).__name__} on the wire")
        return cls(graph=graph_to_dict(problem.graph),
                   deadline=problem.deadline, model=kind, s_max=s_max,
                   modes=modes, alpha=problem.power.alpha, method=method,
                   exact=exact, options=dict(options or {}),
                   keep_speeds=keep_speeds, validate=validate,
                   name=problem.name)

    # -- problem materialisation -------------------------------------- #
    def build_model(self):
        """The :class:`~repro.core.models.EnergyModel` this request names."""
        from repro.core.models import (
            ContinuousModel, DiscreteModel, IncrementalModel, VddHoppingModel)

        cap = math.inf if self.s_max is None else float(self.s_max)
        if self.model == "continuous":
            return ContinuousModel(s_max=cap)
        modes = self.modes or (0.4, 0.6, 0.8, 1.0)
        if self.model == "discrete":
            return DiscreteModel(modes=modes)
        if self.model == "vdd":
            return VddHoppingModel(modes=modes)
        # incremental: mirror the CLI's reconstruction (grid + inferred step)
        if self.modes:
            grid = sorted(modes)
            delta = grid[1] - grid[0] if len(grid) > 1 else grid[0]
            return IncrementalModel.from_range(grid[0], grid[-1], delta)
        hi = 1.0 if self.s_max is None else float(self.s_max)
        return IncrementalModel.from_range(0.2 * hi, hi, 0.2 * hi)

    def build_problem(self) -> "MinEnergyProblem":
        """Materialise the full problem object (slow path / fallbacks)."""
        from repro.core.power import CUBIC, PowerLaw
        from repro.core.problem import MinEnergyProblem
        from repro.graphs.io import graph_from_dict

        graph = graph_from_dict(self.graph)
        model = self.build_model()
        if self.deadline is not None:
            deadline = float(self.deadline)
        else:
            s_max = model.max_speed
            if not (s_max < math.inf):
                raise InvalidModelError(
                    "slack-relative deadlines need a finite maximum speed; "
                    "pass an absolute deadline instead")
            from repro.graphs.analysis import longest_path_length

            deadline = float(self.slack) * longest_path_length(
                graph, weight=lambda n: graph.work(n) / s_max)
        power = CUBIC if self.alpha == 3.0 else PowerLaw(alpha=self.alpha)
        return MinEnergyProblem(graph=graph, deadline=deadline, model=model,
                                power=power, name=self.name)

    def to_instance(self) -> "InstanceSpec | MinEnergyProblem":
        """What the batch solver should consume for this request.

        Deadline-given Continuous requests lower straight to an
        :class:`~repro.batch.vectorized.InstanceSpec` (no ``TaskGraph``
        construction on the fast path); everything else materialises the
        problem object.
        """
        if self.model == "continuous" and self.deadline is not None \
                and not self.options:
            from repro.batch.vectorized import spec_from_graph_dict

            cap = math.inf if self.s_max is None else float(self.s_max)
            return spec_from_graph_dict(
                self.graph, deadline=float(self.deadline), alpha=self.alpha,
                s_max=cap, name=self.name)
        return self.build_problem()

    # -- wire format --------------------------------------------------- #
    def to_wire(self) -> dict[str, Any]:
        payload: dict[str, Any] = {"schema_version": SCHEMA_VERSION}
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, tuple):
                value = list(value)
            payload[f.name] = value
        return payload

    @classmethod
    def from_wire(cls, payload: Any) -> "SolveRequest":
        """Decode and validate a wire payload into a request.

        Raises :class:`SchemaVersionError` for unknown versions and
        :class:`TransportError` for structurally malformed payloads.
        """
        if not isinstance(payload, Mapping):
            raise TransportError(
                f"malformed solve request: expected a JSON object, got "
                f"{type(payload).__name__}"
            )
        check_schema_version(payload, what="solve request")
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known - {"schema_version"}
        if unknown:
            raise TransportError(
                f"malformed solve request: unknown fields {sorted(unknown)}")
        graph = payload.get("graph")
        if not isinstance(graph, Mapping) \
                or not isinstance(graph.get("tasks"), Mapping):
            raise TransportError(
                "malformed solve request: graph must be an object with a "
                "tasks mapping")
        try:
            deadline = payload.get("deadline")
            slack = payload.get("slack")
            s_max = payload.get("s_max", cls.s_max)
            return cls(
                graph=dict(graph),
                deadline=None if deadline is None else float(deadline),
                slack=None if slack is None else float(slack),
                model=str(payload.get("model", cls.model)),
                s_max=None if s_max is None else float(s_max),
                modes=tuple(float(m) for m in payload.get("modes") or ()),
                alpha=float(payload.get("alpha", cls.alpha)),
                method=(None if payload.get("method") is None
                        else str(payload["method"])),
                exact=(None if payload.get("exact") is None
                       else bool(payload["exact"])),
                options=dict(payload.get("options") or {}),
                keep_speeds=bool(payload.get("keep_speeds", False)),
                validate=bool(payload.get("validate", False)),
                name=str(payload.get("name", "")),
            )
        except (InvalidModelError, InvalidOptionError):
            raise
        except (TypeError, ValueError, KeyError, IndexError) as exc:
            raise TransportError(f"malformed solve request: {exc}") from exc


@dataclass(frozen=True)
class SolveResponse:
    """The answer to one :class:`SolveRequest` (solved or captured failure).

    Field-for-field a :class:`~repro.batch.engine.BatchResult` row minus
    the in-process metadata: ``ok`` distinguishes solved instances from
    captured failures, which carry the library exception's class name in
    ``error_type`` so :meth:`raise_for_error` re-raises it typed on any
    transport.
    """

    ok: bool = True
    name: str = ""
    n_tasks: int = 0
    energy: float | None = None
    makespan: float | None = None
    solver: str | None = None
    optimal: bool | None = None
    lower_bound: float | None = None
    seconds: float = 0.0
    error: str | None = None
    error_type: str | None = None
    speeds: dict[str, float] | None = None

    @classmethod
    def from_result(cls, result: "BatchResult") -> "SolveResponse":
        """Project a batch row onto the wire shape."""
        return cls(ok=result.ok, name=result.name, n_tasks=result.n_tasks,
                   energy=result.energy, makespan=result.makespan,
                   solver=result.solver, optimal=result.optimal,
                   lower_bound=result.lower_bound, seconds=result.seconds,
                   error=result.error, error_type=result.error_type,
                   speeds=dict(result.speeds) if result.speeds else None)

    @classmethod
    def from_failure(cls, exc: BaseException, *, name: str = "",
                     n_tasks: int = 0) -> "SolveResponse":
        """Capture a request-level failure (bad payload, bad model) as a
        row, the same shape a failed solve comes back in."""
        return cls(ok=False, name=name, n_tasks=n_tasks,
                   error=str(exc), error_type=type(exc).__name__)

    def raise_for_error(self) -> "SolveResponse":
        """Re-raise a captured failure as its typed exception; return self."""
        if self.ok:
            return self
        message = self.error or "solve failed"
        cls = _WIRE_ERRORS.get(self.error_type or "")
        if cls is None:
            raise SolverError(f"{self.error_type or 'error'}: {message}")
        raise cls(message)

    def to_wire(self) -> dict[str, Any]:
        payload: dict[str, Any] = {"schema_version": SCHEMA_VERSION}
        for f in fields(self):
            payload[f.name] = getattr(self, f.name)
        return payload

    @classmethod
    def from_wire(cls, payload: Any) -> "SolveResponse":
        if not isinstance(payload, Mapping) or "ok" not in payload:
            raise TransportError(
                "malformed solve response: expected a JSON object with ok")
        check_schema_version(payload, what="solve response")
        try:
            speeds = payload.get("speeds")
            return cls(
                ok=bool(payload["ok"]),
                name=str(payload.get("name", "")),
                n_tasks=int(payload.get("n_tasks") or 0),
                energy=_opt_float(payload.get("energy")),
                makespan=_opt_float(payload.get("makespan")),
                solver=(None if payload.get("solver") is None
                        else str(payload["solver"])),
                optimal=(None if payload.get("optimal") is None
                         else bool(payload["optimal"])),
                lower_bound=_opt_float(payload.get("lower_bound")),
                seconds=float(payload.get("seconds") or 0.0),
                error=(None if payload.get("error") is None
                       else str(payload["error"])),
                error_type=(None if payload.get("error_type") is None
                            else str(payload["error_type"])),
                speeds=(None if speeds is None else
                        {str(k): float(v) for k, v in dict(speeds).items()}),
            )
        except (TypeError, ValueError, KeyError) as exc:
            raise TransportError(f"malformed solve response: {exc}") from exc


def _opt_float(value: Any) -> float | None:
    return None if value is None else float(value)


@dataclass(frozen=True)
class JobRecord:
    """Transport-independent snapshot of one job's lifecycle and progress.

    The fleet fields (``job_type``, ``depends_on``, ``worker_id``,
    ``lease_expires_at``, ``claim_count``, ``reclaims``) are optional on
    the wire: a record written before claim-with-lease existed decodes
    with their defaults, and a handle snapshot (in-process jobs) never
    carries them.
    """

    job_id: str
    name: str = ""
    status: str = "pending"
    created_at: float = 0.0
    finished_at: float | None = None
    total: int = 0
    done: int = 0
    failed: int = 0
    cache_hits: int = 0
    shard: str | None = None
    fingerprint: str = ""
    params: dict[str, Any] = field(default_factory=dict)
    error: str | None = None
    job_type: str = "sweep"
    depends_on: tuple[str, ...] = ()
    worker_id: str | None = None
    lease_expires_at: float | None = None
    claim_count: int = 0
    reclaims: int = 0

    @property
    def terminal(self) -> bool:
        """Whether this record's status can never change again."""
        return self.status in TERMINAL_STATUSES

    def lease_expired(self, *, now: float | None = None) -> bool:
        """Whether a leased ``running`` record's lease has lapsed."""
        if self.status != "running" or self.lease_expires_at is None:
            return False
        return (time.time() if now is None else now) > self.lease_expires_at

    def to_wire(self) -> dict[str, Any]:
        return {
            "schema_version": SCHEMA_VERSION,
            "job_id": self.job_id,
            "name": self.name,
            "status": self.status,
            "created_at": self.created_at,
            "finished_at": self.finished_at,
            "total": self.total,
            "done": self.done,
            "failed": self.failed,
            "cache_hits": self.cache_hits,
            "shard": self.shard,
            "grid_fingerprint": self.fingerprint,
            "params": dict(self.params),
            "error": self.error,
            "job_type": self.job_type,
            "depends_on": list(self.depends_on),
            "worker_id": self.worker_id,
            "lease_expires_at": self.lease_expires_at,
            "claim_count": self.claim_count,
            "reclaims": self.reclaims,
        }

    @classmethod
    def from_wire(cls, payload: Any, *, what: str = "job record") -> "JobRecord":
        if not isinstance(payload, Mapping) or "job_id" not in payload:
            raise TransportError(
                f"malformed {what}: expected a JSON object with a job_id")
        check_schema_version(payload, what=what)
        status = str(payload.get("status", "pending"))
        if status not in JOB_STATUSES:
            raise TransportError(
                f"malformed {what}: unknown status {status!r} (expected one "
                f"of {', '.join(JOB_STATUSES)})"
            )
        try:
            finished = payload.get("finished_at")
            lease = payload.get("lease_expires_at")
            return cls(
                job_id=str(payload["job_id"]),
                name=str(payload.get("name") or ""),
                status=status,
                created_at=float(payload.get("created_at") or 0.0),
                finished_at=None if finished is None else float(finished),
                total=int(payload.get("total") or 0),
                done=int(payload.get("done") or 0),
                failed=int(payload.get("failed") or 0),
                cache_hits=int(payload.get("cache_hits") or 0),
                shard=(None if not payload.get("shard")
                       else str(payload["shard"])),
                fingerprint=str(payload.get("grid_fingerprint") or ""),
                params=dict(payload.get("params") or {}),
                error=(None if payload.get("error") is None
                       else str(payload["error"])),
                job_type=str(payload.get("job_type") or "sweep"),
                depends_on=tuple(str(d) for d in
                                 payload.get("depends_on") or ()),
                worker_id=(None if not payload.get("worker_id")
                           else str(payload["worker_id"])),
                lease_expires_at=None if lease is None else float(lease),
                claim_count=int(payload.get("claim_count") or 0),
                reclaims=int(payload.get("reclaims") or 0),
            )
        except (TypeError, ValueError) as exc:
            raise TransportError(f"malformed {what}: {exc}") from exc

    @classmethod
    def from_handle(cls, handle) -> "JobRecord":
        """Snapshot a live :class:`~repro.service.jobs.JobHandle`."""
        described = handle.describe()
        described.setdefault("schema_version", SCHEMA_VERSION)
        return cls.from_wire(described, what="job handle snapshot")


@dataclass(frozen=True)
class ProgressEvent:
    """One tick of a job's streaming progress feed."""

    job_id: str
    seq: int
    status: str
    done: int
    total: int
    failed: int
    cache_hits: int = 0
    timestamp: float = 0.0

    @property
    def terminal(self) -> bool:
        return self.status in TERMINAL_STATUSES

    def to_wire(self) -> dict[str, Any]:
        return {
            "schema_version": SCHEMA_VERSION,
            "job_id": self.job_id,
            "seq": self.seq,
            "status": self.status,
            "done": self.done,
            "total": self.total,
            "failed": self.failed,
            "cache_hits": self.cache_hits,
            "timestamp": self.timestamp,
        }

    @classmethod
    def from_wire(cls, payload: Any) -> "ProgressEvent":
        if not isinstance(payload, Mapping):
            raise TransportError("malformed progress event: not a JSON object")
        check_schema_version(payload, what="progress event")
        try:
            return cls(
                job_id=str(payload["job_id"]),
                seq=int(payload["seq"]),
                status=str(payload["status"]),
                done=int(payload.get("done") or 0),
                total=int(payload.get("total") or 0),
                failed=int(payload.get("failed") or 0),
                cache_hits=int(payload.get("cache_hits") or 0),
                timestamp=float(payload.get("timestamp") or 0.0),
            )
        except (TypeError, ValueError, KeyError) as exc:
            raise TransportError(f"malformed progress event: {exc}") from exc

    @classmethod
    def from_record(cls, record: JobRecord, seq: int) -> "ProgressEvent":
        return cls(job_id=record.job_id, seq=seq, status=record.status,
                   done=record.done, total=record.total, failed=record.failed,
                   cache_hits=record.cache_hits, timestamp=time.time())


# --------------------------------------------------------------------- #
# result tables
# --------------------------------------------------------------------- #
def table_to_wire(table: Table) -> dict[str, Any]:
    """Serialise a sweep table (and its manifest, if any) for the wire."""
    payload: dict[str, Any] = {
        "schema_version": SCHEMA_VERSION,
        "title": table.title,
        "columns": list(table.columns),
        "rows": [list(row) for row in table.rows],
    }
    manifest = getattr(table, "manifest", None)
    if isinstance(manifest, dict):
        payload["manifest"] = manifest
    return payload


def table_from_wire(payload: Any, *, what: str = "result table") -> Table:
    """Rebuild a :class:`~repro.utils.tables.Table` from its wire payload."""
    if not isinstance(payload, Mapping) or "columns" not in payload:
        raise TransportError(
            f"malformed {what}: expected a JSON object with columns/rows")
    check_schema_version(payload, what=what)
    try:
        table = Table(columns=[str(c) for c in payload["columns"]],
                      title=str(payload.get("title", "")),
                      rows=[list(r) for r in payload.get("rows") or []])
    except (TypeError, ValueError) as exc:
        raise TransportError(f"malformed {what}: {exc}") from exc
    n_cols = len(table.columns)
    bad = [i for i, row in enumerate(table.rows) if len(row) != n_cols]
    if bad:
        raise TransportError(
            f"malformed {what}: rows {bad[:5]} do not match the "
            f"{n_cols}-column header"
        )
    manifest = payload.get("manifest")
    if isinstance(manifest, dict):
        table.manifest = manifest
    return table


# --------------------------------------------------------------------- #
# typed error bodies
# --------------------------------------------------------------------- #
#: Errors that survive a wire round-trip as their own class.  Anything
#: else re-raises as TransportError carrying the original type name.
#: ``repro lint`` (rule ``typed-errors``) checks this tuple against the
#: class hierarchy: every :class:`ReproError` subclass in the codebase
#: must appear here, or it degrades to TransportError/SolverError when a
#: client re-raises it off the wire.
WIRE_ERROR_TYPES: tuple = (
    AuthError,
    BackendUnavailableError,
    CircuitOpenError,
    DeadlineExceededError,
    FailpointSpecError,
    FingerprintMismatchError,
    InfeasibleProblemError,
    InjectedFaultError,
    InvalidArgumentTypeError,
    InvalidGraphError,
    InvalidModelError,
    InvalidOptionError,
    InvalidParameterError,
    InvalidSolutionError,
    JobStateError,
    MergeError,
    NotSeriesParallelError,
    OverloadedError,
    PollTimeoutError,
    ReproError,
    SchemaVersionError,
    ServerShutdownError,
    ShardError,
    ShardGapError,
    ShardOverlapError,
    ShutdownError,
    SolverError,
    TransientTransportError,
    TransportError,
    UnknownBackendError,
    UnknownColumnError,
    UnknownJobError,
    UnknownOptionError,
    UnknownSolverError,
    WorkerCrashLoopError,
)

_WIRE_ERRORS: dict[str, type[ReproError]] = {
    cls.__name__: cls for cls in WIRE_ERROR_TYPES
}

#: Wire errors whose constructor accepts a ``retry_after`` keyword.
_RETRY_AFTER_ERRORS = (OverloadedError, ServerShutdownError)


def error_to_wire(exc: BaseException) -> dict[str, Any]:
    """Typed error body of an exception (the 4xx/5xx HTTP payload)."""
    detail: dict[str, Any] = {
        "type": type(exc).__name__, "message": str(exc),
    }
    retry_after = getattr(exc, "retry_after", None)
    if retry_after is not None:
        detail["retry_after"] = float(retry_after)
    return {"schema_version": SCHEMA_VERSION, "error": detail}


def raise_wire_error(payload: Any, *, fallback: str = "backend error") -> None:
    """Re-raise a typed error body as its library exception class.

    Unknown types (and non-error payloads) raise
    :class:`TransportError` so a client never swallows a failure body.
    """
    detail = payload.get("error") if isinstance(payload, Mapping) else None
    if not isinstance(detail, Mapping):
        raise TransportError(f"{fallback}: {payload!r}")
    name = str(detail.get("type") or "")
    message = str(detail.get("message") or fallback)
    cls = _WIRE_ERRORS.get(name)
    if cls is None:
        raise TransportError(f"{name or 'unknown error'}: {message}")
    if issubclass(cls, _RETRY_AFTER_ERRORS):
        retry_after = detail.get("retry_after")
        raise cls(message, retry_after=(
            float(retry_after) if retry_after is not None else None))
    raise cls(message)
