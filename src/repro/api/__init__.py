"""Transport-agnostic solver-client API.

One typed protocol (:mod:`repro.api.protocol`), one client
(:class:`SolverClient`), three interchangeable transports:

- :class:`LocalTransport` — an in-process worker pool (wraps
  :class:`repro.service.SolverService`);
- :class:`DiskTransport` — a durable job store under ``.repro-jobs/``
  with atomic state transitions, re-attach by job id and cache-backed
  resume of interrupted sweeps;
- :class:`HTTPTransport` — the ``repro serve`` backend over the ``/v1``
  JSON wire protocol, with a chunked progress-event stream.

The CLI verbs (``repro submit/status/results/cancel/attach/jobs``) are
thin wrappers over this module, so the same job can be submitted from one
machine, watched from a second and collected from a third::

    from repro.api import HTTPTransport, SolverClient, SweepRequest

    client = SolverClient(HTTPTransport("http://solver:8731"))
    record = client.submit(SweepRequest(graph_classes=("chain",), sizes=(64,)))
    for event in client.events(record.job_id):
        print(event.status, f"{event.done}/{event.total}")
    table = client.results(record.job_id, timeout=600)
"""

from repro.api.client import (
    HEARTBEAT_SECONDS,
    STALE_RUNNER_SECONDS,
    DiskTransport,
    HTTPTransport,
    LocalTransport,
    SolverClient,
    Transport,
    backoff_intervals,
    default_worker_id,
    execute_solve,
    execute_solve_batch,
)
from repro.api.jobstore import (
    JOB_RECORD_KIND,
    JobStore,
    new_job_id,
    record_orphaned,
)
from repro.api.protocol import (
    JOB_STATUSES,
    PROTOCOL_PREFIX,
    SCHEMA_VERSION,
    TERMINAL_STATUSES,
    JobRecord,
    ProgressEvent,
    SolveRequest,
    SolveResponse,
    SweepRequest,
    check_schema_version,
    error_to_wire,
    raise_wire_error,
    table_from_wire,
    table_to_wire,
)
from repro.api.rowcodec import (
    BATCH_COLUMNS,
    decode_rows,
    encode_rows,
)

__all__ = [
    "BATCH_COLUMNS",
    "HEARTBEAT_SECONDS",
    "JOB_RECORD_KIND",
    "JOB_STATUSES",
    "PROTOCOL_PREFIX",
    "SCHEMA_VERSION",
    "STALE_RUNNER_SECONDS",
    "TERMINAL_STATUSES",
    "DiskTransport",
    "HTTPTransport",
    "JobRecord",
    "JobStore",
    "LocalTransport",
    "ProgressEvent",
    "SolveRequest",
    "SolveResponse",
    "SolverClient",
    "SweepRequest",
    "Transport",
    "backoff_intervals",
    "check_schema_version",
    "decode_rows",
    "default_worker_id",
    "encode_rows",
    "error_to_wire",
    "execute_solve",
    "execute_solve_batch",
    "new_job_id",
    "record_orphaned",
    "raise_wire_error",
    "table_from_wire",
    "table_to_wire",
]
