"""Lint driver: run rules, apply suppressions and baseline, report.

Exit codes follow the usual linter convention: 0 — clean (or fully
baselined), 1 — findings, 2 — the linter itself failed (bad arguments,
unparseable source); the CLI maps :class:`ReproError` to 2.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence, TextIO

from repro.analysis.baseline import (DEFAULT_BASELINE, load_baseline,
                                     save_baseline, split_baselined)
from repro.analysis.core import Finding, Rule
from repro.analysis.model import ProjectModel
from repro.analysis.rules import ALL_RULES, rules_by_name
from repro.utils.errors import InvalidParameterError

__all__ = ["LintReport", "run_lint", "render_text", "render_json",
           "run_cli"]


def default_root() -> Path:
    """The ``src/repro`` package this linter ships inside."""
    return Path(__file__).resolve().parents[1]


@dataclass
class LintReport:
    """Outcome of one lint run over a project tree."""

    root: Path
    findings: list[Finding] = field(default_factory=list)      #: new
    baselined: list[Finding] = field(default_factory=list)
    stale_baseline: set[str] = field(default_factory=set)
    suppressed: int = 0
    files_checked: int = 0
    rules_run: list[str] = field(default_factory=list)

    @property
    def exit_code(self) -> int:
        return 1 if (self.findings or self.stale_baseline) else 0


def _suppressed(project: ProjectModel, finding: Finding) -> bool:
    file = project.by_relpath.get(finding.file)
    if file is None:
        return False
    rules = file.suppressions.get(finding.line, set())
    return finding.rule in rules or "all" in rules


def run_lint(
    root: Path,
    *,
    rules: Sequence[Rule] | None = None,
    baseline_path: Path | None = None,
) -> LintReport:
    """Run ``rules`` (default: all) over the package rooted at ``root``."""
    project = ProjectModel(root)
    active = list(rules) if rules is not None else list(ALL_RULES)
    raw: list[Finding] = []
    for rule in active:
        raw.extend(rule.check(project))

    kept = [f for f in raw if not _suppressed(project, f)]
    report = LintReport(
        root=root,
        suppressed=len(raw) - len(kept),
        files_checked=len(project.files),
        rules_run=[rule.name for rule in active],
    )
    kept.sort()
    if baseline_path is not None:
        accepted = load_baseline(baseline_path)
        report.findings, report.baselined, report.stale_baseline = \
            split_baselined(kept, accepted)
    else:
        report.findings = kept
    return report


# ---------------------------------------------------------------------- #
# reporters
# ---------------------------------------------------------------------- #
def render_text(report: LintReport, stream: TextIO) -> None:
    for finding in report.findings:
        print(finding.render(), file=stream)
    for key in sorted(report.stale_baseline):
        print(f"stale baseline entry (fixed? remove it): {key}",
              file=stream)
    summary = (f"{len(report.findings)} finding(s) in "
               f"{report.files_checked} file(s), "
               f"{len(report.rules_run)} rule(s)")
    if report.baselined:
        summary += f", {len(report.baselined)} baselined"
    if report.suppressed:
        summary += f", {report.suppressed} suppressed"
    print(summary, file=stream)


def render_json(report: LintReport, stream: TextIO) -> None:
    payload = {
        "root": str(report.root),
        "files_checked": report.files_checked,
        "rules": report.rules_run,
        "findings": [
            {"file": f.file, "line": f.line, "rule": f.rule,
             "severity": f.severity, "message": f.message, "key": f.key}
            for f in report.findings
        ],
        "baselined": [f.key for f in report.baselined],
        "stale_baseline": sorted(report.stale_baseline),
        "suppressed": report.suppressed,
        "exit_code": report.exit_code,
    }
    json.dump(payload, stream, indent=2)
    stream.write("\n")


# ---------------------------------------------------------------------- #
# CLI
# ---------------------------------------------------------------------- #
def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--root", type=Path, default=None,
                        help="package root to lint (default: the "
                             "installed repro package)")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit findings as JSON")
    parser.add_argument("--baseline", type=Path, default=None,
                        help=f"baseline file (default: ./{DEFAULT_BASELINE} "
                             f"when present)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any baseline file")
    parser.add_argument("--update-baseline", action="store_true",
                        help="write current findings to the baseline file "
                             "and exit 0")
    parser.add_argument("--rule", action="append", dest="rule_names",
                        metavar="RULE",
                        help="run only this rule (repeatable)")
    parser.add_argument("--list-rules", action="store_true",
                        help="list rule ids and exit")


def run_cli(args: argparse.Namespace, stream: TextIO | None = None) -> int:
    out = stream if stream is not None else sys.stdout
    registry = rules_by_name()
    if args.list_rules:
        for name, rule in sorted(registry.items()):
            print(f"{name}: {rule.description}", file=out)
        return 0

    rules: Sequence[Rule] | None = None
    if args.rule_names:
        unknown = [n for n in args.rule_names if n not in registry]
        if unknown:
            raise InvalidParameterError(
                f"unknown rule(s): {', '.join(unknown)}; "
                f"known: {', '.join(sorted(registry))}")
        rules = [registry[n] for n in args.rule_names]

    root = args.root if args.root is not None else default_root()

    baseline_path: Path | None = None
    if not args.no_baseline:
        if args.baseline is not None:
            baseline_path = args.baseline
        elif Path(DEFAULT_BASELINE).is_file():
            baseline_path = Path(DEFAULT_BASELINE)

    if args.update_baseline:
        target = baseline_path if baseline_path is not None \
            else Path(DEFAULT_BASELINE)
        report = run_lint(root, rules=rules)
        save_baseline(target, report.findings)
        print(f"wrote {len(report.findings)} finding(s) to {target}",
              file=out)
        return 0

    report = run_lint(root, rules=rules, baseline_path=baseline_path)
    if args.as_json:
        render_json(report, out)
    else:
        render_text(report, out)
    return report.exit_code
