"""Baseline ratchet for ``repro lint``.

The baseline file is a JSON document listing finding keys that are
*temporarily* accepted.  Findings whose key appears in the baseline are
reported as baselined (and don't fail the run); baseline entries that no
longer match any finding are reported as stale so the file only ever
shrinks.  The repo ships an empty baseline: new violations fail CI
immediately.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.core import Finding
from repro.utils.atomicio import atomic_write_text
from repro.utils.errors import InvalidParameterError

__all__ = ["DEFAULT_BASELINE", "load_baseline", "save_baseline",
           "split_baselined"]

DEFAULT_BASELINE = "lint-baseline.json"
_SCHEMA_VERSION = 1


def load_baseline(path: Path) -> set[str]:
    """Finding keys accepted by the baseline at ``path``."""
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise InvalidParameterError(f"baseline file not found: {path}")
    except json.JSONDecodeError as exc:
        raise InvalidParameterError(
            f"baseline file {path} is not valid JSON: {exc}")
    if not isinstance(payload, dict) or "findings" not in payload:
        raise InvalidParameterError(
            f"baseline file {path} must be an object with a "
            f"'findings' list")
    keys = payload["findings"]
    if not isinstance(keys, list) \
            or not all(isinstance(k, str) for k in keys):
        raise InvalidParameterError(
            f"baseline file {path}: 'findings' must be a list of "
            f"finding keys")
    return set(keys)


def save_baseline(path: Path, findings: list[Finding]) -> None:
    """Write the keys of ``findings`` as the new baseline (atomically)."""
    payload = {
        "schema_version": _SCHEMA_VERSION,
        "findings": sorted(finding.key for finding in findings),
    }
    atomic_write_text(path, json.dumps(payload, indent=2) + "\n")


def split_baselined(
    findings: list[Finding], accepted: set[str],
) -> tuple[list[Finding], list[Finding], set[str]]:
    """Partition into (new, baselined) findings plus stale baseline keys."""
    new: list[Finding] = []
    baselined: list[Finding] = []
    for finding in findings:
        (baselined if finding.key in accepted else new).append(finding)
    stale = accepted - {finding.key for finding in baselined}
    return new, baselined, stale
