"""Findings and the rule base class of ``repro lint``."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.model import ProjectModel

__all__ = ["Finding", "Rule"]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation, anchored to ``file:line``."""

    file: str          #: path relative to the lint root (posix)
    line: int
    rule: str          #: rule id, e.g. ``typed-errors``
    message: str
    severity: str = "error"

    @property
    def key(self) -> str:
        """Stable identity used by the baseline ratchet."""
        return f"{self.rule}|{self.file}|{self.line}|{self.message}"

    def render(self) -> str:
        return f"{self.file}:{self.line}: [{self.rule}] {self.message}"


class Rule:
    """One invariant check over the :class:`ProjectModel`.

    Subclasses set ``name``/``description`` and implement :meth:`check`
    as a whole-program pass (iterate ``project.files`` for per-file
    checks).  Findings are yielded; suppression and baselining happen in
    the runner, so rules stay pure.

    To add a rule: subclass, implement ``check``, and register the
    instance in :data:`repro.analysis.rules.ALL_RULES`.
    """

    name: str = ""
    description: str = ""
    severity: str = "error"

    def check(self, project: "ProjectModel") -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, file: str, line: int, message: str) -> Finding:
        return Finding(file=file, line=line, rule=self.name,
                       message=message, severity=self.severity)
