"""AST-based invariant checker (``repro lint``).

Static analysis over the ``repro`` package enforcing the contracts the
test suite can't economically cover: typed errors that survive the wire,
single-site sparse assembly, atomic durable writes, lock discipline,
failpoint-registry consistency, retry idempotency declarations, and
wire-schema symmetry.  See :mod:`repro.analysis.rules` for the rules and
:mod:`repro.analysis.runner` for the CLI driver.
"""

from repro.analysis.baseline import (DEFAULT_BASELINE, load_baseline,
                                     save_baseline)
from repro.analysis.core import Finding, Rule
from repro.analysis.model import ProjectModel
from repro.analysis.rules import ALL_RULES, rules_by_name
from repro.analysis.runner import (LintReport, render_json, render_text,
                                   run_cli, run_lint)

__all__ = [
    "ALL_RULES",
    "DEFAULT_BASELINE",
    "Finding",
    "LintReport",
    "ProjectModel",
    "Rule",
    "load_baseline",
    "render_json",
    "render_text",
    "rules_by_name",
    "run_cli",
    "run_lint",
    "save_baseline",
]
