"""The whole-program project model behind ``repro lint``.

A :class:`ProjectModel` parses every ``.py`` file under one package root
exactly once and exposes the indexes the rules share: per-file ASTs with
resolved import maps, a class index with transitive-subclass queries, a
parent map for enclosing-scope questions, and the inline
``# repro-lint: disable=RULE`` suppression table.

Name resolution is deliberately static and best-effort: a dotted
expression resolves through the file's import bindings (chasing project
re-exports, so ``from repro.utils.errors import X`` re-exported through
another module still lands on the defining module) and falls back to the
spelled name.  Rules treat an unresolvable name as "unknown" and stay
quiet — the analyser's contract is no false alarms on dynamic code, not
completeness.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.utils.errors import InvalidParameterError

__all__ = ["ClassInfo", "ProjectModel", "SourceFile"]

_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\- ]+)")

#: Re-export chases are bounded so a pathological import cycle can not
#: hang resolution.
_MAX_CHASE = 10


@dataclass
class SourceFile:
    """One parsed module of the project."""

    path: Path
    relpath: str                      #: posix path relative to the root
    module: str                       #: dotted module name
    source: str
    tree: ast.Module
    imports: dict[str, str]           #: local binding -> dotted target
    toplevel: set[str]                #: names defined at module level
    suppressions: dict[int, set[str]]  #: line -> suppressed rule names
    _parents: "dict[ast.AST, ast.AST] | None" = field(
        default=None, repr=False, compare=False)

    def parent_map(self) -> dict[ast.AST, ast.AST]:
        """Child -> parent for every node (built lazily, cached)."""
        if self._parents is None:
            self._parents = {
                child: parent
                for parent in ast.walk(self.tree)
                for child in ast.iter_child_nodes(parent)
            }
        return self._parents

    def enclosing_function(self, node: ast.AST) -> "ast.AST | None":
        """Nearest enclosing function/method of ``node`` (or ``None``)."""
        parents = self.parent_map()
        cursor = parents.get(node)
        while cursor is not None:
            if isinstance(cursor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return cursor
            cursor = parents.get(cursor)
        return None


@dataclass
class ClassInfo:
    """One class definition plus its statically resolved base names."""

    name: str
    qualname: str                     #: ``module.ClassName``
    module: str
    node: ast.ClassDef
    file: SourceFile
    bases: list[str]                  #: resolved dotted base names


class ProjectModel:
    """Parse a package tree once; answer the rules' shared questions."""

    def __init__(self, root: "str | Path", package: str | None = None) -> None:
        self.root = Path(root).resolve()
        if not self.root.is_dir():
            raise InvalidParameterError(
                f"lint root {self.root} is not a directory")
        self.package = package if package is not None else self.root.name
        self.files: list[SourceFile] = []
        self.by_module: dict[str, SourceFile] = {}
        self.by_relpath: dict[str, SourceFile] = {}
        self.classes: dict[str, ClassInfo] = {}
        for path in sorted(self.root.rglob("*.py")):
            self._load(path)
        for file in self.files:
            self._index_classes(file)

    # ------------------------------------------------------------------ #
    # loading
    # ------------------------------------------------------------------ #
    def _load(self, path: Path) -> None:
        relpath = path.relative_to(self.root).as_posix()
        parts = [self.package] + relpath[:-3].split("/")
        if parts[-1] == "__init__":
            parts.pop()
        module = ".".join(parts)
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            raise InvalidParameterError(
                f"cannot lint {relpath}: {exc}") from exc
        file = SourceFile(
            path=path, relpath=relpath, module=module, source=source,
            tree=tree,
            imports=self._imports(tree, module,
                                  is_package=path.name == "__init__.py"),
            toplevel=self._toplevel(tree),
            suppressions=self._suppressions(source),
        )
        self.files.append(file)
        self.by_module[module] = file
        self.by_relpath[relpath] = file

    @staticmethod
    def _imports(tree: ast.Module, module: str, *,
                 is_package: bool) -> dict[str, str]:
        bindings: dict[str, str] = {}
        package = module if is_package else module.rsplit(".", 1)[0]
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        bindings[alias.asname] = alias.name
                    else:
                        top = alias.name.split(".", 1)[0]
                        bindings[top] = top
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    anchor = package.split(".")
                    anchor = anchor[:len(anchor) - (node.level - 1)]
                    base = ".".join(anchor + ([node.module]
                                              if node.module else []))
                else:
                    base = node.module or ""
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    bindings[bound] = (f"{base}.{alias.name}"
                                       if base else alias.name)
        return bindings

    @staticmethod
    def _toplevel(tree: ast.Module) -> set[str]:
        names: set[str] = set()
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                names.add(node.name)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            elif isinstance(node, ast.AnnAssign):
                if isinstance(node.target, ast.Name):
                    names.add(node.target.id)
        return names

    @staticmethod
    def _suppressions(source: str) -> dict[int, set[str]]:
        table: dict[int, set[str]] = {}
        for lineno, line in enumerate(source.splitlines(), start=1):
            match = _SUPPRESS_RE.search(line)
            if match:
                rules = {part.strip() for part in match.group(1).split(",")
                         if part.strip()}
                if rules:
                    table[lineno] = rules
        return table

    def _index_classes(self, file: SourceFile) -> None:
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            bases = []
            for base in node.bases:
                resolved = self.resolve_expr(file, base)
                if resolved:
                    bases.append(resolved)
            qualname = f"{file.module}.{node.name}"
            self.classes[qualname] = ClassInfo(
                name=node.name, qualname=qualname, module=file.module,
                node=node, file=file, bases=bases)

    # ------------------------------------------------------------------ #
    # name resolution
    # ------------------------------------------------------------------ #
    @staticmethod
    def dotted_parts(expr: ast.AST) -> "list[str] | None":
        """``a.b.c`` -> ``["a", "b", "c"]``; ``None`` for anything else."""
        parts: list[str] = []
        cursor = expr
        while isinstance(cursor, ast.Attribute):
            parts.append(cursor.attr)
            cursor = cursor.value
        if not isinstance(cursor, ast.Name):
            return None
        parts.append(cursor.id)
        parts.reverse()
        return parts

    def resolve_expr(self, file: SourceFile, expr: ast.AST) -> str | None:
        """Resolve a Name/Attribute expression to a canonical dotted name."""
        parts = self.dotted_parts(expr)
        if parts is None:
            return None
        return self.resolve_parts(file, parts)

    def resolve_parts(self, file: SourceFile, parts: list[str]) -> str:
        head, rest = parts[0], parts[1:]
        if head in file.imports:
            target = file.imports[head]
        elif head in file.toplevel:
            target = f"{file.module}.{head}"
        else:
            target = head
        dotted = ".".join([target] + rest)
        return self._chase(dotted)

    def _chase(self, dotted: str) -> str:
        """Follow project re-exports: ``pkg.mod.Name`` where ``pkg.mod``
        merely imports ``Name`` resolves to the importing module's own
        binding, until the defining module is reached."""
        for _ in range(_MAX_CHASE):
            if "." not in dotted:
                return dotted
            module, _, name = dotted.rpartition(".")
            file = self.by_module.get(module)
            if file is None:
                # maybe the tail crosses an attribute boundary:
                # pkg.mod.Name.attr -> chase pkg.mod.Name, keep .attr
                head, _, tail = module.rpartition(".")
                inner = self.by_module.get(head)
                if inner is not None and tail in inner.imports:
                    dotted = f"{inner.imports[tail]}.{name}"
                    continue
                return dotted
            if name in file.toplevel:
                return dotted
            if name in file.imports:
                dotted = file.imports[name]
                continue
            return dotted
        return dotted

    def resolve_call(self, file: SourceFile, call: ast.Call) -> str | None:
        """Canonical dotted name of a call's callee (or ``None``)."""
        return self.resolve_expr(file, call.func)

    # ------------------------------------------------------------------ #
    # whole-program queries
    # ------------------------------------------------------------------ #
    def subclasses_of(self, base_name: str,
                      include_base: bool = False) -> list[ClassInfo]:
        """Classes transitively deriving from any class named ``base_name``.

        Matching is by resolved qualified base names, so re-exported and
        aliased inheritance chains are followed.
        """
        known = {qual for qual, info in self.classes.items()
                 if info.name == base_name}
        seeds = set(known)
        changed = True
        while changed:
            changed = False
            for qual, info in self.classes.items():
                if qual in known:
                    continue
                if any(base in known for base in info.bases):
                    known.add(qual)
                    changed = True
        out = [info for qual, info in sorted(self.classes.items())
               if qual in known and (include_base or qual not in seeds)]
        return out

    def find_tuple_constant(self, name: str
                            ) -> "tuple[SourceFile, int, list[str]] | None":
        """First module-level ``NAME = (A, B, ...)`` assignment of names.

        Returns the file, line and the element names (``ast.Name``
        identifiers) of the tuple — how the wire-error table is indexed.
        """
        for file in self.files:
            for node in file.tree.body:
                target = None
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target, value = node.targets[0], node.value
                elif isinstance(node, ast.AnnAssign):
                    target, value = node.target, node.value
                else:
                    continue
                if not (isinstance(target, ast.Name) and target.id == name):
                    continue
                if not isinstance(value, (ast.Tuple, ast.List)):
                    continue
                names = [el.id for el in value.elts
                         if isinstance(el, ast.Name)]
                return file, node.lineno, names
        return None

    def find_string_collection(self, name: str
                               ) -> "tuple[SourceFile, int, list[str]] | None":
        """First module-level ``NAME = (...)``/``frozenset({...})`` of
        string constants; returns file, line and the strings."""
        for file in self.files:
            for node in file.tree.body:
                target = None
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target, value = node.targets[0], node.value
                elif isinstance(node, ast.AnnAssign):
                    target, value = node.target, node.value
                else:
                    continue
                if not (isinstance(target, ast.Name) and target.id == name):
                    continue
                if value is None:
                    continue
                if isinstance(value, ast.Call) and value.args:
                    value = value.args[0]
                if not isinstance(value, (ast.Tuple, ast.List, ast.Set)):
                    continue
                strings = [el.value for el in value.elts
                           if isinstance(el, ast.Constant)
                           and isinstance(el.value, str)]
                return file, node.lineno, strings
        return None
