"""Rule ``atomic-writes``: durable-path files are written atomically.

Job records, caches and shard dumps may be read concurrently by other
processes (fleet workers, merges, servers), so every write in those
packages must be temp-file + ``os.replace`` — either through
:mod:`repro.utils.atomicio` or inline.  The rule flags ``open(..., "w")``
/ ``write_text`` / ``write_bytes`` calls in the durable packages whose
enclosing function neither calls ``os.replace`` nor one of the atomic
helpers.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, Rule
from repro.analysis.model import ProjectModel, SourceFile

__all__ = ["AtomicWritesRule"]

#: Packages (relative to the lint root) whose files other processes read.
DURABLE_PREFIXES = ("api/", "cache/", "batch/", "fleet/", "service/",
                    "server/")

#: Method names that write a file in one call.
WRITE_METHODS = frozenset({"write_text", "write_bytes"})

#: Callees that make the enclosing function atomic by construction.
ATOMIC_CALLEES = frozenset({
    "os.replace",
    "repro.utils.atomicio.atomic_write_text",
    "repro.utils.atomicio.atomic_write_bytes",
})


def _open_mode(call: ast.Call) -> str | None:
    """The literal mode of an ``open()`` call (``None`` if non-literal)."""
    mode: ast.AST | None = None
    if len(call.args) >= 2:
        mode = call.args[1]
    for kw in call.keywords:
        if kw.arg == "mode":
            mode = kw.value
    if mode is None:
        return "r"
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return mode.value
    return None


class AtomicWritesRule(Rule):
    name = "atomic-writes"
    description = ("writes in durable packages go through temp-file + "
                   "os.replace (repro.utils.atomicio)")

    def check(self, project: ProjectModel) -> Iterator[Finding]:
        for file in project.files:
            if not file.relpath.startswith(DURABLE_PREFIXES):
                continue
            atomic_functions = self._atomic_functions(project, file)
            for node in ast.walk(file.tree):
                if not isinstance(node, ast.Call):
                    continue
                what = self._write_kind(project, file, node)
                if what is None:
                    continue
                enclosing = file.enclosing_function(node)
                if enclosing is not None and enclosing in atomic_functions:
                    continue
                yield self.finding(
                    file.relpath, node.lineno,
                    f"{what} in a durable path without temp+os.replace; "
                    f"use repro.utils.atomicio.atomic_write_text/_bytes so "
                    f"concurrent readers never see a torn file")

    @staticmethod
    def _write_kind(project: ProjectModel, file: SourceFile,
                    call: ast.Call) -> str | None:
        if isinstance(call.func, ast.Name) and call.func.id == "open" \
                and "open" not in file.imports:
            mode = _open_mode(call)
            if mode is not None and any(c in mode for c in "wax"):
                return f'open(..., "{mode}")'
            return None
        if isinstance(call.func, ast.Attribute) \
                and call.func.attr in WRITE_METHODS:
            resolved = project.resolve_call(file, call)
            if resolved in ATOMIC_CALLEES:
                return None
            return f".{call.func.attr}(...)"
        return None

    @staticmethod
    def _atomic_functions(project: ProjectModel,
                          file: SourceFile) -> set[ast.AST]:
        """Functions containing an os.replace / atomic-helper call."""
        atomic: set[ast.AST] = set()
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = project.resolve_call(file, node)
            if resolved in ATOMIC_CALLEES:
                enclosing = file.enclosing_function(node)
                if enclosing is not None:
                    atomic.add(enclosing)
        return atomic
