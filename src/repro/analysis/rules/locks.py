"""Rule ``lock-discipline``: a lightweight static race detector.

Three contracts over classes that own a ``threading`` lock (or spawn
their own threads):

1. **mixed guard** — an instance attribute accessed under ``with
   self._lock`` somewhere must not be *written* outside the lock in any
   other method (``__init__`` is exempt: it runs before the object is
   shared);
2. **thread-shared, no guard** — in a class that launches a
   ``threading.Thread(target=self.method)``, an attribute written both
   from the thread side (the target and everything it calls) and from
   other methods must have every write guarded;
3. **no blocking under a lock** — no ``time.sleep`` / ``urlopen`` /
   ``subprocess`` call while a lock is held (condition waits release the
   lock and are fine).

The detector is lexical and per-class: it sees ``with self.<lock>:``
blocks, not aliased locks — by design, since the codebase's locking
convention is exactly that shape.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from repro.analysis.core import Finding, Rule
from repro.analysis.model import ProjectModel, SourceFile

__all__ = ["LockDisciplineRule"]

#: Callables whose result makes an instance attribute a lock attribute.
LOCK_FACTORIES = frozenset({
    "threading.Lock", "threading.RLock", "threading.Condition",
})

#: Calls that block (or sleep) and must never run while a lock is held.
BLOCKING_CALLS = frozenset({
    "time.sleep",
    "urllib.request.urlopen",
    "socket.create_connection",
    "subprocess.run", "subprocess.call", "subprocess.check_call",
    "subprocess.check_output", "subprocess.Popen",
})


@dataclass
class _Access:
    attr: str
    line: int
    guarded: bool
    method: str
    is_write: bool


@dataclass
class _ClassScan:
    lock_attrs: set[str] = field(default_factory=set)
    accesses: list[_Access] = field(default_factory=list)
    blocking: list[tuple[str, int, str]] = field(default_factory=list)
    entry_targets: set[str] = field(default_factory=set)
    self_calls: dict[str, set[str]] = field(default_factory=dict)


class LockDisciplineRule(Rule):
    name = "lock-discipline"
    description = ("shared instance attributes are written under the "
                   "owning lock; nothing blocks while holding it")

    def check(self, project: ProjectModel) -> Iterator[Finding]:
        for file in project.files:
            for node in ast.walk(file.tree):
                if isinstance(node, ast.ClassDef):
                    yield from self._check_class(project, file, node)

    # ------------------------------------------------------------------ #
    def _check_class(self, project: ProjectModel, file: SourceFile,
                     cls: ast.ClassDef) -> Iterator[Finding]:
        methods = [n for n in cls.body
                   if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))]
        if not methods:
            return
        scan = _ClassScan()
        for method in methods:
            self._find_locks_and_entries(project, file, method, scan)
        if not scan.lock_attrs and not scan.entry_targets:
            return
        for method in methods:
            self._scan_method(project, file, method, scan)

        for rel, line, callee in scan.blocking:
            yield self.finding(
                file.relpath, line,
                f"{cls.name}.{rel} calls {callee} while holding a lock; "
                f"move the blocking call outside the critical section")

        thread_side = self._reachable(scan.entry_targets, scan.self_calls)
        guarded_attrs = {a.attr for a in scan.accesses if a.guarded}
        reported: set[tuple[str, int]] = set()
        for access in scan.accesses:
            if not access.is_write or access.guarded:
                continue
            if access.method == "__init__":
                continue
            site = (access.attr, access.line)
            if site in reported:
                continue
            if scan.lock_attrs and access.attr in guarded_attrs:
                reported.add(site)
                lock_names = ", ".join(
                    f"self.{name}" for name in sorted(scan.lock_attrs))
                yield self.finding(
                    file.relpath, access.line,
                    f"{cls.name}.{access.method} writes self.{access.attr} "
                    f"without holding {lock_names}, but the attribute is "
                    f"accessed under the lock elsewhere")
                continue
            if thread_side and self._thread_shared(access, scan, thread_side):
                reported.add(site)
                yield self.finding(
                    file.relpath, access.line,
                    f"{cls.name}.{access.method} writes self.{access.attr} "
                    f"unguarded, but the attribute is also written from the "
                    f"thread target "
                    f"{', '.join(sorted(scan.entry_targets))}")

    @staticmethod
    def _thread_shared(access: _Access, scan: _ClassScan,
                       thread_side: set[str]) -> bool:
        """Written on the thread side AND on the caller side?"""
        writers = {a.method for a in scan.accesses
                   if a.attr == access.attr and a.is_write}
        writers.discard("__init__")
        on_thread = writers & thread_side
        off_thread = writers - thread_side
        return bool(on_thread) and bool(off_thread)

    @staticmethod
    def _reachable(entries: set[str],
                   calls: dict[str, set[str]]) -> set[str]:
        seen = set(entries)
        frontier = list(entries)
        while frontier:
            for callee in calls.get(frontier.pop(), ()):
                if callee not in seen:
                    seen.add(callee)
                    frontier.append(callee)
        return seen

    # ------------------------------------------------------------------ #
    def _find_locks_and_entries(self, project: ProjectModel,
                                file: SourceFile, method: ast.AST,
                                scan: _ClassScan) -> None:
        name = method.name  # type: ignore[attr-defined]
        scan.self_calls.setdefault(name, set())
        for node in ast.walk(method):
            if isinstance(node, ast.Assign):
                if isinstance(node.value, ast.Call):
                    resolved = project.resolve_call(file, node.value)
                    if resolved in LOCK_FACTORIES:
                        for target in node.targets:
                            if self._self_attr(target) is not None:
                                scan.lock_attrs.add(self._self_attr(target))
            if isinstance(node, ast.Call):
                resolved = project.resolve_call(file, node)
                if resolved == "threading.Thread":
                    for kw in node.keywords:
                        if kw.arg == "target":
                            attr = self._self_attr(kw.value)
                            if attr is not None:
                                scan.entry_targets.add(attr)
                if isinstance(node.func, ast.Attribute) \
                        and isinstance(node.func.value, ast.Name) \
                        and node.func.value.id == "self":
                    scan.self_calls[name].add(node.func.attr)

    @staticmethod
    def _self_attr(node: ast.AST) -> str | None:
        if isinstance(node, ast.Attribute) \
                and isinstance(node.value, ast.Name) \
                and node.value.id == "self":
            return node.attr
        return None

    # ------------------------------------------------------------------ #
    def _scan_method(self, project: ProjectModel, file: SourceFile,
                     method: ast.AST, scan: _ClassScan) -> None:
        name = method.name  # type: ignore[attr-defined]

        def is_lock_item(expr: ast.AST) -> bool:
            attr = self._self_attr(expr)
            return attr is not None and attr in scan.lock_attrs

        def visit(node: ast.AST, guard: bool) -> None:
            if isinstance(node, (ast.With, ast.AsyncWith)):
                takes_lock = any(is_lock_item(item.context_expr)
                                 for item in node.items)
                for item in node.items:
                    visit(item.context_expr, guard)
                    if item.optional_vars is not None:
                        visit(item.optional_vars, guard)
                inner = guard or takes_lock
                for stmt in node.body:
                    visit(stmt, inner)
                return
            if isinstance(node, ast.Attribute):
                attr = self._self_attr(node)
                if attr is not None and attr not in scan.lock_attrs:
                    scan.accesses.append(_Access(
                        attr=attr, line=node.lineno, guarded=guard,
                        method=name,
                        is_write=isinstance(node.ctx,
                                            (ast.Store, ast.Del))))
            if isinstance(node, ast.Call) and guard:
                resolved = project.resolve_call(file, node)
                if resolved in BLOCKING_CALLS:
                    scan.blocking.append((name, node.lineno, resolved))
            for child in ast.iter_child_nodes(node):
                visit(child, guard)

        for stmt in method.body:  # type: ignore[attr-defined]
            visit(stmt, False)
