"""Rule ``modeling-only-assembly``: sparse matrices are built in one place.

PR 6 centralised every COO/CSR assembly in :mod:`repro.modeling` (one
materialisation path, one fingerprint recipe); this rule keeps it that
way by flagging any ``scipy.sparse`` constructor call outside the
``modeling/`` package.  Predicates (``issparse``) and the solver side
(``scipy.sparse.linalg``) are allowed everywhere — the contract is about
*building* matrices, not consuming them.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, Rule
from repro.analysis.model import ProjectModel

__all__ = ["ModelingOnlyAssemblyRule"]

#: Package (relative to the lint root) where assembly is allowed.
ALLOWED_PREFIX = "modeling/"

#: scipy.sparse callables that are not assembly.
NON_ASSEMBLY = frozenset({
    "issparse", "isspmatrix", "isspmatrix_coo", "isspmatrix_csc",
    "isspmatrix_csr", "save_npz", "load_npz",
})


class ModelingOnlyAssemblyRule(Rule):
    name = "modeling-only-assembly"
    description = ("scipy.sparse matrix construction happens only in "
                   "repro.modeling")

    def check(self, project: ProjectModel) -> Iterator[Finding]:
        for file in project.files:
            if file.relpath.startswith(ALLOWED_PREFIX):
                continue
            for node in ast.walk(file.tree):
                if not isinstance(node, ast.Call):
                    continue
                resolved = project.resolve_call(file, node)
                if not resolved or not resolved.startswith("scipy.sparse."):
                    continue
                if resolved.startswith("scipy.sparse.linalg."):
                    continue
                tail = resolved.rsplit(".", 1)[-1]
                if tail in NON_ASSEMBLY:
                    continue
                yield self.finding(
                    file.relpath, node.lineno,
                    f"constructs scipy.sparse.{tail} outside "
                    f"repro.modeling; route the assembly through the "
                    f"model-builder layer")
