"""Rule ``retry-safety``: retried calls declare their idempotency.

``RetryPolicy.call`` decides whether a *maybe-executed* failure (the
request may have reached the server before the connection died) is safe
to retry from the ``idempotent`` flag.  Wrapping a mutating verb —
submit/create/claim/cancel — without stating the flag silently inherits
the default and hides the at-most-once/at-least-once decision from the
reader.  The rule requires an explicit ``idempotent=`` keyword whenever
the wrapped callable invokes one of those verbs.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, Rule
from repro.analysis.model import ProjectModel, SourceFile

__all__ = ["RetrySafetyRule"]

#: Method-name prefixes that mutate server state when invoked remotely.
MUTATING_PREFIXES = ("submit", "create", "claim", "cancel")

#: Variable names assumed to hold a RetryPolicy even when the assignment
#: is not statically visible (constructor parameters, attributes).
POLICY_NAME_HINTS = frozenset({"retry_policy"})


class RetrySafetyRule(Rule):
    name = "retry-safety"
    description = ("RetryPolicy.call over a mutating verb passes an "
                   "explicit idempotent= keyword")

    def check(self, project: ProjectModel) -> Iterator[Finding]:
        for file in project.files:
            policies = self._policy_names(project, file)
            for node in ast.walk(file.tree):
                if not isinstance(node, ast.Call):
                    continue
                if not self._is_policy_call(node, policies):
                    continue
                verb = self._mutating_verb(node)
                if verb is None:
                    continue
                if any(kw.arg == "idempotent" for kw in node.keywords):
                    continue
                yield self.finding(
                    file.relpath, node.lineno,
                    f"RetryPolicy.call wraps .{verb}(...) without an "
                    f"explicit idempotent= keyword; state whether the verb "
                    f"is safe to retry after a maybe-executed failure")

    # ------------------------------------------------------------------ #
    @staticmethod
    def _policy_names(project: ProjectModel, file: SourceFile) -> set[str]:
        """Names bound to a RetryPolicy in this file (plus hints)."""
        names = set(POLICY_NAME_HINTS)
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.Assign) \
                    or not isinstance(node.value, ast.Call):
                continue
            resolved = project.resolve_call(file, node.value)
            if not resolved:
                continue
            if resolved.endswith("RetryPolicy") \
                    or resolved.endswith("RetryPolicy.from_env"):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
                    elif isinstance(target, ast.Attribute):
                        names.add(target.attr)
        return names

    @staticmethod
    def _is_policy_call(call: ast.Call, policies: set[str]) -> bool:
        """``<policy>.call(...)`` where <policy> is a known name?"""
        func = call.func
        if not (isinstance(func, ast.Attribute) and func.attr == "call"):
            return False
        owner = func.value
        if isinstance(owner, ast.Name):
            return owner.id in policies
        if isinstance(owner, ast.Attribute):  # self._store_retry.call(...)
            return owner.attr in policies
        return False

    @staticmethod
    def _mutating_verb(call: ast.Call) -> str | None:
        """A mutating method name invoked inside the wrapped callable."""
        if not call.args:
            return None
        wrapped = call.args[0]
        if isinstance(wrapped, ast.Lambda):
            scope: ast.AST = wrapped.body
        else:
            scope = wrapped
        for node in ast.walk(scope):
            name: str | None = None
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute):
                name = node.func.attr
            elif node is scope and isinstance(node, ast.Attribute):
                name = node.attr  # bound-method reference: p.call(store.claim)
            if name and name.startswith(MUTATING_PREFIXES):
                return name
        return None
