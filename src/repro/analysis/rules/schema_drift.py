"""Rule ``schema-drift``: wire envelopes and sweep columns stay in sync.

Two structural checks that catch the classic "added a field to one side"
drift:

1. for every class defining both ``to_wire`` and ``from_wire``, the set
   of payload keys written by ``to_wire`` must equal the set read by
   ``from_wire`` (modulo envelope bookkeeping keys) — a key written but
   never read is silently dropped on decode, a key read but never
   written decodes as a default forever;
2. in the module defining ``SWEEP_COLUMNS``, every ``add_row(...)`` call
   passes exactly ``len(SWEEP_COLUMNS)`` positional values, and
   ``COORD_COLUMNS`` plus any ``list(COORD_COLUMNS) + [...]`` column
   lists mention only registered columns.

Keys the rule cannot see statically (computed keys, ``**`` splats) make
the envelope unanalyzable and the class is skipped rather than
false-positived.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, Rule
from repro.analysis.model import ProjectModel, SourceFile

__all__ = ["SchemaDriftRule"]

#: Envelope bookkeeping keys exempt from the symmetry check.
IGNORED_KEYS = frozenset({"schema_version", "version", "kind"})

COLUMNS = "SWEEP_COLUMNS"
COORDS = "COORD_COLUMNS"


class SchemaDriftRule(Rule):
    name = "schema-drift"
    description = ("to_wire/from_wire key sets match and sweep column "
                   "lists agree with their row producers")

    def check(self, project: ProjectModel) -> Iterator[Finding]:
        yield from self._check_envelopes(project)
        yield from self._check_columns(project)

    # ------------------------------------------------------------------ #
    # wire envelopes
    # ------------------------------------------------------------------ #
    def _check_envelopes(self, project: ProjectModel) -> Iterator[Finding]:
        for info in project.classes.values():
            to_wire = self._method(info.node, "to_wire")
            from_wire = self._method(info.node, "from_wire")
            if to_wire is None or from_wire is None:
                continue
            written = self._written_keys(info.node, to_wire)
            read = self._read_keys(from_wire)
            if written is None or read is None:
                continue  # unanalyzable (splats, computed keys): skip
            written -= IGNORED_KEYS
            read -= IGNORED_KEYS
            for key in sorted(written - read):
                yield self.finding(
                    info.file.relpath, to_wire.lineno,
                    f'{info.name}.to_wire writes key "{key}" that '
                    f"from_wire never reads; the field is dropped on "
                    f"decode")
            for key in sorted(read - written):
                yield self.finding(
                    info.file.relpath, from_wire.lineno,
                    f'{info.name}.from_wire reads key "{key}" that '
                    f"to_wire never writes; the field always decodes as "
                    f"its default")

    @staticmethod
    def _method(cls: ast.ClassDef, name: str) -> ast.FunctionDef | None:
        for node in cls.body:
            if isinstance(node, ast.FunctionDef) and node.name == name:
                return node
        return None

    def _written_keys(self, cls: ast.ClassDef,
                      to_wire: ast.FunctionDef) -> set[str] | None:
        keys: set[str] = set()
        for node in ast.walk(to_wire):
            if isinstance(node, ast.Dict):
                for key in node.keys:
                    if key is None:
                        return None  # ** splat: unanalyzable
                    if isinstance(key, ast.Constant) \
                            and isinstance(key.value, str):
                        keys.add(key.value)
                    else:
                        return None
            elif isinstance(node, ast.Subscript) \
                    and isinstance(node.ctx, ast.Store):
                if isinstance(node.slice, ast.Constant) \
                        and isinstance(node.slice.value, str):
                    keys.add(node.slice.value)
                else:
                    return None
            elif isinstance(node, ast.For):
                # `for f in fields(self)` serialises every dataclass field
                it = node.iter
                if isinstance(it, ast.Call) \
                        and isinstance(it.func, ast.Name) \
                        and it.func.id == "fields":
                    keys.update(self._dataclass_fields(cls))
        return keys or None

    @staticmethod
    def _dataclass_fields(cls: ast.ClassDef) -> set[str]:
        names: set[str] = set()
        for node in cls.body:
            if isinstance(node, ast.AnnAssign) \
                    and isinstance(node.target, ast.Name):
                annotation = ast.unparse(node.annotation)
                if "ClassVar" not in annotation:
                    names.add(node.target.id)
        return names

    @staticmethod
    def _read_keys(from_wire: ast.FunctionDef) -> set[str] | None:
        args = from_wire.args
        params = [a.arg for a in args.posonlyargs + args.args
                  if a.arg not in ("cls", "self")]
        if not params:
            return None
        payload = params[0]
        keys: set[str] = set()
        for node in ast.walk(from_wire):
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr == "get" \
                    and isinstance(node.func.value, ast.Name) \
                    and node.func.value.id == payload and node.args:
                key = node.args[0]
                if isinstance(key, ast.Constant) \
                        and isinstance(key.value, str):
                    keys.add(key.value)
                else:
                    return None
            elif isinstance(node, ast.Subscript) \
                    and isinstance(node.value, ast.Name) \
                    and node.value.id == payload:
                if isinstance(node.slice, ast.Constant) \
                        and isinstance(node.slice.value, str):
                    keys.add(node.slice.value)
                else:
                    return None
        return keys or None

    # ------------------------------------------------------------------ #
    # sweep columns
    # ------------------------------------------------------------------ #
    def _check_columns(self, project: ProjectModel) -> Iterator[Finding]:
        columns = project.find_string_collection(COLUMNS)
        if columns is None:
            return  # no sweep table in this tree (fixture projects)
        col_file, col_line, names = columns
        registered = set(names)
        arity = len(names)

        coords = project.find_string_collection(COORDS)
        if coords is not None:
            coord_file, coord_line, coord_names = coords
            for name in coord_names:
                if name not in registered:
                    yield self.finding(
                        coord_file.relpath, coord_line,
                        f'{COORDS} entry "{name}" is not in {COLUMNS} '
                        f"({col_file.relpath}:{col_line})")

        for file in project.files:
            yield from self._check_add_rows(file, col_file, arity)
            yield from self._check_column_unions(
                file, registered, col_file, col_line)

    def _check_add_rows(self, file: SourceFile, col_file: SourceFile,
                        arity: int) -> Iterator[Finding]:
        if file is not col_file:
            return  # add_row producers live with the column registry
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute)
                    and func.attr == "add_row"):
                continue
            if any(isinstance(a, ast.Starred) for a in node.args) \
                    or node.keywords:
                continue  # dynamic arity: out of scope
            if len(node.args) != arity:
                yield self.finding(
                    file.relpath, node.lineno,
                    f"add_row passes {len(node.args)} values but "
                    f"{COLUMNS} declares {arity} columns")

    def _check_column_unions(self, file: SourceFile, registered: set[str],
                             col_file: SourceFile,
                             col_line: int) -> Iterator[Finding]:
        """``list(COORD_COLUMNS) + ["ok", ...]`` mentions real columns."""
        for node in ast.walk(file.tree):
            if not (isinstance(node, ast.BinOp)
                    and isinstance(node.op, ast.Add)):
                continue
            if not self._mentions_coords(node.left):
                continue
            if not isinstance(node.right, ast.List):
                continue
            for elt in node.right.elts:
                if isinstance(elt, ast.Constant) \
                        and isinstance(elt.value, str) \
                        and elt.value not in registered:
                    yield self.finding(
                        file.relpath, elt.lineno,
                        f'column "{elt.value}" is not in {COLUMNS} '
                        f"({col_file.relpath}:{col_line})")

    @staticmethod
    def _mentions_coords(node: ast.AST) -> bool:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name) and sub.id == COORDS:
                return True
        return False
