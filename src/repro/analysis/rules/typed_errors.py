"""Rule ``typed-errors``: every raise is a wire-resolvable ReproError.

Two halves of one contract:

1. every ``raise`` in the package raises a :class:`ReproError` subclass
   (a handful of process-control builtins are exempt), so callers can
   catch library failures uniformly and the HTTP layer can serialise
   them as typed bodies;
2. every :class:`ReproError` subclass appears in the protocol's
   client-side re-raise table (``WIRE_ERROR_TYPES``), so a typed failure
   survives a wire round-trip as its own class instead of degrading to
   ``TransportError``/``SolverError``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, Rule
from repro.analysis.model import ProjectModel

__all__ = ["TypedErrorsRule"]

#: Builtins a library module may legitimately raise: contract-by-design
#: (abstract methods), invariant assertions, and process control.
ALLOWED_BUILTINS = frozenset({
    "NotImplementedError", "AssertionError", "KeyboardInterrupt",
    "SystemExit", "GeneratorExit", "StopIteration", "StopAsyncIteration",
})

#: Builtin exceptions whose bare raise the rule flags.
BANNED_BUILTINS = frozenset({
    "ArithmeticError", "AttributeError", "BaseException", "BlockingIOError",
    "BrokenPipeError", "BufferError", "ChildProcessError",
    "ConnectionAbortedError", "ConnectionError", "ConnectionRefusedError",
    "ConnectionResetError", "EOFError", "Exception", "FileExistsError",
    "FileNotFoundError", "FloatingPointError", "IOError", "ImportError",
    "IndexError", "InterruptedError", "IsADirectoryError", "KeyError",
    "LookupError", "MemoryError", "ModuleNotFoundError", "NameError",
    "NotADirectoryError", "OSError", "OverflowError", "PermissionError",
    "ProcessLookupError", "RecursionError", "ReferenceError", "RuntimeError",
    "SystemError", "TimeoutError", "TypeError", "UnboundLocalError",
    "UnicodeDecodeError", "UnicodeEncodeError", "UnicodeError", "ValueError",
    "ZeroDivisionError",
})

#: Name of the base class and of the protocol's re-raise table.
BASE_ERROR = "ReproError"
WIRE_TABLE = "WIRE_ERROR_TYPES"


class TypedErrorsRule(Rule):
    name = "typed-errors"
    description = ("every raise is a ReproError subclass and every "
                   "subclass is registered in the wire re-raise table")

    def check(self, project: ProjectModel) -> Iterator[Finding]:
        error_quals = {
            info.qualname
            for info in project.subclasses_of(BASE_ERROR, include_base=True)
        }
        yield from self._check_raises(project, error_quals)
        yield from self._check_wire_table(project)

    # ------------------------------------------------------------------ #
    def _check_raises(self, project: ProjectModel,
                      error_quals: set[str]) -> Iterator[Finding]:
        for file in project.files:
            for node in ast.walk(file.tree):
                if not isinstance(node, ast.Raise) or node.exc is None:
                    continue
                target = node.exc
                if isinstance(target, ast.Call):
                    target = target.func
                resolved = project.resolve_expr(file, target)
                if resolved is None:
                    continue  # dynamic raise (exc var, .with_traceback())
                simple = resolved.rsplit(".", 1)[-1]
                if resolved in ALLOWED_BUILTINS:
                    continue
                if resolved in BANNED_BUILTINS:
                    yield self.finding(
                        file.relpath, node.lineno,
                        f"raises builtin {simple}; raise a ReproError "
                        f"subclass (see repro.utils.errors) so the failure "
                        f"stays typed across the wire")
                    continue
                if resolved in error_quals:
                    continue
                if resolved in project.classes:
                    yield self.finding(
                        file.relpath, node.lineno,
                        f"raises {simple}, which is not a ReproError "
                        f"subclass")
                # unresolved names (locals, stdlib aliases) are skipped

    # ------------------------------------------------------------------ #
    def _check_wire_table(self, project: ProjectModel) -> Iterator[Finding]:
        table = project.find_tuple_constant(WIRE_TABLE)
        if table is None:
            return  # no protocol table in this tree (fixture projects)
        table_file, table_line, registered = table
        names = set(registered)
        for info in project.subclasses_of(BASE_ERROR, include_base=True):
            if info.name not in names:
                yield self.finding(
                    info.file.relpath, info.node.lineno,
                    f"{info.name} is a ReproError subclass missing from "
                    f"{WIRE_TABLE} ({table_file.relpath}:{table_line}); "
                    f"clients would re-raise it untyped")
