"""Rule registry for ``repro lint``."""

from __future__ import annotations

from repro.analysis.core import Rule
from repro.analysis.rules.assembly import ModelingOnlyAssemblyRule
from repro.analysis.rules.atomic_writes import AtomicWritesRule
from repro.analysis.rules.failpoint_registry import FailpointRegistryRule
from repro.analysis.rules.locks import LockDisciplineRule
from repro.analysis.rules.retry_safety import RetrySafetyRule
from repro.analysis.rules.schema_drift import SchemaDriftRule
from repro.analysis.rules.typed_errors import TypedErrorsRule

__all__ = ["ALL_RULES", "rules_by_name"]

#: Every shipped rule, in report order.
ALL_RULES: tuple[Rule, ...] = (
    TypedErrorsRule(),
    ModelingOnlyAssemblyRule(),
    AtomicWritesRule(),
    LockDisciplineRule(),
    FailpointRegistryRule(),
    RetrySafetyRule(),
    SchemaDriftRule(),
)


def rules_by_name() -> dict[str, Rule]:
    return {rule.name: rule for rule in ALL_RULES}
