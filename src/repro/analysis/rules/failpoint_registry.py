"""Rule ``failpoint-registry``: fire sites and the registry agree.

The failpoint framework injects faults by site name, so a typo'd
``fire("jobstore.wirte")`` silently never fires and a fault-injection
test passes vacuously.  The rule cross-checks every literal
``fire("<site>")`` call against :data:`repro.reliability.failpoints.SITES`
in both directions: unknown names are flagged at the call site,
registered-but-unreferenced names are flagged at the registry.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, Rule
from repro.analysis.model import ProjectModel

__all__ = ["FailpointRegistryRule"]

#: Name of the registry constant (a set of site-name strings).
REGISTRY = "SITES"

#: Dotted suffixes that identify the fire entry point.
FIRE_SUFFIXES = ("failpoints.fire",)


class FailpointRegistryRule(Rule):
    name = "failpoint-registry"
    description = ("every fire(\"site\") literal is registered in "
                   "failpoints.SITES and every registered site is used")

    def check(self, project: ProjectModel) -> Iterator[Finding]:
        registry = project.find_string_collection(REGISTRY)
        if registry is None:
            return  # no failpoint framework in this tree (fixture projects)
        reg_file, reg_line, sites = registry
        registered = set(sites)
        fired: set[str] = set()

        for file in project.files:
            for node in ast.walk(file.tree):
                if not isinstance(node, ast.Call):
                    continue
                resolved = project.resolve_call(file, node)
                if not resolved or not resolved.endswith(FIRE_SUFFIXES):
                    continue
                if not node.args:
                    continue
                site = node.args[0]
                if not (isinstance(site, ast.Constant)
                        and isinstance(site.value, str)):
                    continue  # dynamic site name: out of scope
                fired.add(site.value)
                if site.value not in registered:
                    yield self.finding(
                        file.relpath, node.lineno,
                        f'fire("{site.value}") is not registered in '
                        f"{REGISTRY} ({reg_file.relpath}:{reg_line}); "
                        f"fault specs naming it would never trigger")

        for site in sorted(registered - fired):
            yield self.finding(
                reg_file.relpath, reg_line,
                f'registered failpoint site "{site}" has no fire() call; '
                f"remove it or wire the site back in")
