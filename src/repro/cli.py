"""Command-line interface.

``python -m repro`` exposes the two things a user wants without writing
code: solving a ``MinEnergy(G, D)`` instance stored as JSON, and
regenerating any of the experiments E1–E10.

Examples
--------
Solve a graph stored in JSON under the Continuous model with 50% slack::

    python -m repro solve graph.json --model continuous --slack 1.5

Solve under a 4-mode Discrete model with an absolute deadline::

    python -m repro solve graph.json --model discrete --modes 0.4,0.6,0.8,1.0 \
        --deadline 42

Regenerate experiment E6 (modes sweep) and print its table::

    python -m repro experiment E6

List the available experiments::

    python -m repro experiment --list

Run a batch sweep over graph classes, sizes and deadline slacks on four
worker processes, emitting CSV::

    python -m repro sweep --classes chain,tree --sizes 100,1000 \
        --slacks 1.2,2.0 --workers 4 --csv

Submit the same grid as an asynchronous job to the solver service (results
and a job record land in ``--jobs-dir``), then list recorded jobs::

    python -m repro submit --classes chain,tree --sizes 100,1000 \
        --slacks 1.2,2.0 --workers 4
    python -m repro jobs

Shard the sweep across three machines (every leg derives the same
deterministic partition from the base seed) and merge the dumps::

    python -m repro sweep --sizes 100,1000 --seed 7 --shard 1/3 \
        --cache-dir .repro-cache --out shard1.json     # ... 2/3, 3/3 elsewhere
    python -m repro merge shard1.json shard2.json shard3.json --csv
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time
from typing import Sequence

from repro.core.models import (
    ContinuousModel,
    DiscreteModel,
    EnergyModel,
    IncrementalModel,
    VddHoppingModel,
)
from repro.core.problem import MinEnergyProblem
from repro.core.validation import check_solution
from repro.graphs.analysis import longest_path_length
from repro.graphs.io import graph_from_json
from repro.solve import solve
from repro.utils.errors import ReproError


def _parse_modes(text: str) -> tuple[float, ...]:
    try:
        modes = tuple(float(part) for part in text.split(",") if part.strip())
    except ValueError as exc:
        raise ReproError(f"could not parse mode list {text!r}: {exc}") from exc
    if not modes:
        raise ReproError("the mode list is empty")
    return modes


def _build_model(args: argparse.Namespace) -> EnergyModel:
    name = args.model
    if name == "continuous":
        return ContinuousModel(s_max=args.s_max)
    modes = _parse_modes(args.modes) if args.modes else (0.4, 0.6, 0.8, 1.0)
    if name == "discrete":
        return DiscreteModel(modes=modes)
    if name == "vdd":
        return VddHoppingModel(modes=modes)
    if name == "incremental":
        if args.modes:
            grid = sorted(modes)
            delta = grid[1] - grid[0] if len(grid) > 1 else grid[0]
            return IncrementalModel.from_range(grid[0], grid[-1], delta)
        return IncrementalModel.from_range(0.2 * args.s_max, args.s_max, 0.2 * args.s_max)
    raise ReproError(f"unknown model {name!r}")


def _cmd_solve(args: argparse.Namespace) -> int:
    with open(args.graph, "r", encoding="utf-8") as handle:
        graph = graph_from_json(handle.read())
    model = _build_model(args)
    if args.deadline is not None:
        deadline = args.deadline
    else:
        s_max = model.max_speed
        if not (s_max < float("inf")):
            raise ReproError("--slack needs a finite maximum speed; pass --deadline instead")
        deadline = args.slack * longest_path_length(
            graph, weight=lambda n: graph.work(n) / s_max)
    problem = MinEnergyProblem(graph=graph, deadline=deadline, model=model)
    solution = solve(problem, method=args.method or None, exact=args.exact or None)
    check_solution(solution)
    payload = {
        "graph": graph.name,
        "n_tasks": graph.n_tasks,
        "model": model.name,
        "deadline": deadline,
        "solver": solution.solver,
        "energy": solution.energy,
        "makespan": solution.makespan,
        "lower_bound": solution.lower_bound,
        "optimal": solution.optimal,
        "speeds": {k: round(v, 9) for k, v in sorted(solution.speeds().items())},
    }
    print(json.dumps(payload, indent=2))
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments.drivers import EXPERIMENT_REGISTRY

    if args.list or not args.experiment_id:
        for key, fn in EXPERIMENT_REGISTRY.items():
            first_line = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"{key:>4}  {first_line}")
        return 0
    key = args.experiment_id.upper()
    if key not in EXPERIMENT_REGISTRY:
        raise ReproError(
            f"unknown experiment {args.experiment_id!r}; available: "
            f"{', '.join(EXPERIMENT_REGISTRY)}"
        )
    table = EXPERIMENT_REGISTRY[key]()
    if args.csv:
        print(table.to_csv(), end="")
    else:
        print(table.to_ascii(), end="")
    return 0


def _parse_floats(text: str, *, flag: str) -> tuple[float, ...]:
    try:
        values = tuple(float(part) for part in text.split(",") if part.strip())
    except ValueError as exc:
        raise ReproError(f"could not parse {flag} list {text!r}: {exc}") from exc
    if not values:
        raise ReproError(f"the {flag} list is empty")
    return values


def _parse_ints(text: str, *, flag: str) -> tuple[int, ...]:
    try:
        values = tuple(int(part) for part in text.split(",") if part.strip())
    except ValueError as exc:
        raise ReproError(f"could not parse {flag} list {text!r}: {exc}") from exc
    if not values:
        raise ReproError(f"the {flag} list is empty")
    return values


def _grid_kwargs(args: argparse.Namespace) -> dict:
    """Sweep-grid keyword arguments shared by ``sweep`` and ``submit``."""
    return dict(
        graph_classes=tuple(c.strip() for c in args.classes.split(",") if c.strip()),
        sizes=_parse_ints(args.sizes, flag="--sizes"),
        slacks=_parse_floats(args.slacks, flag="--slacks"),
        alphas=_parse_floats(args.alphas, flag="--alphas"),
        model=args.model,
        n_modes=args.n_modes,
        s_max=args.s_max,
        repetitions=args.repetitions,
        seed=args.seed,
    )


def _make_cache(args: argparse.Namespace):
    if getattr(args, "cache_dir", None):
        from repro.cache import disk_cache

        return disk_cache(args.cache_dir)
    return None


def _parse_shard(args: argparse.Namespace):
    """Resolve --shard/--shard-strategy into a ShardSpec (or None)."""
    if not getattr(args, "shard", ""):
        return None
    from repro.batch import ShardSpec

    return ShardSpec.parse(args.shard, strategy=args.shard_strategy)


def _load_priors(args: argparse.Namespace):
    """Fit timing priors from a previous run's dump for --priors-from."""
    if not getattr(args, "priors_from", ""):
        return None
    from repro.batch import load_shard_dump, priors_from_rows
    from repro.utils.tables import Table

    dump = load_shard_dump(args.priors_from)
    dump_model = dump.params.get("model")
    if dump_model and dump_model != args.model:
        print(f"warning: {args.priors_from} was swept with model "
              f"{dump_model!r} but this sweep uses {args.model!r}; the "
              "fitted timing curve may not transfer", file=sys.stderr)
    table = Table(columns=dump.columns, rows=dump.rows)
    priors = priors_from_rows(table, model=args.model)
    if not priors:
        print(f"warning: {args.priors_from} has no usable timing rows; "
              "using the built-in priors", file=sys.stderr)
        return None
    fitted = ", ".join(f"{cls or '<fallback>'}: {c:.3g}*(n/100)^{e:.2f}"
                       for cls, (c, e) in sorted(
                           priors.items(), key=lambda kv: kv[0] or ""))
    print(f"calibrated shard priors from {args.priors_from}: {fitted}",
          file=sys.stderr)
    return priors


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.batch import sweep, sweep_cache_stats, sweep_failures

    cache = _make_cache(args)
    table = sweep(
        **_grid_kwargs(args),
        workers=args.workers or None,
        chunk=args.chunk,
        cache=cache,
        shard=_parse_shard(args),
        priors=_load_priors(args),
    )
    if args.out:
        from repro.batch import write_shard_dump

        path = write_shard_dump(args.out, table)
        print(f"wrote {len(table)} rows (fingerprint "
              f"{table.manifest['fingerprint']}) to {path}", file=sys.stderr)
    if args.csv:
        print(table.to_csv(), end="")
    else:
        print(table.to_ascii(), end="")
    if cache is not None:
        stats = sweep_cache_stats(table)
        print(f"cache: {stats['hits']} hits / {stats['misses']} misses "
              f"(hit rate {stats['hit_rate']:.0%})", file=sys.stderr)
    failures = sweep_failures(table)
    if failures:
        print(f"{len(failures)} of {len(table)} instances failed "
              "(see the error column)", file=sys.stderr)
    return 0


def _job_record_path(jobs_dir: str, job_id: str) -> pathlib.Path:
    return pathlib.Path(jobs_dir) / f"{job_id}.json"


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.batch import sweep_cache_stats
    from repro.service import SolverService

    cache = _make_cache(args)
    # the context manager cancels pending instances on an exception (e.g.
    # Ctrl+C mid-poll), so an interrupted submit does not sit out the grid
    with SolverService(workers=max(1, args.workers), cache=cache) as service:
        handle = service.submit_sweep(**_grid_kwargs(args), name=args.name or "",
                                      shard=_parse_shard(args),
                                      priors=_load_priors(args))
        print(f"submitted {handle.job_id}: {handle.total} instances "
              f"on {max(1, args.workers)} workers", file=sys.stderr)
        while not handle.done():
            progress = handle.progress()
            print(f"  {handle.status().value}: {progress.done}/{progress.total} "
                  f"done, {progress.failed} failed", file=sys.stderr)
            time.sleep(args.poll)
        table = service.job_table(handle.job_id)

    record = handle.describe()
    record["columns"] = list(table.columns)
    record["rows"] = table.rows
    jobs_dir = pathlib.Path(args.jobs_dir)
    jobs_dir.mkdir(parents=True, exist_ok=True)
    path = _job_record_path(args.jobs_dir, handle.job_id)
    path.write_text(json.dumps(record, indent=2, default=repr) + "\n",
                    encoding="utf-8")

    if args.csv:
        print(table.to_csv(), end="")
    else:
        print(table.to_ascii(), end="")
    progress = handle.progress()
    stats = sweep_cache_stats(table)
    print(f"{handle.job_id}: done ({progress.done}/{progress.total}, "
          f"{progress.failed} failed, {stats['hits']} cache hits); "
          f"record: {path}", file=sys.stderr)
    return 0


def _cmd_merge(args: argparse.Namespace) -> int:
    from repro.batch import (
        load_shard_dump,
        merge_report,
        merge_shard_dumps,
        write_shard_dump,
    )

    dumps = [load_shard_dump(path) for path in args.dumps]
    table = merge_shard_dumps(dumps)
    if args.out:
        path = write_shard_dump(args.out, table)
        print(f"wrote merged table to {path}", file=sys.stderr)
    if args.csv:
        print(table.to_csv(), end="")
    else:
        print(table.to_ascii(), end="")
    report = merge_report(dumps, table)
    per_shard = ", ".join(f"{spelling}: {n} rows"
                          for spelling, n in report["shard_rows"].items())
    print(f"merged {report['n_shards']} shard dump(s) -> "
          f"{report['total_rows']} rows, fingerprint "
          f"{report['fingerprint']} ({per_shard})", file=sys.stderr)
    return 0


def _cmd_jobs(args: argparse.Namespace) -> int:
    jobs_dir = pathlib.Path(args.jobs_dir)
    records = []
    if jobs_dir.is_dir():
        for path in sorted(jobs_dir.glob("*.json")):
            # a truncated/corrupt record must not take the whole listing
            # down: skip it with a warning and keep listing the rest
            try:
                record = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError) as exc:
                print(f"warning: skipping unreadable job record {path.name}: "
                      f"{exc}", file=sys.stderr)
                continue
            if not (isinstance(record, dict) and "job_id" in record):
                print(f"warning: skipping {path.name}: not a job record",
                      file=sys.stderr)
                continue
            records.append(record)
    if not records:
        print(f"no job records under {jobs_dir}")
        return 0

    def _created_at(record: dict) -> float:
        try:
            return float(record.get("created_at") or 0.0)
        except (TypeError, ValueError):
            return 0.0

    records.sort(key=_created_at)
    print(f"{'job_id':<28} {'status':<10} {'done':>6} {'failed':>6} "
          f"{'hits':>5}  name")
    for record in records:
        done = f"{record.get('done', '?')}/{record.get('total', '?')}"
        print(f"{str(record.get('job_id', '?')):<28} "
              f"{str(record.get('status', '?')):<10} {done:>6} "
              f"{str(record.get('failed') or 0):>6} "
              f"{str(record.get('cache_hits') or 0):>5}  "
              f"{record.get('name') or ''}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reclaiming the energy of a schedule: models and algorithms "
                    "(SPAA'11 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    solve_parser = sub.add_parser("solve", help="solve a MinEnergy(G, D) instance from JSON")
    solve_parser.add_argument("graph", help="path to a JSON task graph (see repro.graphs.io)")
    solve_parser.add_argument("--model", choices=("continuous", "discrete", "vdd", "incremental"),
                              default="continuous")
    solve_parser.add_argument("--modes", default="",
                              help="comma-separated mode speeds for the mode-based models")
    solve_parser.add_argument("--s-max", type=float, default=1.0,
                              help="maximum speed of the continuous model (default 1.0)")
    solve_parser.add_argument("--deadline", type=float, default=None,
                              help="absolute deadline D (overrides --slack)")
    solve_parser.add_argument("--slack", type=float, default=1.5,
                              help="deadline as a multiple of the minimum makespan (default 1.5)")
    solve_parser.add_argument("--exact", action="store_true",
                              help="force exact resolution for the NP-complete models")
    solve_parser.add_argument("--method", default="",
                              help="registered solver method (e.g. gp-slsqp, lp, "
                                   "heuristic); default: the model's default backend")
    solve_parser.set_defaults(handler=_cmd_solve)

    exp_parser = sub.add_parser("experiment", help="regenerate an experiment table (E1-E10)")
    exp_parser.add_argument("experiment_id", nargs="?", default="",
                            help="experiment id, e.g. E6")
    exp_parser.add_argument("--list", action="store_true", help="list available experiments")
    exp_parser.add_argument("--csv", action="store_true", help="emit CSV instead of ASCII")
    exp_parser.set_defaults(handler=_cmd_experiment)

    def add_grid_arguments(p: argparse.ArgumentParser) -> None:
        p.add_argument("--classes", default="chain,tree,layered",
                       help="comma-separated graph classes (default chain,tree,layered)")
        p.add_argument("--sizes", default="32",
                       help="comma-separated task counts (default 32)")
        p.add_argument("--slacks", default="1.5",
                       help="comma-separated deadline slack factors (default 1.5)")
        p.add_argument("--alphas", default="3.0",
                       help="comma-separated power-law exponents (default 3.0)")
        p.add_argument("--model", choices=("continuous", "discrete", "vdd", "incremental"),
                       default="continuous")
        p.add_argument("--n-modes", type=int, default=5,
                       help="mode count for the mode-based models (default 5)")
        p.add_argument("--s-max", type=float, default=1.0,
                       help="continuous speed cap; pass inf for the uncapped "
                            "Theorem-2 regime (default 1.0)")
        p.add_argument("--repetitions", type=int, default=1,
                       help="random repetitions per grid cell (default 1)")
        p.add_argument("--seed", type=int, default=0, help="base seed (default 0)")
        p.add_argument("--cache-dir", default="",
                       help="directory of an on-disk result cache; repeated "
                            "runs are served from it (hit rate on stderr), "
                            "and shard legs sharing it reuse each other's "
                            "warm results")
        p.add_argument("--shard", default="",
                       help="solve only shard I/N of the grid (1-based, e.g. "
                            "1/3); every leg derives the same deterministic "
                            "partition from the base seed")
        p.add_argument("--shard-strategy", default="cost-weighted",
                       choices=("cost-weighted", "round-robin"),
                       help="grid partitioning strategy (default "
                            "cost-weighted: timing-prior-balanced shards)")
        p.add_argument("--priors-from", default="",
                       help="calibrate the cost-weighted partitioner from "
                            "the measured seconds of a previous run's dump "
                            "(a 'repro sweep --out' JSON); every shard leg "
                            "must pass the same dump")
        p.add_argument("--csv", action="store_true", help="emit CSV instead of ASCII")

    sweep_parser = sub.add_parser(
        "sweep", help="run a batch sweep over graph-class/size/deadline/alpha grids")
    add_grid_arguments(sweep_parser)
    sweep_parser.add_argument("--workers", type=int, default=0,
                              help="worker processes; 0 or 1 solves serially (default 0)")
    sweep_parser.add_argument("--chunk", type=int, default=1,
                              help="instances per worker dispatch (default 1)")
    sweep_parser.add_argument("--out", default="",
                              help="also write the rows as a fingerprinted "
                                   "JSON shard dump for 'repro merge'")
    sweep_parser.set_defaults(handler=_cmd_sweep)

    merge_parser = sub.add_parser(
        "merge", help="merge per-shard sweep dumps back into the full-grid "
                      "table (fails on gaps, overlaps or fingerprint "
                      "mismatches)")
    merge_parser.add_argument("dumps", nargs="+",
                              help="shard dump files written by "
                                   "'repro sweep --shard I/N --out ...'")
    merge_parser.add_argument("--out", default="",
                              help="write the merged table as a JSON dump")
    merge_parser.add_argument("--csv", action="store_true",
                              help="emit CSV instead of ASCII")
    merge_parser.set_defaults(handler=_cmd_merge)

    submit_parser = sub.add_parser(
        "submit", help="submit a sweep grid to the async solver service and "
                       "record the job under --jobs-dir")
    add_grid_arguments(submit_parser)
    submit_parser.add_argument("--workers", type=int, default=2,
                               help="service worker processes (default 2)")
    submit_parser.add_argument("--name", default="", help="job display name")
    submit_parser.add_argument("--poll", type=float, default=0.2,
                               help="progress poll interval in seconds (default 0.2)")
    submit_parser.add_argument("--jobs-dir", default=".repro-jobs",
                               help="directory for job records (default .repro-jobs)")
    submit_parser.set_defaults(handler=_cmd_submit)

    jobs_parser = sub.add_parser(
        "jobs", help="list job records written by 'repro submit'")
    jobs_parser.add_argument("--jobs-dir", default=".repro-jobs",
                             help="directory of job records (default .repro-jobs)")
    jobs_parser.set_defaults(handler=_cmd_jobs)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
