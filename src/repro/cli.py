"""Command-line interface.

``python -m repro`` exposes the two things a user wants without writing
code: solving a ``MinEnergy(G, D)`` instance stored as JSON, and
regenerating any of the experiments E1–E10.

Examples
--------
Solve a graph stored in JSON under the Continuous model with 50% slack::

    python -m repro solve graph.json --model continuous --slack 1.5

Solve under a 4-mode Discrete model with an absolute deadline::

    python -m repro solve graph.json --model discrete --modes 0.4,0.6,0.8,1.0 \
        --deadline 42

Regenerate experiment E6 (modes sweep) and print its table::

    python -m repro experiment E6

List the available experiments::

    python -m repro experiment --list

Run a batch sweep over graph classes, sizes and deadline slacks on four
worker processes, emitting CSV::

    python -m repro sweep --classes chain,tree --sizes 100,1000 \
        --slacks 1.2,2.0 --workers 4 --csv
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.core.models import (
    ContinuousModel,
    DiscreteModel,
    EnergyModel,
    IncrementalModel,
    VddHoppingModel,
)
from repro.core.problem import MinEnergyProblem
from repro.core.validation import check_solution
from repro.graphs.analysis import longest_path_length
from repro.graphs.io import graph_from_json
from repro.solve import solve
from repro.utils.errors import ReproError


def _parse_modes(text: str) -> tuple[float, ...]:
    try:
        modes = tuple(float(part) for part in text.split(",") if part.strip())
    except ValueError as exc:
        raise ReproError(f"could not parse mode list {text!r}: {exc}") from exc
    if not modes:
        raise ReproError("the mode list is empty")
    return modes


def _build_model(args: argparse.Namespace) -> EnergyModel:
    name = args.model
    if name == "continuous":
        return ContinuousModel(s_max=args.s_max)
    modes = _parse_modes(args.modes) if args.modes else (0.4, 0.6, 0.8, 1.0)
    if name == "discrete":
        return DiscreteModel(modes=modes)
    if name == "vdd":
        return VddHoppingModel(modes=modes)
    if name == "incremental":
        if args.modes:
            grid = sorted(modes)
            delta = grid[1] - grid[0] if len(grid) > 1 else grid[0]
            return IncrementalModel.from_range(grid[0], grid[-1], delta)
        return IncrementalModel.from_range(0.2 * args.s_max, args.s_max, 0.2 * args.s_max)
    raise ReproError(f"unknown model {name!r}")


def _cmd_solve(args: argparse.Namespace) -> int:
    with open(args.graph, "r", encoding="utf-8") as handle:
        graph = graph_from_json(handle.read())
    model = _build_model(args)
    if args.deadline is not None:
        deadline = args.deadline
    else:
        s_max = model.max_speed
        if not (s_max < float("inf")):
            raise ReproError("--slack needs a finite maximum speed; pass --deadline instead")
        deadline = args.slack * longest_path_length(
            graph, weight=lambda n: graph.work(n) / s_max)
    problem = MinEnergyProblem(graph=graph, deadline=deadline, model=model)
    solution = solve(problem, exact=args.exact or None)
    check_solution(solution)
    payload = {
        "graph": graph.name,
        "n_tasks": graph.n_tasks,
        "model": model.name,
        "deadline": deadline,
        "solver": solution.solver,
        "energy": solution.energy,
        "makespan": solution.makespan,
        "lower_bound": solution.lower_bound,
        "optimal": solution.optimal,
        "speeds": {k: round(v, 9) for k, v in sorted(solution.speeds().items())},
    }
    print(json.dumps(payload, indent=2))
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments.drivers import EXPERIMENT_REGISTRY

    if args.list or not args.experiment_id:
        for key, fn in EXPERIMENT_REGISTRY.items():
            first_line = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"{key:>4}  {first_line}")
        return 0
    key = args.experiment_id.upper()
    if key not in EXPERIMENT_REGISTRY:
        raise ReproError(
            f"unknown experiment {args.experiment_id!r}; available: "
            f"{', '.join(EXPERIMENT_REGISTRY)}"
        )
    table = EXPERIMENT_REGISTRY[key]()
    if args.csv:
        print(table.to_csv(), end="")
    else:
        print(table.to_ascii(), end="")
    return 0


def _parse_floats(text: str, *, flag: str) -> tuple[float, ...]:
    try:
        values = tuple(float(part) for part in text.split(",") if part.strip())
    except ValueError as exc:
        raise ReproError(f"could not parse {flag} list {text!r}: {exc}") from exc
    if not values:
        raise ReproError(f"the {flag} list is empty")
    return values


def _parse_ints(text: str, *, flag: str) -> tuple[int, ...]:
    try:
        values = tuple(int(part) for part in text.split(",") if part.strip())
    except ValueError as exc:
        raise ReproError(f"could not parse {flag} list {text!r}: {exc}") from exc
    if not values:
        raise ReproError(f"the {flag} list is empty")
    return values


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.batch import sweep, sweep_failures

    table = sweep(
        graph_classes=tuple(c.strip() for c in args.classes.split(",") if c.strip()),
        sizes=_parse_ints(args.sizes, flag="--sizes"),
        slacks=_parse_floats(args.slacks, flag="--slacks"),
        alphas=_parse_floats(args.alphas, flag="--alphas"),
        model=args.model,
        n_modes=args.n_modes,
        s_max=args.s_max,
        repetitions=args.repetitions,
        seed=args.seed,
        workers=args.workers or None,
        chunk=args.chunk,
    )
    if args.csv:
        print(table.to_csv(), end="")
    else:
        print(table.to_ascii(), end="")
    failures = sweep_failures(table)
    if failures:
        print(f"{len(failures)} of {len(table)} instances failed "
              "(see the error column)", file=sys.stderr)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reclaiming the energy of a schedule: models and algorithms "
                    "(SPAA'11 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    solve_parser = sub.add_parser("solve", help="solve a MinEnergy(G, D) instance from JSON")
    solve_parser.add_argument("graph", help="path to a JSON task graph (see repro.graphs.io)")
    solve_parser.add_argument("--model", choices=("continuous", "discrete", "vdd", "incremental"),
                              default="continuous")
    solve_parser.add_argument("--modes", default="",
                              help="comma-separated mode speeds for the mode-based models")
    solve_parser.add_argument("--s-max", type=float, default=1.0,
                              help="maximum speed of the continuous model (default 1.0)")
    solve_parser.add_argument("--deadline", type=float, default=None,
                              help="absolute deadline D (overrides --slack)")
    solve_parser.add_argument("--slack", type=float, default=1.5,
                              help="deadline as a multiple of the minimum makespan (default 1.5)")
    solve_parser.add_argument("--exact", action="store_true",
                              help="force exact resolution for the NP-complete models")
    solve_parser.set_defaults(handler=_cmd_solve)

    exp_parser = sub.add_parser("experiment", help="regenerate an experiment table (E1-E10)")
    exp_parser.add_argument("experiment_id", nargs="?", default="",
                            help="experiment id, e.g. E6")
    exp_parser.add_argument("--list", action="store_true", help="list available experiments")
    exp_parser.add_argument("--csv", action="store_true", help="emit CSV instead of ASCII")
    exp_parser.set_defaults(handler=_cmd_experiment)

    sweep_parser = sub.add_parser(
        "sweep", help="run a batch sweep over graph-class/size/deadline/alpha grids")
    sweep_parser.add_argument("--classes", default="chain,tree,layered",
                              help="comma-separated graph classes (default chain,tree,layered)")
    sweep_parser.add_argument("--sizes", default="32",
                              help="comma-separated task counts (default 32)")
    sweep_parser.add_argument("--slacks", default="1.5",
                              help="comma-separated deadline slack factors (default 1.5)")
    sweep_parser.add_argument("--alphas", default="3.0",
                              help="comma-separated power-law exponents (default 3.0)")
    sweep_parser.add_argument("--model", choices=("continuous", "discrete", "vdd", "incremental"),
                              default="continuous")
    sweep_parser.add_argument("--n-modes", type=int, default=5,
                              help="mode count for the mode-based models (default 5)")
    sweep_parser.add_argument("--s-max", type=float, default=1.0,
                              help="continuous speed cap; pass inf for the uncapped "
                                   "Theorem-2 regime (default 1.0)")
    sweep_parser.add_argument("--repetitions", type=int, default=1,
                              help="random repetitions per grid cell (default 1)")
    sweep_parser.add_argument("--seed", type=int, default=0, help="base seed (default 0)")
    sweep_parser.add_argument("--workers", type=int, default=0,
                              help="worker processes; 0 or 1 solves serially (default 0)")
    sweep_parser.add_argument("--chunk", type=int, default=1,
                              help="instances per worker dispatch (default 1)")
    sweep_parser.add_argument("--csv", action="store_true", help="emit CSV instead of ASCII")
    sweep_parser.set_defaults(handler=_cmd_sweep)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
