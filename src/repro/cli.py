"""Command-line interface.

``python -m repro`` exposes the two things a user wants without writing
code: solving a ``MinEnergy(G, D)`` instance stored as JSON, and
regenerating any of the experiments E1–E10.

Examples
--------
Solve a graph stored in JSON under the Continuous model with 50% slack::

    python -m repro solve graph.json --model continuous --slack 1.5

Solve under a 4-mode Discrete model with an absolute deadline::

    python -m repro solve graph.json --model discrete --modes 0.4,0.6,0.8,1.0 \
        --deadline 42

Regenerate experiment E6 (modes sweep) and print its table::

    python -m repro experiment E6

List the available experiments::

    python -m repro experiment --list

Run a batch sweep over graph classes, sizes and deadline slacks on four
worker processes, emitting CSV::

    python -m repro sweep --classes chain,tree --sizes 100,1000 \
        --slacks 1.2,2.0 --workers 4 --csv

Submit the same grid as a durable job (a re-attachable record lands in
``--jobs-dir``), follow its progress, and list recorded jobs::

    python -m repro submit --classes chain,tree --sizes 100,1000 \
        --slacks 1.2,2.0 --workers 4
    python -m repro jobs --strict

Run the solver as an HTTP service and drive it from another machine — the
same verbs work against every transport, and a detached client can
re-attach by job id after a restart::

    python -m repro serve --port 8731 --jobs-dir .repro-jobs   # machine A
    JOB=$(python -m repro submit --url http://a:8731 --sizes 64 --detach)
    python -m repro status  "$JOB" --url http://a:8731
    python -m repro attach  "$JOB" --url http://a:8731
    python -m repro results "$JOB" --url http://a:8731 --csv
    python -m repro cancel  "$JOB" --url http://a:8731

Shard the sweep across three machines (every leg derives the same
deterministic partition from the base seed) and merge the dumps::

    python -m repro sweep --sizes 100,1000 --seed 7 --shard 1/3 \
        --cache-dir .repro-cache --out shard1.json     # ... 2/3, 3/3 elsewhere
    python -m repro merge shard1.json shard2.json shard3.json --csv
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Sequence

from repro.core.models import (
    ContinuousModel,
    DiscreteModel,
    EnergyModel,
    IncrementalModel,
    VddHoppingModel,
)
from repro.core.problem import MinEnergyProblem
from repro.graphs.analysis import longest_path_length
from repro.graphs.io import graph_from_json
from repro.utils.errors import ReproError


def _parse_modes(text: str) -> tuple[float, ...]:
    try:
        modes = tuple(float(part) for part in text.split(",") if part.strip())
    except ValueError as exc:
        raise ReproError(f"could not parse mode list {text!r}: {exc}") from exc
    if not modes:
        raise ReproError("the mode list is empty")
    return modes


def _build_model(args: argparse.Namespace) -> EnergyModel:
    name = args.model
    if name == "continuous":
        return ContinuousModel(s_max=args.s_max)
    modes = _parse_modes(args.modes) if args.modes else (0.4, 0.6, 0.8, 1.0)
    if name == "discrete":
        return DiscreteModel(modes=modes)
    if name == "vdd":
        return VddHoppingModel(modes=modes)
    if name == "incremental":
        if args.modes:
            grid = sorted(modes)
            delta = grid[1] - grid[0] if len(grid) > 1 else grid[0]
            return IncrementalModel.from_range(grid[0], grid[-1], delta)
        return IncrementalModel.from_range(0.2 * args.s_max, args.s_max, 0.2 * args.s_max)
    raise ReproError(f"unknown model {name!r}")


def _cmd_solve(args: argparse.Namespace) -> int:
    from repro.api import HTTPTransport, LocalTransport, SolverClient

    with open(args.graph, "r", encoding="utf-8") as handle:
        graph = graph_from_json(handle.read())
    model = _build_model(args)
    if args.deadline is not None:
        deadline = args.deadline
    else:
        s_max = model.max_speed
        if not (s_max < float("inf")):
            raise ReproError("--slack needs a finite maximum speed; pass --deadline instead")
        deadline = args.slack * longest_path_length(
            graph, weight=lambda n: graph.work(n) / s_max)
    problem = MinEnergyProblem(graph=graph, deadline=deadline, model=model)
    options = {"backend": args.backend} if args.backend else {}
    policy, request_deadline = _reliability_kwargs(args)
    if getattr(args, "url", ""):
        transport = HTTPTransport(args.url,
                                  token=getattr(args, "token", "") or None,
                                  retry_policy=policy)
        client_policy = None  # the transport retries at the wire
    else:
        transport = LocalTransport(workers=1, use_threads=True)
        client_policy = policy
    with SolverClient(transport, retry_policy=client_policy,
                      deadline=request_deadline) as client:
        response = client.solve(problem, method=args.method or None,
                                exact=args.exact or None,
                                options=options or None,
                                keep_speeds=True, validate=True)
    payload = {
        "graph": graph.name,
        "n_tasks": graph.n_tasks,
        "model": model.name,
        "deadline": deadline,
        "solver": response.solver,
        "energy": response.energy,
        "makespan": response.makespan,
        "lower_bound": response.lower_bound,
        "optimal": response.optimal,
        "speeds": {k: round(v, 9)
                   for k, v in sorted((response.speeds or {}).items())},
    }
    print(json.dumps(payload, indent=2))
    return 0


def _cmd_backends(args: argparse.Namespace) -> int:
    from repro.modeling import BACKENDS
    from repro.solve import ensure_backends_loaded

    # the solver packages announce their model routes at import time
    ensure_backends_loaded()
    entries = BACKENDS.describe()
    if args.json:
        print(json.dumps(entries, indent=2))
        return 0
    for entry in entries:
        status = "available" if entry["available"] else \
            f"unavailable ({entry['reason']})"
        tags = []
        if entry["optional"]:
            tags.append("optional")
        for kind in entry["default_for"]:
            tags.append(f"default for {kind}")
        tag_text = f" [{', '.join(tags)}]" if tags else ""
        print(f"{entry['name']}  ({', '.join(entry['kinds'])})  "
              f"{status}{tag_text}")
        if entry["doc"]:
            print(f"    {entry['doc']}")
        if entry["routes"]:
            print(f"    routes: {', '.join(entry['routes'])}")
        for name, doc in entry["options"].items():
            print(f"    --{name}: {doc}" if doc else f"    --{name}")
    n_available = sum(1 for e in entries if e["available"])
    print(f"{len(entries)} registered backend(s), {n_available} available")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments.drivers import EXPERIMENT_REGISTRY

    if args.list or not args.experiment_id:
        for key, fn in EXPERIMENT_REGISTRY.items():
            first_line = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"{key:>4}  {first_line}")
        return 0
    key = args.experiment_id.upper()
    if key not in EXPERIMENT_REGISTRY:
        raise ReproError(
            f"unknown experiment {args.experiment_id!r}; available: "
            f"{', '.join(EXPERIMENT_REGISTRY)}"
        )
    table = EXPERIMENT_REGISTRY[key]()
    if args.csv:
        print(table.to_csv(), end="")
    else:
        print(table.to_ascii(), end="")
    return 0


def _parse_floats(text: str, *, flag: str) -> tuple[float, ...]:
    try:
        values = tuple(float(part) for part in text.split(",") if part.strip())
    except ValueError as exc:
        raise ReproError(f"could not parse {flag} list {text!r}: {exc}") from exc
    if not values:
        raise ReproError(f"the {flag} list is empty")
    return values


def _parse_ints(text: str, *, flag: str) -> tuple[int, ...]:
    try:
        values = tuple(int(part) for part in text.split(",") if part.strip())
    except ValueError as exc:
        raise ReproError(f"could not parse {flag} list {text!r}: {exc}") from exc
    if not values:
        raise ReproError(f"the {flag} list is empty")
    return values


def _grid_kwargs(args: argparse.Namespace) -> dict:
    """Sweep-grid keyword arguments shared by ``sweep`` and ``submit``."""
    return dict(
        graph_classes=tuple(c.strip() for c in args.classes.split(",") if c.strip()),
        sizes=_parse_ints(args.sizes, flag="--sizes"),
        slacks=_parse_floats(args.slacks, flag="--slacks"),
        alphas=_parse_floats(args.alphas, flag="--alphas"),
        model=args.model,
        n_modes=args.n_modes,
        s_max=args.s_max,
        repetitions=args.repetitions,
        seed=args.seed,
    )


def _make_cache(args: argparse.Namespace):
    if getattr(args, "cache_dir", None):
        from repro.cache import disk_cache

        return disk_cache(args.cache_dir)
    return None


def _parse_shard(args: argparse.Namespace):
    """Resolve --shard/--shard-strategy into a ShardSpec (or None)."""
    if not getattr(args, "shard", ""):
        return None
    from repro.batch import ShardSpec

    return ShardSpec.parse(args.shard, strategy=args.shard_strategy)


def _load_priors(args: argparse.Namespace):
    """Fit timing priors from a previous run's dump for --priors-from."""
    if not getattr(args, "priors_from", ""):
        return None
    from repro.batch import load_shard_dump, priors_from_rows
    from repro.utils.tables import Table

    dump = load_shard_dump(args.priors_from)
    dump_model = dump.params.get("model")
    if dump_model and dump_model != args.model:
        print(f"warning: {args.priors_from} was swept with model "
              f"{dump_model!r} but this sweep uses {args.model!r}; the "
              "fitted timing curve may not transfer", file=sys.stderr)
    table = Table(columns=dump.columns, rows=dump.rows)
    priors = priors_from_rows(table, model=args.model)
    if not priors:
        print(f"warning: {args.priors_from} has no usable timing rows; "
              "using the built-in priors", file=sys.stderr)
        return None
    fitted = ", ".join(f"{cls or '<fallback>'}: {c:.3g}*(n/100)^{e:.2f}"
                       for cls, (c, e) in sorted(
                           priors.items(), key=lambda kv: kv[0] or ""))
    print(f"calibrated shard priors from {args.priors_from}: {fitted}",
          file=sys.stderr)
    return priors


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.batch import sweep, sweep_cache_stats, sweep_failures

    cache = _make_cache(args)
    table = sweep(
        **_grid_kwargs(args),
        workers=args.workers or None,
        chunk=args.chunk,
        cache=cache,
        shard=_parse_shard(args),
        priors=_load_priors(args),
    )
    if args.out:
        from repro.batch import write_shard_dump

        path = write_shard_dump(args.out, table)
        print(f"wrote {len(table)} rows (fingerprint "
              f"{table.manifest['fingerprint']}) to {path}", file=sys.stderr)
    if args.csv:
        print(table.to_csv(), end="")
    else:
        print(table.to_ascii(), end="")
    if cache is not None:
        stats = sweep_cache_stats(table)
        print(f"cache: {stats['hits']} hits / {stats['misses']} misses "
              f"(hit rate {stats['hit_rate']:.0%})", file=sys.stderr)
    failures = sweep_failures(table)
    if failures:
        print(f"{len(failures)} of {len(table)} instances failed "
              "(see the error column)", file=sys.stderr)
    return 0


def _reliability_kwargs(args: argparse.Namespace):
    """Resolve --retries / --deadline (with ``REPRO_RETRIES`` /
    ``REPRO_DEADLINE`` environment defaults) into a
    :class:`~repro.reliability.RetryPolicy` and a deadline budget."""
    import os

    from repro.reliability import DEADLINE_ENV, RetryPolicy

    retries = getattr(args, "retries", None)
    try:
        policy = (RetryPolicy.from_env(default_retries=2, maximum=1.0)
                  if retries is None
                  else RetryPolicy(max(0, retries), maximum=1.0))
    except ValueError as exc:
        raise ReproError(str(exc)) from exc
    deadline = getattr(args, "request_deadline", None)
    if deadline is None:
        raw = os.environ.get(DEADLINE_ENV, "").strip()
        if raw:
            try:
                deadline = float(raw)
            except ValueError:
                raise ReproError(
                    f"{DEADLINE_ENV} must be a number of seconds, "
                    f"got {raw!r}") from None
    if deadline is not None and deadline <= 0:
        raise ReproError(f"--deadline must be > 0 seconds, got {deadline}")
    return policy, deadline


def _make_transport(args: argparse.Namespace):
    """Resolve --url / --jobs-dir into the matching client transport."""
    policy, _deadline = _reliability_kwargs(args)
    if getattr(args, "url", ""):
        from repro.api import HTTPTransport

        # --token falls back to REPRO_TOKEN inside the transport
        return HTTPTransport(args.url,
                             token=getattr(args, "token", "") or None,
                             retry_policy=policy)
    from repro.api import DiskTransport

    return DiskTransport(
        args.jobs_dir,
        cache_dir=getattr(args, "cache_dir", "") or None,
        workers=max(1, getattr(args, "workers", 2)),
    )


def _make_client(args: argparse.Namespace):
    """A :class:`repro.api.SolverClient` with the reliability policies.

    The HTTP transport retries at the wire (where transient failures
    happen); the other transports retry at the client layer instead, so
    all three behave uniformly without nesting two retry loops."""
    from repro.api import HTTPTransport, SolverClient

    policy, deadline = _reliability_kwargs(args)
    transport = _make_transport(args)
    retry = None if isinstance(transport, HTTPTransport) else policy
    return SolverClient(transport, retry_policy=retry, deadline=deadline)


def _build_request(args: argparse.Namespace):
    """A :class:`repro.api.SweepRequest` from the grid/shard/name flags."""
    from repro.api import SweepRequest

    priors = _load_priors(args)
    return SweepRequest(
        **_grid_kwargs(args),
        shard=args.shard or None,
        shard_strategy=args.shard_strategy,
        priors=(None if priors is None
                else {cls or "": (c, e) for cls, (c, e) in priors.items()}),
        name=getattr(args, "name", "") or "",
    )


def _print_table(table, args: argparse.Namespace) -> None:
    if args.csv:
        print(table.to_csv(), end="")
    else:
        print(table.to_ascii(), end="")


def _stream_to_table(client, job_id: str, args: argparse.Namespace):
    """Follow a job's progress events, then return its result table.

    The shared tail of ``repro submit`` and ``repro attach``: progress
    lines go to stderr (backoff-paced, never a tight loop), the table
    comes back once the job is terminal.
    """
    for event in client.events(job_id, poll_interval=args.poll_interval):
        print(f"  {event.status}: {event.done}/{event.total} done, "
              f"{event.failed} failed", file=sys.stderr)
    table = client.results(job_id, poll_interval=args.poll_interval)
    record = client.status(job_id)
    summary = (f"{record.job_id}: {record.status} "
               f"({record.done}/{record.total}, {record.failed} failed, "
               f"{record.cache_hits} cache hits)")
    if hasattr(client.transport, "store"):
        summary += f"; record: {client.transport.store.path(record.job_id)}"
    print(summary, file=sys.stderr)
    return table


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.api import DiskTransport

    if getattr(args, "shards", 0):
        return _submit_sharded(args)
    request = _build_request(args)
    client = _make_client(args)
    transport = client.transport
    with client:
        if args.detach:
            if isinstance(transport, DiskTransport):
                # durable record only; whoever attaches first executes it
                record = transport.submit(request, start=False)
            else:
                record = client.submit(request)  # the server executes it
            print(record.job_id)
            print(f"submitted {record.job_id} (detached); follow up with "
                  f"'repro attach {record.job_id}'", file=sys.stderr)
            return 0
        record = client.submit(request)
        print(f"submitted {record.job_id}", file=sys.stderr)
        table = _stream_to_table(client, record.job_id, args)
    _print_table(table, args)
    return 0


def _submit_sharded(args: argparse.Namespace) -> int:
    """``repro submit --shards N``: park N shard jobs + their merge job.

    Records land ``pending`` in the on-disk job store for a fleet of
    ``repro work`` processes to drain; nothing is executed here.  The
    merge job's id is printed on stdout (it is the one whose results are
    the full merged grid).
    """
    from repro.api import JobStore
    from repro.fleet import submit_sharded

    if args.url:
        raise ReproError(
            "--shards parks records directly in a job store; point "
            "--jobs-dir at the store the fleet shares (the server's "
            "--jobs-dir) instead of --url"
        )
    if args.shard:
        raise ReproError("--shards partitions the grid itself; drop --shard")
    if args.detach:
        print("note: --shards always detaches; records are executed by "
              "'repro work' processes", file=sys.stderr)
    request = _build_request(args)
    store = JobStore(args.jobs_dir)
    shard_records, merge_record = submit_sharded(store, request, args.shards)
    print(merge_record["job_id"])
    print(f"parked {len(shard_records)} shard job(s) + 1 merge job "
          f"(fingerprint {merge_record.get('grid_fingerprint')}) under "
          f"{store.directory}; drain with 'repro work --jobs-dir "
          f"{args.jobs_dir}', then 'repro results "
          f"{merge_record['job_id']}'", file=sys.stderr)
    return 0


def _cmd_work(args: argparse.Namespace) -> int:
    """``repro work``: one fleet worker draining the shared job store."""
    from repro.fleet import FleetWorker, WorkerCrashLoopError

    try:
        worker = FleetWorker(
            args.jobs_dir,
            cache_dir=args.cache_dir or None,
            workers=max(1, args.workers),
            worker_id=args.worker_id or None,
            lease_seconds=args.lease if args.lease > 0 else None,
            heartbeat_seconds=(args.heartbeat if args.heartbeat > 0 else None),
            drain=args.drain if args.drain > 0 else None,
            max_strikes=args.max_strikes,
        )
    except ValueError as exc:  # bad timing pairings, bad --drain
        raise ReproError(str(exc)) from exc
    worker.install_signal_handlers()
    print(f"worker {worker.worker_id} draining {worker.store.directory} "
          f"(lease {worker.transport.lease_seconds}s, heartbeat "
          f"{worker.transport.heartbeat_seconds}s"
          + (f", exits after {args.drain}s idle" if args.drain > 0 else "")
          + ")", file=sys.stderr)
    try:
        summary = worker.run()
    except WorkerCrashLoopError as exc:
        # the claim loop struck out against a broken store: report and
        # exit non-zero so a supervisor sees the failure instead of a
        # clean drain
        print(json.dumps(worker.summary()))
        print(f"error: {exc}", file=sys.stderr)
        return 3
    print(json.dumps(summary))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.server import serve

    return serve(host=args.host, port=args.port, jobs_dir=args.jobs_dir,
                 cache_dir=args.cache_dir or None,
                 workers=max(1, args.workers), verbose=args.verbose,
                 token=args.token or None,
                 batch_window_ms=max(0.0, args.batch_window_ms),
                 batch_max=max(1, args.batch_max),
                 max_inflight=max(1, args.max_inflight),
                 max_queue=max(0, args.max_queue))


def _cmd_status(args: argparse.Namespace) -> int:
    with _make_client(args) as client:
        record = client.status(args.job_id)
    if args.json:
        print(json.dumps(record.to_wire(), indent=2, default=repr))
        return 0
    print(f"{record.job_id}: {record.status} "
          f"({record.done}/{record.total} done, {record.failed} failed, "
          f"{record.cache_hits} cache hits)"
          + (f" [{record.error}]" if record.error else ""))
    return 0


def _cmd_results(args: argparse.Namespace) -> int:
    with _make_client(args) as client:
        table = client.results(args.job_id, timeout=args.timeout,
                               poll_interval=args.poll_interval)
    _print_table(table, args)
    return 0


def _cmd_cancel(args: argparse.Namespace) -> int:
    with _make_client(args) as client:
        record = client.cancel(args.job_id)
    print(f"{record.job_id}: {record.status} "
          f"({record.done}/{record.total} done)", file=sys.stderr)
    return 0


def _cmd_attach(args: argparse.Namespace) -> int:
    with _make_client(args) as client:
        record = client.attach(args.job_id)
        print(f"attached to {record.job_id} ({record.status})",
              file=sys.stderr)
        table = _stream_to_table(client, record.job_id, args)
    _print_table(table, args)
    return 0


def _cmd_merge(args: argparse.Namespace) -> int:
    from repro.batch import (
        load_shard_dump,
        merge_report,
        merge_shard_dumps,
        write_shard_dump,
    )

    dumps = [load_shard_dump(path) for path in args.dumps]
    table = merge_shard_dumps(dumps)
    if args.out:
        path = write_shard_dump(args.out, table)
        print(f"wrote merged table to {path}", file=sys.stderr)
    if args.csv:
        print(table.to_csv(), end="")
    else:
        print(table.to_ascii(), end="")
    report = merge_report(dumps, table)
    per_shard = ", ".join(f"{spelling}: {n} rows"
                          for spelling, n in report["shard_rows"].items())
    print(f"merged {report['n_shards']} shard dump(s) -> "
          f"{report['total_rows']} rows, fingerprint "
          f"{report['fingerprint']} ({per_shard})", file=sys.stderr)
    return 0


def _cmd_jobs_prune(args: argparse.Namespace) -> int:
    """``repro jobs --prune``: GC terminal records by age and status."""
    from repro.api import JobStore
    from repro.fleet import parse_duration, prune_records

    if args.url:
        raise ReproError(
            "--prune works on a local job store; run it on the machine "
            "holding --jobs-dir (pruning is an operator action, not a "
            "wire verb)"
        )
    statuses = tuple(s.strip() for s in args.prune_status.split(",")
                     if s.strip())
    try:
        older_than = (parse_duration(args.older_than)
                      if args.older_than else None)
        pruned = prune_records(JobStore(args.jobs_dir),
                               older_than=older_than, statuses=statuses,
                               dry_run=args.dry_run)
    except ValueError as exc:
        raise ReproError(str(exc)) from exc
    verb = "would prune" if args.dry_run else "pruned"
    for entry in pruned:
        age = entry["age_seconds"]
        age_text = "age unknown" if age is None else f"{age:.0f}s old"
        print(f"{verb} {entry['job_id']} ({entry['status']}, {age_text})",
              file=sys.stderr)
    print(f"{verb} {len(pruned)} record(s) under {args.jobs_dir}")
    return 0


def _cmd_jobs(args: argparse.Namespace) -> int:
    if args.prune or args.dry_run:
        return _cmd_jobs_prune(args)
    skipped: list[tuple[str, str]] = []
    if args.url:
        # scan_jobs carries the server-side skip list, so --strict audits
        # a remote job store exactly like a local one
        with _make_client(args) as client:
            listed, skipped = client.scan_jobs()
        records = [r.to_wire() for r in listed]
        for name, reason in skipped:
            print(f"warning: skipping job record {name}: {reason}",
                  file=sys.stderr)
        source = args.url
    else:
        jobs_dir = pathlib.Path(args.jobs_dir)
        source = str(jobs_dir)
        records = []
        if jobs_dir.is_dir():
            from repro.api import JobStore

            # a truncated/corrupt/newer-versioned record must not take the
            # whole listing down: it is skipped with a warning, counted in
            # the footer, and turned into a non-zero exit under --strict
            records, skipped = JobStore(jobs_dir).scan()
            for name, reason in skipped:
                print(f"warning: skipping job record {name}: {reason}",
                      file=sys.stderr)
    if not records and not skipped:
        print(f"no job records under {source}")
        return 0

    if records:
        print(f"{'job_id':<28} {'status':<10} {'done':>6} {'failed':>6} "
              f"{'hits':>5}  name")
        for record in records:
            done = f"{record.get('done', '?')}/{record.get('total', '?')}"
            print(f"{str(record.get('job_id', '?')):<28} "
                  f"{str(record.get('status', '?')):<10} {done:>6} "
                  f"{str(record.get('failed') or 0):>6} "
                  f"{str(record.get('cache_hits') or 0):>5}  "
                  f"{record.get('name') or ''}")
    print(f"{len(records)} job record(s), {len(skipped)} skipped")
    if args.strict and skipped:
        print(f"error: --strict and {len(skipped)} unreadable job record(s) "
              f"under {source}", file=sys.stderr)
        return 1
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.runner import run_cli

    return run_cli(args)


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reclaiming the energy of a schedule: models and algorithms "
                    "(SPAA'11 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    solve_parser = sub.add_parser("solve", help="solve a MinEnergy(G, D) instance from JSON")
    solve_parser.add_argument("graph", help="path to a JSON task graph (see repro.graphs.io)")
    solve_parser.add_argument("--model", choices=("continuous", "discrete", "vdd", "incremental"),
                              default="continuous")
    solve_parser.add_argument("--modes", default="",
                              help="comma-separated mode speeds for the mode-based models")
    solve_parser.add_argument("--s-max", type=float, default=1.0,
                              help="maximum speed of the continuous model (default 1.0)")
    solve_parser.add_argument("--deadline", type=float, default=None,
                              help="absolute deadline D (overrides --slack)")
    solve_parser.add_argument("--slack", type=float, default=1.5,
                              help="deadline as a multiple of the minimum makespan (default 1.5)")
    solve_parser.add_argument("--exact", action="store_true",
                              help="force exact resolution for the NP-complete models")
    solve_parser.add_argument("--method", default="",
                              help="registered solver method (e.g. gp-slsqp, lp, "
                                   "heuristic); default: the model's default backend")
    solve_parser.add_argument("--backend", default="",
                              help="modeling-layer LP/convex backend for methods "
                                   "that accept one (see 'repro backends'); an "
                                   "unknown name fails with the available set")
    solve_parser.add_argument("--url", default="",
                              help="solve on a remote 'repro serve' backend "
                                   "(POST /v1/solve) instead of in-process")
    solve_parser.add_argument("--token", default="",
                              help="bearer token for --url (default: the "
                                   "REPRO_TOKEN environment variable)")
    solve_parser.add_argument("--retries", type=int, default=None,
                              help="transient-failure retry attempts "
                                   "(default: the REPRO_RETRIES environment "
                                   "variable, or 2)")
    solve_parser.add_argument("--request-deadline", dest="request_deadline",
                              type=float, default=None,
                              help="end-to-end request deadline budget in "
                                   "seconds (--deadline is the problem's D), "
                                   "propagated via X-Repro-Deadline "
                                   "(default: the REPRO_DEADLINE environment "
                                   "variable, or none)")
    solve_parser.set_defaults(handler=_cmd_solve)

    backends_parser = sub.add_parser(
        "backends", help="list the registered LP/convex modeling backends, "
                         "their availability and options")
    backends_parser.add_argument("--json", action="store_true",
                                 help="emit the registry description as JSON")
    backends_parser.set_defaults(handler=_cmd_backends)

    exp_parser = sub.add_parser("experiment", help="regenerate an experiment table (E1-E10)")
    exp_parser.add_argument("experiment_id", nargs="?", default="",
                            help="experiment id, e.g. E6")
    exp_parser.add_argument("--list", action="store_true", help="list available experiments")
    exp_parser.add_argument("--csv", action="store_true", help="emit CSV instead of ASCII")
    exp_parser.set_defaults(handler=_cmd_experiment)

    def add_grid_arguments(p: argparse.ArgumentParser) -> None:
        p.add_argument("--classes", default="chain,tree,layered",
                       help="comma-separated graph classes (default chain,tree,layered)")
        p.add_argument("--sizes", default="32",
                       help="comma-separated task counts (default 32)")
        p.add_argument("--slacks", default="1.5",
                       help="comma-separated deadline slack factors (default 1.5)")
        p.add_argument("--alphas", default="3.0",
                       help="comma-separated power-law exponents (default 3.0)")
        p.add_argument("--model", choices=("continuous", "discrete", "vdd", "incremental"),
                       default="continuous")
        p.add_argument("--n-modes", type=int, default=5,
                       help="mode count for the mode-based models (default 5)")
        p.add_argument("--s-max", type=float, default=1.0,
                       help="continuous speed cap; pass inf for the uncapped "
                            "Theorem-2 regime (default 1.0)")
        p.add_argument("--repetitions", type=int, default=1,
                       help="random repetitions per grid cell (default 1)")
        p.add_argument("--seed", type=int, default=0, help="base seed (default 0)")
        p.add_argument("--cache-dir", default="",
                       help="directory of an on-disk result cache; repeated "
                            "runs are served from it (hit rate on stderr), "
                            "and shard legs sharing it reuse each other's "
                            "warm results")
        p.add_argument("--shard", default="",
                       help="solve only shard I/N of the grid (1-based, e.g. "
                            "1/3); every leg derives the same deterministic "
                            "partition from the base seed")
        p.add_argument("--shard-strategy", default="cost-weighted",
                       choices=("cost-weighted", "round-robin"),
                       help="grid partitioning strategy (default "
                            "cost-weighted: timing-prior-balanced shards)")
        p.add_argument("--priors-from", default="",
                       help="calibrate the cost-weighted partitioner from "
                            "the measured seconds of a previous run's dump "
                            "(a 'repro sweep --out' JSON); every shard leg "
                            "must pass the same dump")
        p.add_argument("--csv", action="store_true", help="emit CSV instead of ASCII")

    sweep_parser = sub.add_parser(
        "sweep", help="run a batch sweep over graph-class/size/deadline/alpha grids")
    add_grid_arguments(sweep_parser)
    sweep_parser.add_argument("--workers", type=int, default=0,
                              help="worker processes; 0 or 1 solves serially (default 0)")
    sweep_parser.add_argument("--chunk", type=int, default=1,
                              help="instances per worker dispatch (default 1)")
    sweep_parser.add_argument("--out", default="",
                              help="also write the rows as a fingerprinted "
                                   "JSON shard dump for 'repro merge'")
    sweep_parser.set_defaults(handler=_cmd_sweep)

    merge_parser = sub.add_parser(
        "merge", help="merge per-shard sweep dumps back into the full-grid "
                      "table (fails on gaps, overlaps or fingerprint "
                      "mismatches)")
    merge_parser.add_argument("dumps", nargs="+",
                              help="shard dump files written by "
                                   "'repro sweep --shard I/N --out ...'")
    merge_parser.add_argument("--out", default="",
                              help="write the merged table as a JSON dump")
    merge_parser.add_argument("--csv", action="store_true",
                              help="emit CSV instead of ASCII")
    merge_parser.set_defaults(handler=_cmd_merge)

    def add_transport_arguments(p: argparse.ArgumentParser) -> None:
        p.add_argument("--url", default="",
                       help="base URL of a 'repro serve' backend; when "
                            "omitted the verb works against the on-disk "
                            "job store of --jobs-dir")
        p.add_argument("--jobs-dir", default=".repro-jobs",
                       help="directory of the durable job store "
                            "(default .repro-jobs)")
        p.add_argument("--token", default="",
                       help="bearer token for a --token'd server "
                            "(default: the REPRO_TOKEN environment "
                            "variable)")
        add_reliability_arguments(p)

    def add_reliability_arguments(p: argparse.ArgumentParser,
                                  deadline_flag: str = "--deadline") -> None:
        p.add_argument("--retries", type=int, default=None,
                       help="transient-failure retry attempts per request; "
                            "non-idempotent calls only retry failures that "
                            "provably never executed (default: the "
                            "REPRO_RETRIES environment variable, or 2)")
        p.add_argument(deadline_flag, dest="request_deadline",
                       type=float, default=None,
                       help="end-to-end deadline budget in seconds for each "
                            "client call, propagated to the server in the "
                            "X-Repro-Deadline header (default: the "
                            "REPRO_DEADLINE environment variable, or none)")

    def add_poll_argument(p: argparse.ArgumentParser) -> None:
        p.add_argument("--poll-interval", "--poll", dest="poll_interval",
                       type=float, default=0.2,
                       help="initial progress poll interval in seconds; "
                            "every polling path backs off exponentially "
                            "from it instead of looping tightly "
                            "(default 0.2)")

    submit_parser = sub.add_parser(
        "submit", help="submit a sweep grid as a job (to the on-disk job "
                       "store, or to a 'repro serve' backend with --url)")
    add_grid_arguments(submit_parser)
    add_transport_arguments(submit_parser)
    add_poll_argument(submit_parser)
    submit_parser.add_argument("--workers", type=int, default=2,
                               help="job worker processes (default 2)")
    submit_parser.add_argument("--name", default="", help="job display name")
    submit_parser.add_argument("--detach", action="store_true",
                               help="print the job id and return without "
                                    "waiting; follow up with 'repro attach'")
    submit_parser.add_argument("--shards", type=int, default=0,
                               help="park N detached shard jobs of this grid "
                                    "plus a dependent merge job in the job "
                                    "store for a 'repro work' fleet to "
                                    "drain (prints the merge job id)")
    submit_parser.set_defaults(handler=_cmd_submit)

    work_parser = sub.add_parser(
        "work", help="run a fleet worker: claim pending jobs from the "
                     "shared job store with a lease, execute them, repeat")
    work_parser.add_argument("--jobs-dir", default=".repro-jobs",
                             help="shared job store directory "
                                  "(default .repro-jobs)")
    work_parser.add_argument("--cache-dir", default="",
                             help="shared result cache (default: "
                                  "<jobs-dir>/cache; sharing it across the "
                                  "fleet makes reclaimed re-runs warm)")
    work_parser.add_argument("--workers", type=int, default=2,
                             help="solver processes per claimed job "
                                  "(default 2)")
    work_parser.add_argument("--worker-id", default="",
                             help="stable worker identity stamped on "
                                  "claimed records (default: host-pid)")
    work_parser.add_argument("--lease", type=float, default=0.0,
                             help="claim lease in seconds; must exceed the "
                                  "heartbeat interval (default: "
                                  "REPRO_LEASE_SECONDS or the stale-runner "
                                  "threshold)")
    work_parser.add_argument("--heartbeat", type=float, default=0.0,
                             help="lease-renewal heartbeat in seconds "
                                  "(default: REPRO_HEARTBEAT_SECONDS or 2)")
    work_parser.add_argument("--drain", type=float, default=0.0,
                             help="exit once nothing has been claimable for "
                                  "this many seconds (default: run forever)")
    work_parser.add_argument("--max-strikes", type=int, default=5,
                             help="give up (exit non-zero) after this many "
                                  "consecutive claim-loop failures; between "
                                  "strikes the loop backs off exponentially "
                                  "instead of crash-looping (default 5)")
    work_parser.set_defaults(handler=_cmd_work)

    serve_parser = sub.add_parser(
        "serve", help="run the HTTP solver service (submit/status/results/"
                      "cancel + streaming progress, durable job records)")
    serve_parser.add_argument("--host", default="127.0.0.1",
                              help="bind address (default 127.0.0.1)")
    serve_parser.add_argument("--port", type=int, default=8731,
                              help="bind port (default 8731)")
    serve_parser.add_argument("--jobs-dir", default=".repro-jobs",
                              help="durable job store directory "
                                   "(default .repro-jobs)")
    serve_parser.add_argument("--cache-dir", default="",
                              help="on-disk result cache (default: "
                                   "<jobs-dir>/cache)")
    serve_parser.add_argument("--workers", type=int, default=2,
                              help="worker processes per job (default 2)")
    serve_parser.add_argument("--verbose", action="store_true",
                              help="log requests to stderr")
    serve_parser.add_argument("--token", default="",
                              help="require 'Authorization: Bearer <token>' "
                                   "on every route except /v1/healthz "
                                   "(default: the REPRO_TOKEN environment "
                                   "variable; empty = open server)")
    serve_parser.add_argument("--batch-window-ms", type=float, default=2.0,
                              help="coalescing window of the /v1/solve "
                                   "micro-batcher in milliseconds (default 2; "
                                   "0 = drain-only, minimal added latency)")
    serve_parser.add_argument("--batch-max", type=int, default=512,
                              help="execute a batch tick as soon as this many "
                                   "solves are queued (default 512)")
    serve_parser.add_argument("--max-inflight", type=int, default=8,
                              help="work requests executing concurrently "
                                   "before admission queueing starts "
                                   "(default 8)")
    serve_parser.add_argument("--max-queue", type=int, default=32,
                              help="admission-queue depth; beyond it requests "
                                   "are shed with 503 + Retry-After "
                                   "(default 32)")
    serve_parser.set_defaults(handler=_cmd_serve)

    status_parser = sub.add_parser(
        "status", help="show one job's lifecycle status and progress")
    status_parser.add_argument("job_id", help="job id (from 'repro submit')")
    add_transport_arguments(status_parser)
    status_parser.add_argument("--json", action="store_true",
                               help="emit the full job record as JSON")
    status_parser.set_defaults(handler=_cmd_status)

    results_parser = sub.add_parser(
        "results", help="wait for a job and print its result table")
    results_parser.add_argument("job_id", help="job id (from 'repro submit')")
    add_transport_arguments(results_parser)
    add_poll_argument(results_parser)
    results_parser.add_argument("--timeout", type=float, default=None,
                                help="give up after this many seconds "
                                     "(default: wait indefinitely)")
    results_parser.add_argument("--csv", action="store_true",
                                help="emit CSV instead of ASCII")
    results_parser.set_defaults(handler=_cmd_results)

    cancel_parser = sub.add_parser(
        "cancel", help="cancel a job's not-yet-started instances")
    cancel_parser.add_argument("job_id", help="job id (from 'repro submit')")
    add_transport_arguments(cancel_parser)
    cancel_parser.set_defaults(handler=_cmd_cancel)

    attach_parser = sub.add_parser(
        "attach", help="re-attach to a job by id: resume it if orphaned, "
                       "stream progress, print the results")
    attach_parser.add_argument("job_id", help="job id (from 'repro submit')")
    add_transport_arguments(attach_parser)
    add_poll_argument(attach_parser)
    attach_parser.add_argument("--workers", type=int, default=2,
                               help="worker processes if this attach resumes "
                                    "the job (default 2)")
    attach_parser.add_argument("--cache-dir", default="",
                               help="result cache a resumed job reuses "
                                    "(default: <jobs-dir>/cache)")
    attach_parser.add_argument("--csv", action="store_true",
                               help="emit CSV instead of ASCII")
    attach_parser.set_defaults(handler=_cmd_attach)

    jobs_parser = sub.add_parser(
        "jobs", help="list the job records of a job store or server")
    add_transport_arguments(jobs_parser)
    jobs_parser.add_argument("--strict", action="store_true",
                             help="exit non-zero when any record is "
                                  "unreadable instead of only warning")
    jobs_parser.add_argument("--prune", action="store_true",
                             help="garbage-collect terminal records instead "
                                  "of listing (see --older-than / "
                                  "--prune-status)")
    jobs_parser.add_argument("--older-than", default="",
                             help="with --prune: only records that finished "
                                  "at least this long ago (e.g. 90s, 15m, "
                                  "2h, 7d; default: any age)")
    jobs_parser.add_argument("--prune-status", default="done,cancelled,failed",
                             help="with --prune: comma-separated terminal "
                                  "statuses to collect (default all three; "
                                  "pending/running are never pruned)")
    jobs_parser.add_argument("--dry-run", action="store_true",
                             help="with --prune: list what would be deleted "
                                  "without deleting")
    jobs_parser.set_defaults(handler=_cmd_jobs)

    lint_parser = sub.add_parser(
        "lint", help="run the AST invariant checker over the repro package")
    from repro.analysis.runner import add_lint_arguments

    add_lint_arguments(lint_parser)
    lint_parser.set_defaults(handler=_cmd_lint)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except TimeoutError as exc:
        # results/attach polling deadlines (builtin TimeoutError, not a
        # ReproError) must exit like any other CLI failure, not traceback
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
