"""Dispatching solver for the Vdd-Hopping model."""

from __future__ import annotations

from repro.core.problem import MinEnergyProblem
from repro.core.registry import REGISTRY, OptionSpec
from repro.core.solution import Solution
from repro.modeling import BACKENDS
from repro.utils.errors import InvalidModelError
from repro.vdd.lp import solve_vdd_lp
from repro.vdd.mixing import solve_vdd_mixing


def solve_vdd_hopping(problem: MinEnergyProblem, *, method: str = "lp",
                      backend: str = "highs") -> Solution:
    """Solve a Vdd-Hopping instance.

    Parameters
    ----------
    problem:
        The instance; its model must be a :class:`VddHoppingModel`.
    method:
        ``"lp"`` (optimal, Theorem 3; the default) or ``"mixing"`` (the fast
        two-adjacent-mode heuristic built on the Continuous optimum).
    backend:
        LP backend when ``method="lp"``: any name registered on
        :data:`repro.modeling.BACKENDS` (``"highs"``, ``"simplex"``, or an
        installed optional backend).
    """
    if method == "lp":
        return solve_vdd_lp(problem, backend=backend)
    if method == "mixing":
        return solve_vdd_mixing(problem)
    raise InvalidModelError(f"unknown Vdd-Hopping method {method!r} (use 'lp' or 'mixing')")


# --------------------------------------------------------------------------- #
# registered backends (repro.solve resolves these through the SolverRegistry)
# --------------------------------------------------------------------------- #
REGISTRY.register(
    "vdd-hopping", "lp", default=True,
    options=(
        # no declared choices: the modeling-layer BackendRegistry resolves
        # the name itself and raises a typed UnknownBackendError listing
        # the registered set (which grows with optional installs)
        OptionSpec("backend", (str,), default="highs",
                   doc="LP backend registered on repro.modeling.BACKENDS"),
    ),
    doc="Optimal Vdd-Hopping via the Theorem 3 linear program.",
)(solve_vdd_lp)

REGISTRY.register(
    "vdd-hopping", "mixing",
    doc="Two-adjacent-mode mixing built on the Continuous optimum.",
)(solve_vdd_mixing)

BACKENDS.announce_route("lp", "vdd-hopping/lp")
