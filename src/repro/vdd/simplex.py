"""A self-contained dense simplex solver for small linear programs.

The Vdd-Hopping LP (Theorem 3) is solved by SciPy's HiGHS backend in
production runs, but the library also ships its own solver so that the
reproduction does not depend on a black box for its central polynomial-time
result: the two backends are cross-checked in the test suite.

The implementation is a standard two-phase primal simplex on the tableau in
standard equality form::

    minimise    c @ x
    subject to  A_eq @ x == b_eq,   x >= 0

Inequalities ``A_ub @ x <= b_ub`` are converted by adding slack variables.
Phase one minimises the sum of artificial variables to find a basic feasible
solution; phase two optimises the real objective.  Bland's rule is used for
pivot selection, which guarantees termination (no cycling) at the cost of
speed — acceptable for the instance sizes the cross-checks use.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.errors import SolverError

_EPS = 1e-9


@dataclass
class SimplexResult:
    """Result of a simplex run.

    Attributes
    ----------
    x:
        Optimal primal point (in the caller's original variable order).
    objective:
        Optimal objective value.
    iterations:
        Total pivot count over both phases.
    status:
        ``"optimal"``, ``"infeasible"`` or ``"unbounded"``.
    """

    x: np.ndarray
    objective: float
    iterations: int
    status: str


def solve_lp_simplex(
    c: np.ndarray,
    a_ub: np.ndarray | None = None,
    b_ub: np.ndarray | None = None,
    a_eq: np.ndarray | None = None,
    b_eq: np.ndarray | None = None,
    *,
    max_iterations: int = 20000,
) -> SimplexResult:
    """Minimise ``c @ x`` subject to ``A_ub x <= b_ub``, ``A_eq x == b_eq``, ``x >= 0``.

    Raises
    ------
    SolverError
        If the LP is infeasible, unbounded, or the iteration cap is hit.
    """
    c = np.asarray(c, dtype=float)
    n = c.size
    rows: list[np.ndarray] = []
    rhs: list[float] = []
    n_slack = 0
    if a_ub is not None:
        a_ub = np.asarray(a_ub, dtype=float)
        b_ub = np.asarray(b_ub, dtype=float)
        if a_ub.shape[1] != n:
            raise SolverError("A_ub column count does not match c")
        n_slack = a_ub.shape[0]
    if a_eq is not None:
        a_eq = np.asarray(a_eq, dtype=float)
        b_eq = np.asarray(b_eq, dtype=float)
        if a_eq.shape[1] != n:
            raise SolverError("A_eq column count does not match c")

    # Build the standard-form matrix [A | slack] x = b with b >= 0.
    blocks: list[np.ndarray] = []
    if a_ub is not None:
        ub_block = np.hstack([a_ub, np.eye(n_slack)])
        blocks.append(ub_block)
        rhs.extend(b_ub.tolist())
    if a_eq is not None:
        eq_block = np.hstack([a_eq, np.zeros((a_eq.shape[0], n_slack))])
        blocks.append(eq_block)
        rhs.extend(b_eq.tolist())
    if not blocks:
        # unconstrained besides x >= 0: optimum is x = 0 unless c has negative entries
        if np.any(c < -_EPS):
            raise SolverError("LP is unbounded (no constraints, negative cost)")
        return SimplexResult(x=np.zeros(n), objective=0.0, iterations=0, status="optimal")

    a_full = np.vstack(blocks)
    b_full = np.asarray(rhs, dtype=float)
    # normalise rows so b >= 0
    neg = b_full < 0
    a_full[neg] *= -1.0
    b_full[neg] *= -1.0

    m, total_vars = a_full.shape
    cost_full = np.concatenate([c, np.zeros(total_vars - n)])

    # --- phase one: add artificial variables and minimise their sum -------
    tableau = np.hstack([a_full, np.eye(m), b_full.reshape(-1, 1)])
    basis = list(range(total_vars, total_vars + m))
    phase1_cost = np.concatenate([np.zeros(total_vars), np.ones(m), [0.0]])

    iterations = 0
    iterations += _run_simplex(tableau, basis, phase1_cost, max_iterations)
    infeasibility = sum(tableau[i, -1] for i, b in enumerate(basis) if b >= total_vars)
    if infeasibility > 1e-7:
        return SimplexResult(x=np.zeros(n), objective=float("inf"),
                             iterations=iterations, status="infeasible")

    # drive any remaining artificial variables out of the basis
    for i, b in enumerate(basis):
        if b >= total_vars:
            pivot_col = next(
                (j for j in range(total_vars) if abs(tableau[i, j]) > _EPS), None
            )
            if pivot_col is not None:
                _pivot(tableau, i, pivot_col)
                basis[i] = pivot_col

    # rows whose basic variable is still artificial are redundant constraints
    keep_rows = [i for i, b in enumerate(basis) if b < total_vars]
    tableau = tableau[keep_rows]
    basis = [basis[i] for i in keep_rows]

    # --- phase two: drop artificial columns, optimise the real objective --
    tableau = np.hstack([tableau[:, :total_vars], tableau[:, -1:]])
    phase2_cost = np.concatenate([cost_full, [0.0]])
    iterations += _run_simplex(tableau, basis, phase2_cost, max_iterations)

    x_full = np.zeros(total_vars)
    for i, b in enumerate(basis):
        if b < total_vars:
            x_full[b] = tableau[i, -1]
    x = x_full[:n]
    return SimplexResult(x=x, objective=float(c @ x), iterations=iterations,
                         status="optimal")


def _run_simplex(tableau: np.ndarray, basis: list[int], cost: np.ndarray,
                 max_iterations: int) -> int:
    """Run primal simplex pivots in place; return the pivot count."""
    m = tableau.shape[0]
    n_cols = tableau.shape[1] - 1
    iterations = 0
    while True:
        # reduced costs: c_j - c_B @ B^{-1} A_j  (computed from the tableau)
        cb = cost[basis]
        reduced = cost[:n_cols] - cb @ tableau[:, :n_cols]
        # Bland's rule: smallest index with negative reduced cost
        entering = next((j for j in range(n_cols) if reduced[j] < -_EPS), None)
        if entering is None:
            return iterations
        # ratio test
        ratios = []
        for i in range(m):
            if tableau[i, entering] > _EPS:
                ratios.append((tableau[i, -1] / tableau[i, entering], basis[i], i))
        if not ratios:
            raise SolverError("LP is unbounded")
        ratios.sort(key=lambda r: (r[0], r[1]))
        leaving_row = ratios[0][2]
        _pivot(tableau, leaving_row, entering)
        basis[leaving_row] = entering
        iterations += 1
        if iterations > max_iterations:
            raise SolverError(
                f"simplex exceeded the iteration cap ({max_iterations}); "
                "the instance is too large for the educational backend"
            )


def _pivot(tableau: np.ndarray, row: int, col: int) -> None:
    """Gauss-Jordan pivot of the tableau on (row, col)."""
    tableau[row] /= tableau[row, col]
    for i in range(tableau.shape[0]):
        if i != row and abs(tableau[i, col]) > 0:
            tableau[i] -= tableau[i, col] * tableau[row]
