"""Two-adjacent-mode mixing construction for Vdd-Hopping.

The paper's discussion ("the Vdd-Hopping approach mixes two consecutive
modes optimally") suggests the classical construction of Ishihara and
Yasuura: to emulate an ideal speed ``s`` lying between two available modes
``s_low <= s <= s_high`` over a window of length ``d`` with ``w = s * d``
units of work, run

    ``time_high = (w - s_low * d) / (s_high - s_low)``   at ``s_high`` and
    ``time_low  = d - time_high``                         at ``s_low``.

Both times are non-negative and the work and the duration are preserved, so
substituting the mix for the ideal speed keeps the whole schedule feasible.

:func:`solve_vdd_mixing` applies this per task to the Continuous-optimal
solution (with ``s_max`` set to the largest mode).  The result is a feasible
Vdd-Hopping solution and hence an **upper bound** on the LP optimum of
Theorem 3; it is exact whenever the continuous-optimal durations are also
optimal for the piecewise-linear mode-mixing cost (in particular when every
continuous speed coincides with a mode).  The experiment harness reports the
gap between this heuristic and the LP.
"""

from __future__ import annotations

from repro.core.models import ContinuousModel, VddHoppingModel
from repro.core.problem import MinEnergyProblem
from repro.core.solution import HoppingAssignment, Solution, make_solution
from repro.utils.errors import InvalidModelError
from repro.utils.numerics import is_close


def two_mode_mix(work: float, duration: float, s_low: float, s_high: float
                 ) -> list[tuple[float, float]]:
    """Split ``work`` over ``duration`` time units between two modes.

    Returns the list of ``(speed, time)`` segments.  Requires
    ``s_low * duration <= work <= s_high * duration`` (the ideal speed
    ``work / duration`` must lie between the two modes).
    """
    if duration <= 0:
        raise InvalidModelError("duration must be positive")
    ideal = work / duration
    if is_close(s_low, s_high):
        # single admissible mode: run at it for exactly work / s time units
        return [(s_high, work / s_high)]
    if ideal < s_low * (1 - 1e-12) or ideal > s_high * (1 + 1e-12):
        raise InvalidModelError(
            f"ideal speed {ideal:g} is not bracketed by modes [{s_low:g}, {s_high:g}]"
        )
    time_high = (work - s_low * duration) / (s_high - s_low)
    time_high = min(max(time_high, 0.0), duration)
    time_low = duration - time_high
    segments: list[tuple[float, float]] = []
    if time_low > 1e-15:
        segments.append((s_low, time_low))
    if time_high > 1e-15:
        segments.append((s_high, time_high))
    if not segments:
        segments = [(s_high, work / s_high)]
    return segments


def solve_vdd_mixing(problem: MinEnergyProblem) -> Solution:
    """Vdd-Hopping solution built by mixing modes around the Continuous optimum.

    The Continuous relaxation is solved with ``s_max`` equal to the largest
    mode; each task's ideal speed is then emulated by the two bracketing
    modes within the same time window, so precedence and deadline
    feasibility carry over unchanged.
    """
    from repro.continuous.solve import solve_continuous

    model = problem.model
    if not isinstance(model, VddHoppingModel):
        raise InvalidModelError(
            f"solve_vdd_mixing expects a VddHoppingModel, got {model.name}"
        )
    problem.ensure_feasible()
    relaxed = problem.with_model(ContinuousModel(s_max=model.max_speed))
    continuous = solve_continuous(relaxed)

    graph = problem.graph
    segments: dict[str, list[tuple[float, float]]] = {}
    speeds = continuous.speeds()
    for name in graph.task_names():
        work = graph.work(name)
        ideal = speeds[name]
        duration = work / ideal
        if ideal < model.min_speed:
            # the slowest mode is already faster than needed: run at the
            # slowest mode (shorter duration, still feasible) — this is the
            # only regime where mixing cannot emulate the ideal speed.
            segments[name] = [(model.min_speed, work / model.min_speed)]
            continue
        s_low, s_high = model.bracketing_modes(ideal)
        segments[name] = two_mode_mix(work, duration, s_low, s_high)

    assignment = HoppingAssignment(segments=segments)
    return make_solution(
        problem, assignment, solver="vdd-two-mode-mixing", optimal=False,
        lower_bound=continuous.energy,
        metadata={"continuous_solver": continuous.solver},
    )
