"""Solvers for the Vdd-Hopping energy model (Theorem 3).

Under Vdd-Hopping a task may split its execution across several modes, so
``MinEnergy(G, D)`` becomes a linear program: the decision variables are the
time each task spends in each mode plus the task completion times, all
constraints (work completion, precedence, deadline) are linear, and the
objective ``sum_k P(s_k) * time_{i,k}`` is linear as well.

Modules:

* :mod:`repro.vdd.lp` — the LP formulation, solved either by SciPy's HiGHS
  backend or by the library's own dense simplex;
* :mod:`repro.vdd.simplex` — a self-contained Big-M dense simplex solver
  (no external dependency), used as an alternative backend and as a
  cross-check in tests;
* :mod:`repro.vdd.mixing` — the fast two-adjacent-mode construction: keep
  the Continuous-optimal durations and emulate each ideal speed by mixing
  the two bracketing modes (an upper bound on the LP optimum, exact when
  the continuous speeds are themselves modes).
"""

from repro.vdd.lp import solve_vdd_lp, build_vdd_lp
from repro.vdd.mixing import solve_vdd_mixing, two_mode_mix
from repro.vdd.simplex import SimplexResult, solve_lp_simplex
from repro.vdd.solve import solve_vdd_hopping

__all__ = [
    "solve_vdd_lp",
    "build_vdd_lp",
    "solve_vdd_mixing",
    "two_mode_mix",
    "SimplexResult",
    "solve_lp_simplex",
    "solve_vdd_hopping",
]
