"""Linear-programming solver for the Vdd-Hopping model (Theorem 3).

Decision variables
    ``time[i, k]`` — time task ``T_i`` spends running at mode ``s_k``;
    ``t[i]``       — completion time of ``T_i``.

Linear program
    minimise    sum_{i,k} P(s_k) * time[i, k]
    subject to  sum_k s_k * time[i, k] == w_i                (work completion)
                t[v] >= t[u] + sum_k time[v, k]              for every edge (u, v)
                t[i] >= sum_k time[i, k]                     (start times >= 0)
                0 <= t[i] <= D,   time[i, k] >= 0

The LP has ``n * m + n`` variables and ``n + |E| + n`` constraints, so it is
solved in polynomial time — this is exactly the argument of Theorem 3.

The program is *declared* through :mod:`repro.modeling` — two named
variable blocks, the work-completion equalities, and the shared precedence
polytope via :func:`repro.modeling.declare_precedence` — and materialises
to sparse CSR exactly once.  No dense row buffers, no hand-rolled COO: a
10,000-task instance costs megabytes instead of the ~GBs its dense
equivalent would (each precedence row holds ``m + 2`` non-zeros out of
``n * m + n`` columns).  :meth:`VddLP.constraint_memory` reports the
actual sparse footprint next to the dense equivalent.

Any LP backend registered on :data:`repro.modeling.BACKENDS` can consume
the result: SciPy's HiGHS (default, sparse-native), the library's own
educational dense simplex (size-guarded), or the optional cvxpy-family
backends when installed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro.core.models import VddHoppingModel
from repro.core.problem import MinEnergyProblem
from repro.core.solution import HoppingAssignment, Solution, make_solution
from repro.modeling import BACKENDS, LinearModel, SIMPLEX_MAX_VARIABLES, declare_precedence
from repro.utils.errors import InvalidModelError

__all__ = ["SIMPLEX_MAX_VARIABLES", "VddLP", "build_vdd_lp", "solve_vdd_lp"]


@dataclass
class VddLP:
    """The assembled LP in matrix form, plus the variable index maps.

    ``a_ub`` and ``a_eq`` are ``scipy.sparse`` CSR matrices; use
    ``.toarray()`` for a dense view on small instances.  ``model`` is the
    underlying :class:`repro.modeling.LinearModel` declaration — hand it to
    :data:`repro.modeling.BACKENDS` to solve with any registered backend.
    """

    c: np.ndarray
    a_ub: sparse.csr_matrix
    b_ub: np.ndarray
    a_eq: sparse.csr_matrix
    b_eq: np.ndarray
    bounds: list[tuple[float, float | None]]
    task_names: list[str]
    modes: tuple[float, ...]
    model: LinearModel

    @property
    def n_tasks(self) -> int:
        return len(self.task_names)

    @property
    def n_modes(self) -> int:
        return len(self.modes)

    def time_index(self, task_idx: int, mode_idx: int) -> int:
        """Column of the ``time[task, mode]`` variable."""
        return task_idx * self.n_modes + mode_idx

    def completion_index(self, task_idx: int) -> int:
        """Column of the ``t[task]`` variable."""
        return self.n_tasks * self.n_modes + task_idx

    def constraint_memory(self) -> dict[str, int]:
        """Actual sparse constraint-matrix bytes vs the dense equivalent."""
        sparse_bytes = 0
        dense_bytes = 0
        for mat in (self.a_ub, self.a_eq):
            sparse_bytes += mat.data.nbytes + mat.indices.nbytes + mat.indptr.nbytes
            dense_bytes += mat.shape[0] * mat.shape[1] * 8
        return {"sparse_bytes": int(sparse_bytes),
                "dense_equivalent_bytes": int(dense_bytes)}


def declare_vdd_lp(problem: MinEnergyProblem) -> LinearModel:
    """Declare the Vdd-Hopping LP as a :class:`repro.modeling.LinearModel`."""
    model = problem.model
    if not isinstance(model, VddHoppingModel):
        raise InvalidModelError(
            f"build_vdd_lp expects a VddHoppingModel, got {model.name}"
        )
    graph = problem.graph
    idx = graph.index()
    n = idx.n_tasks
    modes_arr = np.asarray(model.modes, dtype=float)
    m = len(model.modes)

    lm = LinearModel(name="vdd-hopping-lp")
    time = lm.add_variables("time", n * m, lower=0.0)
    completion = lm.add_variables("completion", n, lower=0.0,
                                  upper=problem.deadline)
    lm.add_objective(time, np.tile(
        np.array([problem.power.power(s) for s in model.modes]), n))

    # equality: work completion — row i holds the mode speeds over the
    # time[i, :] block
    lm.add_constraints(
        "work", sense="eq", rhs=idx.works.astype(float),
        terms=[(time,
                np.repeat(np.arange(n, dtype=np.int64), m),
                np.arange(n * m, dtype=np.int64),
                np.tile(modes_arr, n))])

    # the shared precedence polytope: task i's duration is the sum of its
    # per-mode time variables
    declare_precedence(
        lm, completion=completion, duration_block=time,
        duration_cols=np.arange(n * m, dtype=np.int64).reshape(n, m),
        edge_src=idx.edge_src, edge_dst=idx.edge_dst)
    return lm


def build_vdd_lp(problem: MinEnergyProblem) -> VddLP:
    """Assemble the Vdd-Hopping LP for a problem instance (sparse CSR)."""
    lm = declare_vdd_lp(problem)
    mat = lm.materialize()
    idx = problem.graph.index()
    return VddLP(c=mat.c, a_ub=mat.a_ub, b_ub=mat.b_ub, a_eq=mat.a_eq,
                 b_eq=mat.b_eq, bounds=mat.bounds,
                 task_names=list(idx.names), modes=problem.model.modes,
                 model=lm)


def solve_vdd_lp(problem: MinEnergyProblem, *, backend: str = "highs") -> Solution:
    """Optimal Vdd-Hopping solution via linear programming (Theorem 3).

    Parameters
    ----------
    problem:
        The instance; its model must be a :class:`VddHoppingModel`.
    backend:
        Any LP backend registered on :data:`repro.modeling.BACKENDS` —
        ``"highs"`` (default, sparse-native), ``"simplex"`` (the library's
        own solver, intended for small instances and cross-checks), or an
        optional backend such as ``"cvxpy"`` when installed.

    Raises
    ------
    InfeasibleProblemError
        If the deadline cannot be met at the fastest mode.
    UnknownBackendError
        If no registered LP backend matches ``backend``.
    SolverError
        If the LP backend fails.
    """
    problem.ensure_feasible()
    lp = build_vdd_lp(problem)
    result = BACKENDS.solve(lp.model, backend=backend)
    x = result.x

    graph = problem.graph
    segments: dict[str, list[tuple[float, float]]] = {}
    m = lp.n_modes
    for i, name in enumerate(lp.task_names):
        segs = []
        for k, s in enumerate(lp.modes):
            t = float(x[i * m + k])
            if t > 1e-12:
                segs.append((s, t))
        if not segs:
            # degenerate numerical case: give the task an infinitesimal slot
            # at the fastest mode (its work is positive so this cannot
            # normally happen with a correct LP solution)
            segs = [(lp.modes[-1], graph.work(name) / lp.modes[-1])]
        # rescale so the executed work matches exactly (the LP meets the
        # equality only up to solver tolerance)
        executed = sum(s * t for s, t in segs)
        target = graph.work(name)
        if executed > 0 and abs(executed - target) > 0:
            factor = target / executed
            segs = [(s, t * factor) for s, t in segs]
        segments[name] = segs

    assignment = HoppingAssignment(segments=segments)
    metadata = dict(result.metadata)
    metadata["lp_objective"] = result.objective
    metadata["n_variables"] = int(lp.c.size)
    metadata["n_constraints"] = int(lp.a_ub.shape[0] + lp.a_eq.shape[0])
    metadata.update(lp.constraint_memory())
    return make_solution(problem, assignment, solver=f"vdd-lp-{backend}",
                         optimal=True, metadata=metadata)
