"""Linear-programming solver for the Vdd-Hopping model (Theorem 3).

Decision variables
    ``time[i, k]`` — time task ``T_i`` spends running at mode ``s_k``;
    ``t[i]``       — completion time of ``T_i``.

Linear program
    minimise    sum_{i,k} P(s_k) * time[i, k]
    subject to  sum_k s_k * time[i, k] == w_i                (work completion)
                t[v] >= t[u] + sum_k time[v, k]              for every edge (u, v)
                t[i] >= sum_k time[i, k]                     (start times >= 0)
                0 <= t[i] <= D,   time[i, k] >= 0

The LP has ``n * m + n`` variables and ``n + |E| + n`` constraints, so it is
solved in polynomial time — this is exactly the argument of Theorem 3.

Two backends are available: SciPy's HiGHS (default) and the library's own
dense simplex (:mod:`repro.vdd.simplex`), which exists so the reproduction's
central polynomial-time result does not rest on an external black box.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np
from scipy import optimize

from repro.core.models import VddHoppingModel
from repro.core.problem import MinEnergyProblem
from repro.core.solution import HoppingAssignment, Solution, make_solution
from repro.utils.errors import InvalidModelError, SolverError
from repro.vdd.simplex import solve_lp_simplex


@dataclass
class VddLP:
    """The assembled LP in matrix form, plus the variable index maps."""

    c: np.ndarray
    a_ub: np.ndarray
    b_ub: np.ndarray
    a_eq: np.ndarray
    b_eq: np.ndarray
    bounds: list[tuple[float, float | None]]
    task_names: list[str]
    modes: tuple[float, ...]

    @property
    def n_tasks(self) -> int:
        return len(self.task_names)

    @property
    def n_modes(self) -> int:
        return len(self.modes)

    def time_index(self, task_idx: int, mode_idx: int) -> int:
        """Column of the ``time[task, mode]`` variable."""
        return task_idx * self.n_modes + mode_idx

    def completion_index(self, task_idx: int) -> int:
        """Column of the ``t[task]`` variable."""
        return self.n_tasks * self.n_modes + task_idx


def build_vdd_lp(problem: MinEnergyProblem) -> VddLP:
    """Assemble the Vdd-Hopping LP for a problem instance."""
    model = problem.model
    if not isinstance(model, VddHoppingModel):
        raise InvalidModelError(
            f"build_vdd_lp expects a VddHoppingModel, got {model.name}"
        )
    graph = problem.graph
    names = graph.task_names()
    n = len(names)
    modes = model.modes
    m = len(modes)
    index = {name: i for i, name in enumerate(names)}
    deadline = problem.deadline
    n_vars = n * m + n

    c = np.zeros(n_vars)
    for i in range(n):
        for k, s in enumerate(modes):
            c[i * m + k] = problem.power.power(s)

    # equality: work completion
    a_eq = np.zeros((n, n_vars))
    b_eq = np.zeros(n)
    for i, name in enumerate(names):
        for k, s in enumerate(modes):
            a_eq[i, i * m + k] = s
        b_eq[i] = graph.work(name)

    # inequalities (<= 0 form): precedence and start-time constraints
    ub_rows: list[np.ndarray] = []
    ub_rhs: list[float] = []
    for u, v in graph.edges():
        row = np.zeros(n_vars)
        row[n * m + index[u]] = 1.0      # t_u
        row[n * m + index[v]] = -1.0     # -t_v
        for k in range(m):
            row[index[v] * m + k] = 1.0  # + duration of v
        ub_rows.append(row)
        ub_rhs.append(0.0)
    for i in range(n):
        row = np.zeros(n_vars)
        row[n * m + i] = -1.0            # -t_i
        for k in range(m):
            row[i * m + k] = 1.0         # + duration of i
        ub_rows.append(row)
        ub_rhs.append(0.0)

    a_ub = np.vstack(ub_rows) if ub_rows else np.zeros((0, n_vars))
    b_ub = np.asarray(ub_rhs)

    bounds: list[tuple[float, float | None]] = []
    for i in range(n):
        for _k in range(m):
            bounds.append((0.0, None))
    for _i in range(n):
        bounds.append((0.0, deadline))

    return VddLP(c=c, a_ub=a_ub, b_ub=b_ub, a_eq=a_eq, b_eq=b_eq, bounds=bounds,
                 task_names=names, modes=modes)


def _solve_backend(lp: VddLP, backend: str) -> tuple[np.ndarray, float, dict[str, Any]]:
    """Solve the LP with the requested backend; return (x, objective, metadata)."""
    if backend == "highs":
        result = optimize.linprog(
            lp.c, A_ub=lp.a_ub, b_ub=lp.b_ub, A_eq=lp.a_eq, b_eq=lp.b_eq,
            bounds=lp.bounds, method="highs",
        )
        if not result.success:
            raise SolverError(
                f"HiGHS failed on the Vdd-Hopping LP: {result.message} (status {result.status})"
            )
        return result.x, float(result.fun), {"backend": "highs",
                                             "iterations": int(result.nit)}
    if backend == "simplex":
        # encode the upper bounds on t as extra <= rows for the simplex backend
        n_vars = lp.c.size
        extra_rows = []
        extra_rhs = []
        for j, (lo, hi) in enumerate(lp.bounds):
            if lo != 0.0:
                raise SolverError("simplex backend expects zero lower bounds")
            if hi is not None:
                row = np.zeros(n_vars)
                row[j] = 1.0
                extra_rows.append(row)
                extra_rhs.append(hi)
        a_ub = np.vstack([lp.a_ub] + extra_rows) if extra_rows else lp.a_ub
        b_ub = np.concatenate([lp.b_ub, np.asarray(extra_rhs)]) if extra_rhs else lp.b_ub
        result = solve_lp_simplex(lp.c, a_ub=a_ub, b_ub=b_ub, a_eq=lp.a_eq, b_eq=lp.b_eq)
        if result.status != "optimal":
            raise SolverError(f"simplex backend reports the LP is {result.status}")
        return result.x, result.objective, {"backend": "simplex",
                                            "iterations": result.iterations}
    raise SolverError(f"unknown LP backend {backend!r} (use 'highs' or 'simplex')")


def solve_vdd_lp(problem: MinEnergyProblem, *, backend: str = "highs") -> Solution:
    """Optimal Vdd-Hopping solution via linear programming (Theorem 3).

    Parameters
    ----------
    problem:
        The instance; its model must be a :class:`VddHoppingModel`.
    backend:
        ``"highs"`` (SciPy, default) or ``"simplex"`` (the library's own
        solver, intended for small instances and cross-checks).

    Raises
    ------
    InfeasibleProblemError
        If the deadline cannot be met at the fastest mode.
    SolverError
        If the LP backend fails.
    """
    problem.ensure_feasible()
    lp = build_vdd_lp(problem)
    x, objective, metadata = _solve_backend(lp, backend)

    graph = problem.graph
    segments: dict[str, list[tuple[float, float]]] = {}
    m = lp.n_modes
    for i, name in enumerate(lp.task_names):
        segs = []
        for k, s in enumerate(lp.modes):
            t = float(x[i * m + k])
            if t > 1e-12:
                segs.append((s, t))
        if not segs:
            # degenerate numerical case: give the task an infinitesimal slot
            # at the fastest mode (its work is positive so this cannot
            # normally happen with a correct LP solution)
            segs = [(lp.modes[-1], graph.work(name) / lp.modes[-1])]
        # rescale so the executed work matches exactly (the LP meets the
        # equality only up to solver tolerance)
        executed = sum(s * t for s, t in segs)
        target = graph.work(name)
        if executed > 0 and abs(executed - target) > 0:
            factor = target / executed
            segs = [(s, t * factor) for s, t in segs]
        segments[name] = segs

    assignment = HoppingAssignment(segments=segments)
    metadata["lp_objective"] = objective
    metadata["n_variables"] = int(lp.c.size)
    metadata["n_constraints"] = int(lp.a_ub.shape[0] + lp.a_eq.shape[0])
    return make_solution(problem, assignment, solver=f"vdd-lp-{backend}",
                         optimal=True, metadata=metadata)
