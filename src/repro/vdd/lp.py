"""Linear-programming solver for the Vdd-Hopping model (Theorem 3).

Decision variables
    ``time[i, k]`` — time task ``T_i`` spends running at mode ``s_k``;
    ``t[i]``       — completion time of ``T_i``.

Linear program
    minimise    sum_{i,k} P(s_k) * time[i, k]
    subject to  sum_k s_k * time[i, k] == w_i                (work completion)
                t[v] >= t[u] + sum_k time[v, k]              for every edge (u, v)
                t[i] >= sum_k time[i, k]                     (start times >= 0)
                0 <= t[i] <= D,   time[i, k] >= 0

The LP has ``n * m + n`` variables and ``n + |E| + n`` constraints, so it is
solved in polynomial time — this is exactly the argument of Theorem 3.

Both constraint matrices are assembled directly in ``scipy.sparse`` CSR
form from the graph's cached integer index — no dense row buffers, no
``np.vstack`` — so a 10,000-task instance costs megabytes instead of the
~GBs its dense equivalent would (each precedence row holds ``m + 2``
non-zeros out of ``n * m + n`` columns).  :meth:`VddLP.constraint_memory`
reports the actual sparse footprint next to the dense equivalent.

Two backends are available: SciPy's HiGHS (default), which consumes the
sparse matrices natively, and the library's own educational dense simplex
(:mod:`repro.vdd.simplex`), which densifies the system behind an explicit
size guard so the reproduction's central polynomial-time result does not
rest on an external black box (and cannot silently allocate gigabytes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np
from scipy import optimize, sparse

from repro.core.models import VddHoppingModel
from repro.core.problem import MinEnergyProblem
from repro.core.solution import HoppingAssignment, Solution, make_solution
from repro.utils.errors import InvalidModelError, SolverError
from repro.vdd.simplex import solve_lp_simplex

#: Largest variable count the educational dense simplex backend accepts
#: before densifying the sparse system (the tableau is dense O(rows·cols)).
SIMPLEX_MAX_VARIABLES = 5000


@dataclass
class VddLP:
    """The assembled LP in matrix form, plus the variable index maps.

    ``a_ub`` and ``a_eq`` are ``scipy.sparse`` CSR matrices; use
    ``.toarray()`` for a dense view on small instances.
    """

    c: np.ndarray
    a_ub: sparse.csr_matrix
    b_ub: np.ndarray
    a_eq: sparse.csr_matrix
    b_eq: np.ndarray
    bounds: list[tuple[float, float | None]]
    task_names: list[str]
    modes: tuple[float, ...]

    @property
    def n_tasks(self) -> int:
        return len(self.task_names)

    @property
    def n_modes(self) -> int:
        return len(self.modes)

    def time_index(self, task_idx: int, mode_idx: int) -> int:
        """Column of the ``time[task, mode]`` variable."""
        return task_idx * self.n_modes + mode_idx

    def completion_index(self, task_idx: int) -> int:
        """Column of the ``t[task]`` variable."""
        return self.n_tasks * self.n_modes + task_idx

    def constraint_memory(self) -> dict[str, int]:
        """Actual sparse constraint-matrix bytes vs the dense equivalent."""
        sparse_bytes = 0
        dense_bytes = 0
        for mat in (self.a_ub, self.a_eq):
            sparse_bytes += mat.data.nbytes + mat.indices.nbytes + mat.indptr.nbytes
            dense_bytes += mat.shape[0] * mat.shape[1] * 8
        return {"sparse_bytes": int(sparse_bytes),
                "dense_equivalent_bytes": int(dense_bytes)}


def build_vdd_lp(problem: MinEnergyProblem) -> VddLP:
    """Assemble the Vdd-Hopping LP for a problem instance (sparse CSR)."""
    model = problem.model
    if not isinstance(model, VddHoppingModel):
        raise InvalidModelError(
            f"build_vdd_lp expects a VddHoppingModel, got {model.name}"
        )
    graph = problem.graph
    idx = graph.index()
    names = list(idx.names)
    n = len(names)
    modes = model.modes
    modes_arr = np.asarray(modes, dtype=float)
    m = len(modes)
    deadline = problem.deadline
    n_vars = n * m + n

    c = np.zeros(n_vars)
    c[:n * m] = np.tile(np.array([problem.power.power(s) for s in modes]), n)

    # equality: work completion — row i holds the mode speeds over the
    # time[i, :] block, so the CSR arrays are one tile/repeat each
    a_eq = sparse.csr_matrix(
        (np.tile(modes_arr, n),
         np.arange(n * m, dtype=np.int64),
         np.arange(0, n * m + 1, m, dtype=np.int64)),
        shape=(n, n_vars),
    )
    b_eq = idx.works.astype(float).copy()

    # inequalities (<= 0 form): precedence rows then start-time rows, both
    # built as flat COO triplets straight from the index's edge arrays
    esrc, edst = idx.edge_src, idx.edge_dst
    n_edges = len(esrc)
    n_rows = n_edges + n
    edge_rows = np.arange(n_edges, dtype=np.int64)
    start_rows = n_edges + np.arange(n, dtype=np.int64)
    mode_offsets = np.arange(m, dtype=np.int64)
    rows = np.concatenate([
        edge_rows,                          # t_u
        edge_rows,                          # -t_v
        np.repeat(edge_rows, m),            # + duration of v
        start_rows,                         # -t_i
        np.repeat(start_rows, m),           # + duration of i
    ])
    cols = np.concatenate([
        n * m + esrc,
        n * m + edst,
        (edst[:, None] * m + mode_offsets).ravel(),
        n * m + np.arange(n, dtype=np.int64),
        (np.arange(n, dtype=np.int64)[:, None] * m + mode_offsets).ravel(),
    ])
    data = np.concatenate([
        np.ones(n_edges), -np.ones(n_edges), np.ones(n_edges * m),
        -np.ones(n), np.ones(n * m),
    ])
    a_ub = sparse.csr_matrix((data, (rows, cols)), shape=(n_rows, n_vars))
    b_ub = np.zeros(n_rows)

    bounds: list[tuple[float, float | None]] = (
        [(0.0, None)] * (n * m) + [(0.0, deadline)] * n)

    return VddLP(c=c, a_ub=a_ub, b_ub=b_ub, a_eq=a_eq, b_eq=b_eq, bounds=bounds,
                 task_names=names, modes=modes)


def _solve_backend(lp: VddLP, backend: str) -> tuple[np.ndarray, float, dict[str, Any]]:
    """Solve the LP with the requested backend; return (x, objective, metadata)."""
    if backend == "highs":
        # HiGHS consumes the CSR matrices natively.  Past ~20k variables the
        # interior-point variant finishes in tens of iterations where the
        # dual simplex walks tens of thousands of vertices (6-7x wall time
        # at n=10k), so pick it explicitly for large instances.
        method = "highs-ipm" if lp.c.size > 20_000 else "highs"
        result = optimize.linprog(
            lp.c, A_ub=lp.a_ub, b_ub=lp.b_ub, A_eq=lp.a_eq, b_eq=lp.b_eq,
            bounds=lp.bounds, method=method,
        )
        if not result.success:
            raise SolverError(
                f"HiGHS failed on the Vdd-Hopping LP: {result.message} (status {result.status})"
            )
        return result.x, float(result.fun), {"backend": "highs",
                                             "highs_method": method,
                                             "iterations": int(result.nit)}
    if backend == "simplex":
        # the educational simplex works on a dense tableau: densify behind
        # an explicit guard so a 10k-task instance cannot silently ask for
        # gigabytes (use the HiGHS backend there — it stays sparse)
        n_vars = lp.c.size
        if n_vars > SIMPLEX_MAX_VARIABLES:
            raise SolverError(
                f"the dense simplex backend is educational and capped at "
                f"{SIMPLEX_MAX_VARIABLES} variables; this LP has {n_vars} "
                f"({lp.n_tasks} tasks x {lp.n_modes} modes) — use "
                "backend='highs', which consumes the sparse matrices natively"
            )
        extra_rows = []
        extra_rhs = []
        for j, (lo, hi) in enumerate(lp.bounds):
            if lo != 0.0:
                raise SolverError("simplex backend expects zero lower bounds")
            if hi is not None:
                row = np.zeros(n_vars)
                row[j] = 1.0
                extra_rows.append(row)
                extra_rhs.append(hi)
        a_ub_dense = lp.a_ub.toarray()
        a_ub = np.vstack([a_ub_dense] + extra_rows) if extra_rows else a_ub_dense
        b_ub = np.concatenate([lp.b_ub, np.asarray(extra_rhs)]) if extra_rhs else lp.b_ub
        result = solve_lp_simplex(lp.c, a_ub=a_ub, b_ub=b_ub,
                                  a_eq=lp.a_eq.toarray(), b_eq=lp.b_eq)
        if result.status != "optimal":
            raise SolverError(f"simplex backend reports the LP is {result.status}")
        return result.x, result.objective, {"backend": "simplex",
                                            "iterations": result.iterations}
    raise SolverError(f"unknown LP backend {backend!r} (use 'highs' or 'simplex')")


def solve_vdd_lp(problem: MinEnergyProblem, *, backend: str = "highs") -> Solution:
    """Optimal Vdd-Hopping solution via linear programming (Theorem 3).

    Parameters
    ----------
    problem:
        The instance; its model must be a :class:`VddHoppingModel`.
    backend:
        ``"highs"`` (SciPy, default) or ``"simplex"`` (the library's own
        solver, intended for small instances and cross-checks).

    Raises
    ------
    InfeasibleProblemError
        If the deadline cannot be met at the fastest mode.
    SolverError
        If the LP backend fails.
    """
    problem.ensure_feasible()
    lp = build_vdd_lp(problem)
    x, objective, metadata = _solve_backend(lp, backend)

    graph = problem.graph
    segments: dict[str, list[tuple[float, float]]] = {}
    m = lp.n_modes
    for i, name in enumerate(lp.task_names):
        segs = []
        for k, s in enumerate(lp.modes):
            t = float(x[i * m + k])
            if t > 1e-12:
                segs.append((s, t))
        if not segs:
            # degenerate numerical case: give the task an infinitesimal slot
            # at the fastest mode (its work is positive so this cannot
            # normally happen with a correct LP solution)
            segs = [(lp.modes[-1], graph.work(name) / lp.modes[-1])]
        # rescale so the executed work matches exactly (the LP meets the
        # equality only up to solver tolerance)
        executed = sum(s * t for s, t in segs)
        target = graph.work(name)
        if executed > 0 and abs(executed - target) > 0:
            factor = target / executed
            segs = [(s, t * factor) for s, t in segs]
        segments[name] = segs

    assignment = HoppingAssignment(segments=segments)
    metadata["lp_objective"] = objective
    metadata["n_variables"] = int(lp.c.size)
    metadata["n_constraints"] = int(lp.a_ub.shape[0] + lp.a_eq.shape[0])
    metadata.update(lp.constraint_memory())
    return make_solution(problem, assignment, solver=f"vdd-lp-{backend}",
                         optimal=True, metadata=metadata)
