"""Exact branch-and-bound solver for the Discrete model.

Theorem 4 states that ``MinEnergy(G, D)`` with arbitrary discrete modes is
NP-complete, so no polynomial exact algorithm is expected; this solver
enumerates mode assignments with aggressive pruning and is intended for the
small instances used to calibrate the heuristics and to exhibit the
exponential growth of experiment E4.

Search organisation
-------------------
* tasks are branched on in decreasing order of work (big tasks first — they
  constrain both the deadline and the energy the most);
* for each task the modes are tried from slowest (cheapest) to fastest, so
  the first complete assignment found tends to be good;
* **feasibility pruning**: after fixing a prefix, the remaining tasks are
  assumed to run at the fastest mode; if the resulting ASAP makespan already
  exceeds the deadline the subtree is abandoned;
* **bound pruning**: the energy of the fixed prefix plus the unavoidable
  energy of the remaining tasks (every task costs at least
  ``w * P(s_min) / s_min`` no matter the mode) must stay below the
  incumbent;
* the incumbent is initialised with the round-up heuristic, which is
  feasible whenever the instance is feasible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.models import DiscreteModel, IncrementalModel
from repro.core.problem import MinEnergyProblem
from repro.core.solution import SpeedAssignment, Solution, compute_schedule, make_solution
from repro.graphs.analysis import topological_order
from repro.utils.errors import InvalidModelError, SolverError
from repro.utils.numerics import leq_with_tol


@dataclass
class BranchAndBoundStats:
    """Diagnostics of a branch-and-bound run."""

    nodes_explored: int = 0
    nodes_pruned_bound: int = 0
    nodes_pruned_infeasible: int = 0
    incumbent_updates: int = 0
    initial_upper_bound: float = float("inf")

    def as_dict(self) -> dict[str, float]:
        """Plain-dictionary view used in solution metadata."""
        return {
            "nodes_explored": self.nodes_explored,
            "nodes_pruned_bound": self.nodes_pruned_bound,
            "nodes_pruned_infeasible": self.nodes_pruned_infeasible,
            "incumbent_updates": self.incumbent_updates,
            "initial_upper_bound": self.initial_upper_bound,
        }


def solve_discrete_exact(problem: MinEnergyProblem, *,
                         max_nodes: int = 2_000_000) -> Solution:
    """Optimal Discrete solution by branch and bound.

    Parameters
    ----------
    problem:
        The instance; its model must be a :class:`DiscreteModel` or an
        :class:`IncrementalModel` (which is a Discrete model with a regular
        mode grid).
    max_nodes:
        Safety cap on explored nodes; a :class:`SolverError` is raised when
        it is exceeded (the instance is too large for exact search).

    Raises
    ------
    InfeasibleProblemError
        If even the fastest mode cannot meet the deadline.
    """
    model = problem.model
    if not isinstance(model, (DiscreteModel, IncrementalModel)):
        raise InvalidModelError(
            f"solve_discrete_exact expects a Discrete or Incremental model, got {model.name}"
        )
    problem.ensure_feasible()

    graph = problem.graph
    names = graph.task_names()
    modes = list(model.modes)          # ascending
    deadline = problem.deadline
    power = problem.power
    s_max = modes[-1]
    s_min = modes[0]

    # Branch order: decreasing work.
    branch_order = sorted(names, key=lambda n: (-graph.work(n), n))
    works = {n: graph.work(n) for n in names}
    topo = topological_order(graph)

    # Unavoidable per-task energy (slowest mode).
    floor_energy = {n: power.energy_for_work(works[n], s_min) for n in names}
    suffix_floor = [0.0] * (len(branch_order) + 1)
    for i in range(len(branch_order) - 1, -1, -1):
        suffix_floor[i] = suffix_floor[i + 1] + floor_energy[branch_order[i]]

    # Incumbent from the round-up heuristic (always feasible when the
    # instance is feasible).
    from repro.discrete.heuristics import solve_discrete_round_up

    incumbent_solution = solve_discrete_round_up(problem)
    incumbent_energy = incumbent_solution.energy
    incumbent_speeds = dict(incumbent_solution.assignment.speeds)  # type: ignore[union-attr]

    stats = BranchAndBoundStats(initial_upper_bound=incumbent_energy)

    def makespan_with(partial: dict[str, float]) -> float:
        """ASAP makespan with unassigned tasks at the fastest mode."""
        durations = {}
        for n in names:
            speed = partial.get(n, s_max)
            durations[n] = works[n] / speed
        finish: dict[str, float] = {}
        worst = 0.0
        for n in topo:
            start = max((finish[p] for p in graph.predecessors(n)), default=0.0)
            finish[n] = start + durations[n]
            if finish[n] > worst:
                worst = finish[n]
        return worst

    partial: dict[str, float] = {}
    partial_energy = [0.0]

    def recurse(depth: int) -> None:
        nonlocal incumbent_energy, incumbent_speeds
        stats.nodes_explored += 1
        if stats.nodes_explored > max_nodes:
            raise SolverError(
                f"branch and bound exceeded {max_nodes} nodes; the instance is too "
                "large for exact search — use the heuristics instead"
            )
        if depth == len(branch_order):
            if partial_energy[0] < incumbent_energy - 1e-12:
                incumbent_energy = partial_energy[0]
                incumbent_speeds = dict(partial)
                stats.incumbent_updates += 1
            return
        task = branch_order[depth]
        for mode in modes:
            task_energy = power.energy_for_work(works[task], mode)
            lower_bound = partial_energy[0] + task_energy + suffix_floor[depth + 1]
            if lower_bound >= incumbent_energy - 1e-12:
                stats.nodes_pruned_bound += 1
                continue
            partial[task] = mode
            if not leq_with_tol(makespan_with(partial), deadline):
                stats.nodes_pruned_infeasible += 1
                del partial[task]
                continue
            partial_energy[0] += task_energy
            recurse(depth + 1)
            partial_energy[0] -= task_energy
            del partial[task]

    recurse(0)

    assignment = SpeedAssignment(incumbent_speeds)
    metadata = stats.as_dict()
    return make_solution(problem, assignment, solver="discrete-branch-and-bound",
                         optimal=True, lower_bound=None, metadata=metadata)
