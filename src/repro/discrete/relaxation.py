"""LP relaxation of the Discrete model, declared through ``repro.modeling``.

A Discrete-model task must run at one constant mode; relaxing that to
*time-sharing* between modes — exactly the Vdd-Hopping semantics over the
same mode set — yields a linear program whose optimum lower-bounds every
discrete schedule (Vdd-Hopping dominates Discrete on any instance with the
same modes).  This module declares that LP through the shared modeling
layer — the same two variable blocks, work-completion equalities and
precedence polytope as :func:`repro.vdd.lp.declare_vdd_lp` — solves it
with any registered LP backend, and rounds the relaxed point back to a
feasible one-mode-per-task schedule:

* the relaxed per-task duration is ``dur_i = sum_k time[i, k]``, so the
  *ideal* constant speed is ``w_i / dur_i``;
* rounding each ideal speed **up** to the next mode can only shorten
  durations, so precedence and the deadline stay satisfied.

The returned solution carries the LP optimum as ``lower_bound``, giving
callers a per-instance optimality gap certificate for free.
"""

from __future__ import annotations

import numpy as np

from repro.core.models import DiscreteModel, IncrementalModel
from repro.core.problem import MinEnergyProblem
from repro.core.solution import Solution, SpeedAssignment, make_solution
from repro.modeling import BACKENDS, LinearModel, declare_precedence
from repro.utils.errors import InvalidModelError


def declare_discrete_relaxation(problem: MinEnergyProblem) -> LinearModel:
    """Declare the time-sharing LP relaxation as a :class:`LinearModel`."""
    model = problem.model
    if not isinstance(model, (DiscreteModel, IncrementalModel)):
        raise InvalidModelError(
            f"the discrete LP relaxation expects a Discrete or Incremental "
            f"model, got {model.name}"
        )
    idx = problem.graph.index()
    n = idx.n_tasks
    modes_arr = np.asarray(model.modes, dtype=float)
    m = len(model.modes)

    lm = LinearModel(name="discrete-lp-relaxation")
    time = lm.add_variables("time", n * m, lower=0.0)
    completion = lm.add_variables("completion", n, lower=0.0,
                                  upper=problem.deadline)
    lm.add_objective(time, np.tile(
        np.array([problem.power.power(s) for s in model.modes]), n))
    lm.add_constraints(
        "work", sense="eq", rhs=idx.works.astype(float),
        terms=[(time,
                np.repeat(np.arange(n, dtype=np.int64), m),
                np.arange(n * m, dtype=np.int64),
                np.tile(modes_arr, n))])
    declare_precedence(
        lm, completion=completion, duration_block=time,
        duration_cols=np.arange(n * m, dtype=np.int64).reshape(n, m),
        edge_src=idx.edge_src, edge_dst=idx.edge_dst)
    return lm


def solve_discrete_lp_relaxation(problem: MinEnergyProblem, *,
                                 backend: str = "highs") -> Solution:
    """Feasible Discrete solution by rounding the time-sharing LP optimum.

    Parameters
    ----------
    problem:
        The instance; its model must be Discrete or Incremental.
    backend:
        Any LP backend registered on :data:`repro.modeling.BACKENDS`.

    Raises
    ------
    InfeasibleProblemError
        If the deadline cannot be met at the fastest mode.
    UnknownBackendError
        If no registered LP backend matches ``backend``.
    """
    problem.ensure_feasible()
    model = problem.model
    lm = declare_discrete_relaxation(problem)
    result = BACKENDS.solve(lm, backend=backend)
    x = result.x

    idx = problem.graph.index()
    n = idx.n_tasks
    m = len(model.modes)
    durations = x[:n * m].reshape(n, m).sum(axis=1)
    speeds: dict[str, float] = {}
    for i, name in enumerate(idx.names):
        work = float(idx.works[i])
        if durations[i] > 1e-12:
            ideal = work / float(durations[i])
        else:
            ideal = model.modes[-1]
        # tiny LP tolerances can push the ideal a hair above the top mode
        speeds[name] = model.round_up(min(ideal, model.modes[-1]))

    metadata = dict(result.metadata)
    metadata["lp_objective"] = result.objective
    metadata["n_variables"] = int(lm.n_variables)
    return make_solution(
        problem, SpeedAssignment(speeds),
        solver=f"discrete-lp-relaxation-{metadata['backend']}",
        optimal=False, lower_bound=result.objective, metadata=metadata)
