"""Dispatching solver for the Discrete model.

``solve_discrete`` picks a method appropriate for the instance size:

* edge-free graphs — the per-task exact rule;
* chains — the exact Pareto-front dynamic program;
* small general graphs (``n <= exact_threshold``) — exact branch and bound;
* everything else — the better of the two polynomial heuristics, with the
  Continuous optimum attached as a lower bound.
"""

from __future__ import annotations

from repro.core.models import DiscreteModel, IncrementalModel
from repro.core.problem import MinEnergyProblem
from repro.core.registry import REGISTRY, OptionSpec
from repro.core.solution import Solution
from repro.discrete.exact import solve_discrete_exact
from repro.discrete.heuristics import solve_discrete_best_heuristic
from repro.discrete.pareto_dp import (
    solve_chain_discrete_exact,
    solve_independent_discrete_exact,
)
from repro.discrete.relaxation import solve_discrete_lp_relaxation
from repro.modeling import BACKENDS
from repro.utils.errors import InvalidGraphError, InvalidModelError, SolverError


def solve_discrete(problem: MinEnergyProblem, *, exact: bool | None = None,
                   exact_threshold: int = 14,
                   chain_dp_threshold: int = 1024,
                   max_nodes: int = 2_000_000) -> Solution:
    """Solve a Discrete-model instance.

    Parameters
    ----------
    problem:
        The instance; its model must be Discrete or Incremental.
    exact:
        Force exact (``True``) or heuristic (``False``) resolution;
        ``None`` (default) chooses automatically based on structure and
        size.
    exact_threshold:
        Maximum task count for which the automatic mode attempts exact
        branch and bound on general graphs.
    chain_dp_threshold:
        Maximum task count for which the automatic mode attempts the exact
        chain Pareto DP; deeper chains go straight to the heuristics (the
        DP's front would hit its state cap after a long, fruitless sweep).
        ``exact=True`` always attempts the DP regardless of size.
    max_nodes:
        Node cap for branch and bound.
    """
    model = problem.model
    if not isinstance(model, (DiscreteModel, IncrementalModel)):
        raise InvalidModelError(
            f"solve_discrete expects a Discrete or Incremental model, got {model.name}"
        )
    problem.ensure_feasible()
    graph = problem.graph

    if exact is False:
        return solve_discrete_best_heuristic(problem)

    # structure-specific exact algorithms (cheap, always worth trying)
    if graph.n_edges == 0:
        return solve_independent_discrete_exact(problem)
    try:
        if exact is True or graph.n_tasks <= chain_dp_threshold:
            return solve_chain_discrete_exact(problem)
    except InvalidGraphError:
        pass
    except SolverError:
        # The chain's Pareto front blew past the state cap (deep chains with
        # loose deadlines).  In automatic mode fall through to the
        # polynomial heuristics instead of crashing the dispatch; an
        # explicit exact request still gets the honest failure.
        if exact is True:
            raise

    if exact is True:
        return solve_discrete_exact(problem, max_nodes=max_nodes)

    if graph.n_tasks <= exact_threshold:
        try:
            return solve_discrete_exact(problem, max_nodes=max_nodes)
        except SolverError:
            pass
    return solve_discrete_best_heuristic(problem)


# --------------------------------------------------------------------------- #
# registered backends (repro.solve resolves these through the SolverRegistry)
# --------------------------------------------------------------------------- #
REGISTRY.register(
    "discrete", "auto", default=True, supports_exact=True,
    options=(
        OptionSpec("exact_threshold", (int,), default=14,
                   doc="max task count for automatic exact branch and bound"),
        OptionSpec("chain_dp_threshold", (int,), default=1024,
                   doc="max task count for the automatic chain Pareto DP"),
        OptionSpec("max_nodes", (int,), default=2_000_000,
                   doc="node cap of the branch and bound"),
    ),
    doc="Size/structure-aware dispatch (exact where cheap, else heuristics).",
)(solve_discrete)

REGISTRY.register(
    "discrete", "exact",
    options=(
        OptionSpec("max_nodes", (int,), default=2_000_000,
                   doc="node cap of the branch and bound"),
    ),
    doc="Exact resolution (chain Pareto DP, else branch and bound).",
)(lambda problem, **opts: solve_discrete(problem, exact=True, **opts))

REGISTRY.register(
    "discrete", "heuristic",
    options=(
        OptionSpec("greedy_threshold", (int,), default=10_000,
                   doc="size guard of the (incremental) greedy "
                       "slack-reclamation pass"),
        OptionSpec("greedy_depth_threshold", (int,), default=2048,
                   doc="level-count guard of the greedy pass (path-shaped "
                       "graphs degenerate its cone updates)"),
    ),
    doc="Best of the two polynomial heuristics (round-up, greedy reclaim).",
)(solve_discrete_best_heuristic)

REGISTRY.register(
    "discrete", "lp-relaxation",
    options=(
        OptionSpec("backend", (str,), default="highs",
                   doc="LP backend registered on repro.modeling.BACKENDS"),
    ),
    doc="Time-sharing LP relaxation rounded up to one mode per task "
        "(LP optimum attached as lower_bound).",
)(solve_discrete_lp_relaxation)

BACKENDS.announce_route("lp", "discrete/lp-relaxation")
