"""Polynomial heuristics for the Discrete (and Incremental) models.

Because the exact problem is NP-complete (Theorem 4), practical instances
are solved by heuristics with a-posteriori quality certificates:

* :func:`solve_discrete_round_up` — solve the Continuous relaxation (with
  ``s_max`` equal to the fastest mode) and round every ideal speed **up** to
  the next available mode.  Rounding up only shrinks durations, so the
  assignment stays feasible; this is the construction behind Theorem 5 and
  Proposition 1, and its energy is within ``(1 + gap / s)**(alpha-1)`` of
  the Continuous lower bound, where ``gap`` is the mode gap used for each
  task;
* :func:`solve_discrete_greedy_reclaim` — start from the fastest mode
  everywhere and greedily lower the mode of whichever task yields the
  largest energy saving while the ASAP schedule still meets the deadline
  (the classical slack-reclamation loop);
* :func:`solve_discrete_best_heuristic` — run both and keep the better one.

Every returned solution carries the Continuous optimum as ``lower_bound``,
so callers can report optimality gaps without solving the NP-hard problem.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.core.models import ContinuousModel, DiscreteModel, IncrementalModel
from repro.core.problem import MinEnergyProblem
from repro.core.solution import SpeedAssignment, Solution, compute_makespan, make_solution
from repro.utils.errors import InvalidModelError
from repro.utils.numerics import leq_with_tol


def _require_mode_model(problem: MinEnergyProblem) -> DiscreteModel | IncrementalModel:
    model = problem.model
    if not isinstance(model, (DiscreteModel, IncrementalModel)):
        raise InvalidModelError(
            f"expected a Discrete or Incremental model, got {model.name}"
        )
    return model


def solve_discrete_round_up(problem: MinEnergyProblem) -> Solution:
    """Round the Continuous optimum up to the next available mode.

    Feasibility: each task's duration can only decrease when its speed is
    rounded up, and the Continuous solution met every constraint, so the
    rounded assignment does too.
    """
    from repro.continuous.solve import solve_continuous

    model = _require_mode_model(problem)
    problem.ensure_feasible()
    relaxed = problem.with_model(ContinuousModel(s_max=model.max_speed))
    continuous = solve_continuous(relaxed)
    ideal = continuous.speeds()

    speeds: dict[str, float] = {}
    for name in problem.graph.task_names():
        target = max(ideal[name], model.min_speed)
        speeds[name] = model.round_up(min(target, model.max_speed))
    assignment = SpeedAssignment(speeds)
    return make_solution(
        problem, assignment, solver="discrete-round-up", optimal=False,
        lower_bound=continuous.energy,
        metadata={"continuous_solver": continuous.solver},
    )


def _tail_times(idx, durations: np.ndarray) -> np.ndarray:
    """Longest duration path from each task to a sink, *excluding* itself.

    The backward mirror of the ASAP start times: ``start[i] + durations[i]
    + tail[i]`` is the longest schedule path through task ``i``, so the
    makespan after changing only ``durations[i]`` is
    ``max(old makespan, start[i] + new_duration + tail[i])`` — an O(1)
    feasibility probe.  One flat reverse pass over the CSR arrays.
    """
    n = idx.n_tasks
    succ_ptr = idx.succ_ptr.tolist()
    succ_idx = idx.succ_idx.tolist()
    dur = durations.tolist()
    tail = [0.0] * n
    for u in reversed(idx.topo_order.tolist()):
        best = 0.0
        for v in succ_idx[succ_ptr[u]:succ_ptr[u + 1]]:
            candidate = dur[v] + tail[v]
            if candidate > best:
                best = candidate
        tail[u] = best
    return np.asarray(tail)


def _tail_update(idx, durations: np.ndarray, tail: np.ndarray,
                 changed: int, max_visits: int | None = None) -> bool:
    """Repair ``tail`` in place over the ancestor cone of ``changed``.

    The backward counterpart of :meth:`GraphIndex.asap_update`: only
    ancestors whose longest downstream path moves are visited, with the
    same early exit and the same optional visit budget.  Returns ``False``
    when the budget was exceeded (the caller must rebuild with
    :func:`_tail_times`).
    """
    pred_ptr = idx.pred_ptr
    pred_idx = idx.pred_idx
    succ_ptr = idx.succ_ptr
    succ_idx = idx.succ_idx
    position = idx.topo_position
    heap = [(-int(position[p]), int(p))
            for p in pred_idx[pred_ptr[changed]:pred_ptr[changed + 1]]]
    heapq.heapify(heap)
    pending = {u for _, u in heap}
    visits = 0
    while heap:
        _, u = heapq.heappop(heap)
        pending.discard(u)
        visits += 1
        if max_visits is not None and visits > max_visits:
            return False
        best = 0.0
        for v in succ_idx[succ_ptr[u]:succ_ptr[u + 1]]:
            candidate = durations[v] + tail[v]
            if candidate > best:
                best = candidate
        if best == tail[u]:
            continue
        tail[u] = best
        for p in pred_idx[pred_ptr[u]:pred_ptr[u + 1]]:
            if p not in pending:
                pending.add(int(p))
                heapq.heappush(heap, (-int(position[p]), int(p)))
    return True


def solve_discrete_greedy_reclaim(problem: MinEnergyProblem, *,
                                  max_passes: int | None = None) -> Solution:
    """Greedy slack reclamation: lower one task's mode at a time.

    Starting from every task at the fastest mode, the move with the largest
    energy saving whose ASAP schedule still meets the deadline is applied,
    until no single-task downgrade is feasible.  Three structural facts
    turn the classical O(n²·modes) rescan loop into an O(cone)-per-step
    incremental one that accepts 10,000-task graphs:

    * a downgrade's energy saving depends only on the task's work and the
      two modes, never on the other tasks — so all candidate moves live in
      one max-heap, computed once;
    * downgrades only lengthen durations, so ASAP times are monotone
      non-decreasing over the run — a move that is infeasible now can never
      become feasible later and is discarded permanently;
    * with exact ASAP starts and exact longest *downstream* paths
      (``tail``) in hand, the makespan after a single-duration change is
      ``max(makespan, start + duration + tail)`` — every probe is O(1) and
      nothing needs reverting.

    Only *applied* moves propagate: the forward cone through
    :meth:`repro.graphs.taskgraph.GraphIndex.asap_update` and the ancestor
    cone through the mirrored tail repair, each with a visit budget that
    falls back to one full vectorised pass when a change ripples through
    most of the graph (cheaper than a huge node-by-node walk).  The move
    sequence is identical to the original full-rescan formulation.

    Parameters
    ----------
    max_passes:
        Optional cap on the number of applied moves (defaults to
        ``n_tasks * n_modes``, which is an upper bound on the number of
        possible downgrades).

    Notes
    -----
    The attached ``lower_bound`` is the cheap critical-path/load bound, not
    the full Continuous optimum (which the round-up heuristic already
    computes); callers that want the tight bound should use
    :func:`repro.continuous.bounds.continuous_lower_bound` directly.
    """
    from repro.continuous.bounds import critical_path_lower_bound
    from repro.core.solution import asap_times

    model = _require_mode_model(problem)
    problem.ensure_feasible()
    graph = problem.graph
    idx = graph.index()
    names = idx.names
    works = idx.works
    modes = list(model.modes)
    n_modes = len(modes)
    power = problem.power
    deadline = problem.deadline
    n = idx.n_tasks

    def finish_solution(mode_of, metadata):
        assignment = SpeedAssignment(
            {names[i]: modes[m] for i, m in enumerate(mode_of)})
        lower = critical_path_lower_bound(problem)
        return make_solution(
            problem, assignment, solver="discrete-greedy-reclaim",
            optimal=False, lower_bound=lower, metadata=metadata,
        )

    if max_passes is None:
        max_passes = n * n_modes

    # loose-deadline shortcut: if even the all-slowest schedule meets the
    # deadline, every single downgrade is feasible along the way and the
    # greedy provably ends with every task at the slowest mode
    total_moves = n * (n_modes - 1)
    if n_modes > 1 and max_passes >= total_moves:
        if leq_with_tol(compute_makespan(graph, works / modes[0]), deadline):
            return finish_solution([0] * n, {"moves_applied": total_moves,
                                             "all_slowest_shortcut": True})

    mode_of = [n_modes - 1] * n
    durations = works / modes[-1]
    start, finish = asap_times(idx, durations)
    makespan = float(finish.max()) if n else 0.0
    tail = _tail_times(idx, durations)
    # beyond this cone size a full vectorised pass is cheaper than the
    # node-by-node walk
    budget = max(128, n // 16)

    def saving_of(i: int, m: int) -> float:
        return (power.energy_for_work(works[i], modes[m])
                - power.energy_for_work(works[i], modes[m - 1]))

    # ties break on the task index, matching the original ascending scan
    heap = [(-saving_of(i, n_modes - 1), i) for i in range(n)
            if n_modes > 1 and saving_of(i, n_modes - 1) > 0.0]
    heapq.heapify(heap)

    applied = 0
    probed = 0
    full_rebuilds = 0
    while heap and applied < max_passes:
        _neg_saving, i = heapq.heappop(heap)
        target = mode_of[i] - 1
        probed += 1
        new_duration = works[i] / modes[target]
        new_makespan = max(makespan, float(start[i]) + new_duration + float(tail[i]))
        if not leq_with_tol(new_makespan, deadline):
            continue  # infeasible now, infeasible forever: drop the task
        durations[i] = new_duration
        mode_of[i] = target
        makespan = new_makespan
        applied += 1
        touched = idx.asap_update(durations, start, finish, i,
                                  max_visits=budget)
        if touched is None:
            start, finish = asap_times(idx, durations)
            makespan = float(finish.max())
            full_rebuilds += 1
        if not _tail_update(idx, durations, tail, i, max_visits=budget):
            tail = _tail_times(idx, durations)
            full_rebuilds += 1
        if target > 0:
            saving = saving_of(i, target)
            if saving > 0.0:
                heapq.heappush(heap, (-saving, i))

    return finish_solution(mode_of, {"moves_applied": applied,
                                     "moves_probed": probed,
                                     "full_rebuilds": full_rebuilds})


def solve_discrete_best_heuristic(problem: MinEnergyProblem, *,
                                  greedy_threshold: int = 10_000,
                                  greedy_depth_threshold: int = 2048) -> Solution:
    """Run both heuristics and return the one with the lower energy.

    Parameters
    ----------
    greedy_threshold:
        Task-count ceiling for the greedy slack-reclamation pass.  Since
        the greedy moved to incremental affected-cone updates (each probe
        is O(1) against exact start/tail path bounds and only applied
        moves propagate, via :meth:`GraphIndex.asap_update`), 10,000-task
        general DAGs run it comfortably; the guard remains only as an
        escape hatch for extreme grids.
    greedy_depth_threshold:
        Level-count ceiling for the greedy pass.  On path-shaped graphs
        (depth close to the task count) every affected cone *is* the rest
        of the path, so the incremental updates degenerate to Θ(n) per
        applied move; such instances are served by the chain Pareto DP or
        round-up instead.  Wide 10k-task DAGs (~100 levels) are unaffected.
    """
    round_up = solve_discrete_round_up(problem)
    idx = problem.graph.index()
    if problem.graph.n_tasks > greedy_threshold:
        round_up.metadata["greedy_skipped"] = (
            f"n_tasks {problem.graph.n_tasks} > greedy_threshold {greedy_threshold}"
        )
        return round_up
    if idx.n_levels > greedy_depth_threshold:
        round_up.metadata["greedy_skipped"] = (
            f"n_levels {idx.n_levels} > greedy_depth_threshold "
            f"{greedy_depth_threshold}"
        )
        return round_up
    greedy = solve_discrete_greedy_reclaim(problem)
    best = round_up if round_up.energy <= greedy.energy else greedy
    best.metadata["round_up_energy"] = round_up.energy
    best.metadata["greedy_energy"] = greedy.energy
    return best
