"""Polynomial heuristics for the Discrete (and Incremental) models.

Because the exact problem is NP-complete (Theorem 4), practical instances
are solved by heuristics with a-posteriori quality certificates:

* :func:`solve_discrete_round_up` — solve the Continuous relaxation (with
  ``s_max`` equal to the fastest mode) and round every ideal speed **up** to
  the next available mode.  Rounding up only shrinks durations, so the
  assignment stays feasible; this is the construction behind Theorem 5 and
  Proposition 1, and its energy is within ``(1 + gap / s)**(alpha-1)`` of
  the Continuous lower bound, where ``gap`` is the mode gap used for each
  task;
* :func:`solve_discrete_greedy_reclaim` — start from the fastest mode
  everywhere and greedily lower the mode of whichever task yields the
  largest energy saving while the ASAP schedule still meets the deadline
  (the classical slack-reclamation loop);
* :func:`solve_discrete_best_heuristic` — run both and keep the better one.

Every returned solution carries the Continuous optimum as ``lower_bound``,
so callers can report optimality gaps without solving the NP-hard problem.
"""

from __future__ import annotations

from repro.core.models import ContinuousModel, DiscreteModel, IncrementalModel
from repro.core.problem import MinEnergyProblem
from repro.core.solution import SpeedAssignment, Solution, compute_makespan, make_solution
from repro.utils.errors import InvalidModelError
from repro.utils.numerics import leq_with_tol


def _require_mode_model(problem: MinEnergyProblem) -> DiscreteModel | IncrementalModel:
    model = problem.model
    if not isinstance(model, (DiscreteModel, IncrementalModel)):
        raise InvalidModelError(
            f"expected a Discrete or Incremental model, got {model.name}"
        )
    return model


def solve_discrete_round_up(problem: MinEnergyProblem) -> Solution:
    """Round the Continuous optimum up to the next available mode.

    Feasibility: each task's duration can only decrease when its speed is
    rounded up, and the Continuous solution met every constraint, so the
    rounded assignment does too.
    """
    from repro.continuous.solve import solve_continuous

    model = _require_mode_model(problem)
    problem.ensure_feasible()
    relaxed = problem.with_model(ContinuousModel(s_max=model.max_speed))
    continuous = solve_continuous(relaxed)
    ideal = continuous.speeds()

    speeds: dict[str, float] = {}
    for name in problem.graph.task_names():
        target = max(ideal[name], model.min_speed)
        speeds[name] = model.round_up(min(target, model.max_speed))
    assignment = SpeedAssignment(speeds)
    return make_solution(
        problem, assignment, solver="discrete-round-up", optimal=False,
        lower_bound=continuous.energy,
        metadata={"continuous_solver": continuous.solver},
    )


def solve_discrete_greedy_reclaim(problem: MinEnergyProblem, *,
                                  max_passes: int | None = None) -> Solution:
    """Greedy slack reclamation: lower one task's mode at a time.

    Starting from every task at the fastest mode, each step evaluates, for
    every task not already at the slowest mode, the energy saved by dropping
    it to the next slower mode; the feasible move with the largest saving is
    applied.  The loop stops when no single-task move is feasible.

    Parameters
    ----------
    max_passes:
        Optional cap on the number of applied moves (defaults to
        ``n_tasks * n_modes``, which is an upper bound on the number of
        possible downgrades).

    Notes
    -----
    The attached ``lower_bound`` is the cheap critical-path/load bound, not
    the full Continuous optimum (which the round-up heuristic already
    computes); callers that want the tight bound should use
    :func:`repro.continuous.bounds.continuous_lower_bound` directly.
    """
    from repro.continuous.bounds import critical_path_lower_bound

    model = _require_mode_model(problem)
    problem.ensure_feasible()
    graph = problem.graph
    idx = graph.index()
    names = idx.names
    works = idx.works
    modes = list(model.modes)
    power = problem.power
    deadline = problem.deadline

    mode_of = [len(modes) - 1] * idx.n_tasks
    durations = works / modes[-1]
    if max_passes is None:
        max_passes = graph.n_tasks * len(modes)

    applied = 0
    while applied < max_passes:
        best_i: int | None = None
        best_saving = 0.0
        for i in range(idx.n_tasks):
            m = mode_of[i]
            if m == 0:
                continue
            saving = (power.energy_for_work(works[i], modes[m])
                      - power.energy_for_work(works[i], modes[m - 1]))
            if saving <= best_saving:
                continue
            old = durations[i]
            durations[i] = works[i] / modes[m - 1]
            feasible = leq_with_tol(compute_makespan(graph, durations), deadline)
            durations[i] = old
            if feasible:
                best_i = i
                best_saving = saving
        if best_i is None:
            break
        mode_of[best_i] -= 1
        durations[best_i] = works[best_i] / modes[mode_of[best_i]]
        applied += 1

    assignment = SpeedAssignment({names[i]: modes[m] for i, m in enumerate(mode_of)})
    lower = critical_path_lower_bound(problem)
    return make_solution(
        problem, assignment, solver="discrete-greedy-reclaim", optimal=False,
        lower_bound=lower, metadata={"moves_applied": applied},
    )


def solve_discrete_best_heuristic(problem: MinEnergyProblem, *,
                                  greedy_threshold: int = 512) -> Solution:
    """Run both heuristics and return the one with the lower energy.

    Parameters
    ----------
    greedy_threshold:
        The greedy slack-reclamation loop evaluates every task against a
        fresh schedule per move (O(n²) per move, O(n³·modes) worst case), so
        beyond this task count only the round-up heuristic runs — on large
        graphs the greedy loop would dominate the solve by orders of
        magnitude while typically matching round-up's quality.
    """
    round_up = solve_discrete_round_up(problem)
    if problem.graph.n_tasks > greedy_threshold:
        round_up.metadata["greedy_skipped"] = (
            f"n_tasks {problem.graph.n_tasks} > greedy_threshold {greedy_threshold}"
        )
        return round_up
    greedy = solve_discrete_greedy_reclaim(problem)
    best = round_up if round_up.energy <= greedy.energy else greedy
    best.metadata["round_up_energy"] = round_up.energy
    best.metadata["greedy_energy"] = greedy.energy
    return best
