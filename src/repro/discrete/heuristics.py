"""Polynomial heuristics for the Discrete (and Incremental) models.

Because the exact problem is NP-complete (Theorem 4), practical instances
are solved by heuristics with a-posteriori quality certificates:

* :func:`solve_discrete_round_up` — solve the Continuous relaxation (with
  ``s_max`` equal to the fastest mode) and round every ideal speed **up** to
  the next available mode.  Rounding up only shrinks durations, so the
  assignment stays feasible; this is the construction behind Theorem 5 and
  Proposition 1, and its energy is within ``(1 + gap / s)**(alpha-1)`` of
  the Continuous lower bound, where ``gap`` is the mode gap used for each
  task;
* :func:`solve_discrete_greedy_reclaim` — start from the fastest mode
  everywhere and greedily lower the mode of whichever task yields the
  largest energy saving while the ASAP schedule still meets the deadline
  (the classical slack-reclamation loop);
* :func:`solve_discrete_best_heuristic` — run both and keep the better one.

Every returned solution carries the Continuous optimum as ``lower_bound``,
so callers can report optimality gaps without solving the NP-hard problem.
"""

from __future__ import annotations

from repro.core.models import ContinuousModel, DiscreteModel, IncrementalModel
from repro.core.problem import MinEnergyProblem
from repro.core.solution import SpeedAssignment, Solution, compute_schedule, make_solution
from repro.utils.errors import InvalidModelError
from repro.utils.numerics import leq_with_tol


def _require_mode_model(problem: MinEnergyProblem) -> DiscreteModel | IncrementalModel:
    model = problem.model
    if not isinstance(model, (DiscreteModel, IncrementalModel)):
        raise InvalidModelError(
            f"expected a Discrete or Incremental model, got {model.name}"
        )
    return model


def solve_discrete_round_up(problem: MinEnergyProblem) -> Solution:
    """Round the Continuous optimum up to the next available mode.

    Feasibility: each task's duration can only decrease when its speed is
    rounded up, and the Continuous solution met every constraint, so the
    rounded assignment does too.
    """
    from repro.continuous.solve import solve_continuous

    model = _require_mode_model(problem)
    problem.ensure_feasible()
    relaxed = problem.with_model(ContinuousModel(s_max=model.max_speed))
    continuous = solve_continuous(relaxed)
    ideal = continuous.speeds()

    speeds: dict[str, float] = {}
    for name in problem.graph.task_names():
        target = max(ideal[name], model.min_speed)
        speeds[name] = model.round_up(min(target, model.max_speed))
    assignment = SpeedAssignment(speeds)
    return make_solution(
        problem, assignment, solver="discrete-round-up", optimal=False,
        lower_bound=continuous.energy,
        metadata={"continuous_solver": continuous.solver},
    )


def solve_discrete_greedy_reclaim(problem: MinEnergyProblem, *,
                                  max_passes: int | None = None) -> Solution:
    """Greedy slack reclamation: lower one task's mode at a time.

    Starting from every task at the fastest mode, each step evaluates, for
    every task not already at the slowest mode, the energy saved by dropping
    it to the next slower mode; the feasible move with the largest saving is
    applied.  The loop stops when no single-task move is feasible.

    Parameters
    ----------
    max_passes:
        Optional cap on the number of applied moves (defaults to
        ``n_tasks * n_modes``, which is an upper bound on the number of
        possible downgrades).

    Notes
    -----
    The attached ``lower_bound`` is the cheap critical-path/load bound, not
    the full Continuous optimum (which the round-up heuristic already
    computes); callers that want the tight bound should use
    :func:`repro.continuous.bounds.continuous_lower_bound` directly.
    """
    from repro.continuous.bounds import critical_path_lower_bound

    model = _require_mode_model(problem)
    problem.ensure_feasible()
    graph = problem.graph
    modes = list(model.modes)
    mode_index = {m: i for i, m in enumerate(modes)}
    power = problem.power
    deadline = problem.deadline

    current = {n: modes[-1] for n in graph.task_names()}
    if max_passes is None:
        max_passes = graph.n_tasks * len(modes)

    def is_feasible(speeds: dict[str, float]) -> bool:
        durations = {n: graph.work(n) / speeds[n] for n in graph.task_names()}
        return leq_with_tol(compute_schedule(graph, durations).makespan, deadline)

    applied = 0
    while applied < max_passes:
        best_task: str | None = None
        best_saving = 0.0
        best_new_mode = 0.0
        for name in graph.task_names():
            idx = mode_index[current[name]]
            if idx == 0:
                continue
            new_mode = modes[idx - 1]
            saving = (power.energy_for_work(graph.work(name), current[name])
                      - power.energy_for_work(graph.work(name), new_mode))
            if saving <= best_saving:
                continue
            trial = dict(current)
            trial[name] = new_mode
            if is_feasible(trial):
                best_task = name
                best_saving = saving
                best_new_mode = new_mode
        if best_task is None:
            break
        current[best_task] = best_new_mode
        applied += 1

    assignment = SpeedAssignment(current)
    lower = critical_path_lower_bound(problem)
    return make_solution(
        problem, assignment, solver="discrete-greedy-reclaim", optimal=False,
        lower_bound=lower, metadata={"moves_applied": applied},
    )


def solve_discrete_best_heuristic(problem: MinEnergyProblem) -> Solution:
    """Run both heuristics and return the one with the lower energy."""
    round_up = solve_discrete_round_up(problem)
    greedy = solve_discrete_greedy_reclaim(problem)
    best = round_up if round_up.energy <= greedy.energy else greedy
    best.metadata["round_up_energy"] = round_up.energy
    best.metadata["greedy_energy"] = greedy.energy
    return best
