"""Solvers for the Discrete energy model (Theorems 4 and 5 context).

``MinEnergy(G, D)`` with an arbitrary finite mode set is NP-complete
(Theorem 4), so this subpackage provides:

* an exact branch-and-bound solver for small instances
  (:mod:`repro.discrete.exact`);
* an exact Pareto-front dynamic program for chains and independent task
  sets (:mod:`repro.discrete.pareto_dp`);
* polynomial heuristics — rounding up the Continuous optimum and greedy
  slack reclamation — with the Continuous lower bound attached for
  a-posteriori quality ratios (:mod:`repro.discrete.heuristics`);
* the 2-Partition reduction gadget behind the NP-completeness proof,
  used by the tests and by experiment E4 (:mod:`repro.discrete.hardness`).
"""

from repro.discrete.exact import solve_discrete_exact, BranchAndBoundStats
from repro.discrete.pareto_dp import (
    solve_chain_discrete_exact,
    solve_independent_discrete_exact,
)
from repro.discrete.heuristics import (
    solve_discrete_round_up,
    solve_discrete_greedy_reclaim,
    solve_discrete_best_heuristic,
)
from repro.discrete.hardness import (
    two_partition_gadget,
    decide_two_partition_via_energy,
)
from repro.discrete.solve import solve_discrete

__all__ = [
    "solve_discrete_exact",
    "BranchAndBoundStats",
    "solve_chain_discrete_exact",
    "solve_independent_discrete_exact",
    "solve_discrete_round_up",
    "solve_discrete_greedy_reclaim",
    "solve_discrete_best_heuristic",
    "two_partition_gadget",
    "decide_two_partition_via_energy",
    "solve_discrete",
]
