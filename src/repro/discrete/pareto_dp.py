"""Exact dynamic programs for special Discrete-model structures.

Two structures admit exact algorithms that are much faster than general
branch and bound in practice:

* **independent tasks** (no edges): each task only has to finish by the
  deadline on its own, so the optimal mode is simply the slowest mode fast
  enough, chosen independently per task;
* **chains** (a single processor executing a sequence): the instance is a
  multiple-choice knapsack.  We solve it exactly by sweeping the chain and
  maintaining the Pareto front of ``(total time, total energy)`` states —
  a state is kept only if no other state is both faster and cheaper.  The
  front's size is bounded by the number of distinct achievable times, which
  stays small for the mode counts used in the experiments (the worst case
  remains exponential, as it must be for an NP-complete problem).
"""

from __future__ import annotations

from repro.core.models import DiscreteModel, IncrementalModel
from repro.core.problem import MinEnergyProblem
from repro.core.solution import SpeedAssignment, Solution, make_solution
from repro.graphs.analysis import topological_order
from repro.utils.errors import (
    InfeasibleProblemError,
    InvalidGraphError,
    InvalidModelError,
    SolverError,
)
from repro.utils.numerics import leq_with_tol


def _require_mode_model(problem: MinEnergyProblem) -> tuple[float, ...]:
    model = problem.model
    if not isinstance(model, (DiscreteModel, IncrementalModel)):
        raise InvalidModelError(
            f"expected a Discrete or Incremental model, got {model.name}"
        )
    return model.modes


def solve_independent_discrete_exact(problem: MinEnergyProblem) -> Solution:
    """Optimal Discrete solution when the execution graph has no edges.

    Every task independently picks the slowest mode that meets the deadline.

    Raises
    ------
    InvalidGraphError
        If the graph has at least one edge.
    InfeasibleProblemError
        If some task cannot meet the deadline even at the fastest mode.
    """
    graph = problem.graph
    if graph.n_edges != 0:
        raise InvalidGraphError(
            "solve_independent_discrete_exact requires a graph without edges"
        )
    modes = _require_mode_model(problem)
    deadline = problem.deadline
    speeds: dict[str, float] = {}
    for name in graph.task_names():
        work = graph.work(name)
        chosen = None
        for mode in modes:  # ascending: first feasible is the cheapest
            if leq_with_tol(work / mode, deadline):
                chosen = mode
                break
        if chosen is None:
            raise InfeasibleProblemError(
                f"task {name!r} cannot meet the deadline even at the fastest mode"
            )
        speeds[name] = chosen
    assignment = SpeedAssignment(speeds)
    return make_solution(problem, assignment, solver="discrete-independent-exact",
                         optimal=True)


def _chain_order(graph) -> list[str]:
    """Topological order of a chain graph; raises if the graph is not a chain."""
    if graph.n_tasks == 0:
        raise InvalidGraphError("empty graph")
    if graph.n_edges != graph.n_tasks - 1:
        raise InvalidGraphError("graph is not a chain (wrong edge count)")
    for n in graph.task_names():
        if graph.in_degree(n) > 1 or graph.out_degree(n) > 1:
            raise InvalidGraphError(f"task {n!r} breaks the chain structure")
    order = topological_order(graph)
    for a, b in zip(order, order[1:]):
        if not graph.has_edge(a, b):
            raise InvalidGraphError("graph is not a single connected chain")
    return order


def solve_chain_discrete_exact(problem: MinEnergyProblem, *,
                               max_states: int = 2_000_000) -> Solution:
    """Optimal Discrete solution for a chain via Pareto-front dynamic programming.

    Parameters
    ----------
    problem:
        The instance; its graph must be a chain.
    max_states:
        Safety cap on the total number of Pareto states kept across the
        sweep; exceeding it raises :class:`SolverError` (the instance has
        too many modes/tasks for the exact DP — callers fall back to the
        heuristics).

    Raises
    ------
    InfeasibleProblemError
        If the chain cannot meet the deadline at the fastest mode.
    """
    graph = problem.graph
    order = _chain_order(graph)
    modes = _require_mode_model(problem)
    problem.ensure_feasible()
    deadline = problem.deadline
    power = problem.power

    # state: (time, energy, parent_state_index, mode_chosen)
    # front holds non-dominated states for the processed prefix
    front: list[tuple[float, float, int, float]] = [(0.0, 0.0, -1, 0.0)]
    history: list[list[tuple[float, float, int, float]]] = []
    total_states = 0

    for task in order:
        work = graph.work(task)
        candidates: list[tuple[float, float, int, float]] = []
        for idx, (time, energy, _parent, _mode) in enumerate(front):
            for mode in modes:
                new_time = time + work / mode
                if not leq_with_tol(new_time, deadline):
                    continue
                new_energy = energy + power.energy_for_work(work, mode)
                candidates.append((new_time, new_energy, idx, mode))
        if not candidates:
            raise InfeasibleProblemError(
                f"no feasible mode sequence up to task {task!r} within the deadline"
            )
        # Pareto pruning: sort by time, keep strictly decreasing energy.
        candidates.sort(key=lambda s: (s[0], s[1]))
        pruned: list[tuple[float, float, int, float]] = []
        best_energy = float("inf")
        for state in candidates:
            if state[1] < best_energy - 1e-15:
                pruned.append(state)
                best_energy = state[1]
        history.append(front)
        front = pruned
        total_states += len(front)
        if total_states > max_states:
            raise SolverError(
                f"chain DP exceeded {max_states} Pareto states; reduce the number of "
                "modes or use the heuristics"
            )

    # best final state = minimum energy among feasible states
    best = min(front, key=lambda s: s[1])
    # reconstruct the mode choices
    speeds: dict[str, float] = {}
    state = best
    for level in range(len(order) - 1, -1, -1):
        speeds[order[level]] = state[3]
        parent_front = history[level]
        state = parent_front[state[2]]
    assignment = SpeedAssignment(speeds)
    return make_solution(problem, assignment, solver="discrete-chain-pareto-dp",
                         optimal=True,
                         metadata={"pareto_states": total_states})
