"""The NP-completeness gadget of Theorem 4 (reduction from 2-Partition).

Theorem 4 states that ``MinEnergy(G, D)`` is NP-complete for the
Incremental model (and a fortiori the Discrete model).  The reduction used
in the companion report maps an instance of 2-Partition — integers
``a_1..a_n`` with sum ``2S``; does a subset sum to exactly ``S``? — onto a
single-processor chain with two modes:

* the execution graph is a chain of ``n`` tasks with works ``a_i`` (a
  single processor executing all tasks, in any fixed order);
* the mode set is ``{s_slow, s_fast} = {1, 2}``;
* running the subset ``A`` at the slow mode and the rest at the fast mode
  takes ``x / 1 + (2S - x) / 2 = S + x / 2`` time units and consumes
  ``x * 1 + (2S - x) * 4 = 8S - 3x`` energy units, where ``x`` is the total
  work of ``A``;
* with deadline ``D = 3S/2`` the schedule is feasible iff ``x <= S``; with
  energy budget ``E = 5S`` it is energy-feasible iff ``x >= S``;

so a mode assignment meeting both exists **iff** some subset of the
``a_i`` sums to exactly ``S`` — i.e. iff the 2-Partition instance is a
yes-instance.  :func:`decide_two_partition_via_energy` runs the exact
Discrete solver on the gadget and reads the answer off the optimal energy,
which is how the tests exercise the reduction in both directions.
"""

from __future__ import annotations

from repro.core.models import DiscreteModel
from repro.core.problem import MinEnergyProblem
from repro.graphs.generators import chain
from repro.utils.errors import InvalidGraphError, InfeasibleProblemError
from repro.utils.numerics import leq_with_tol

#: The two modes of the reduction (slow, fast).
GADGET_MODES: tuple[float, float] = (1.0, 2.0)


def two_partition_gadget(values: list[int]) -> tuple[MinEnergyProblem, float]:
    """Build the ``MinEnergy`` gadget for a 2-Partition instance.

    Parameters
    ----------
    values:
        Positive integers ``a_1..a_n`` with an even sum ``2S``.

    Returns
    -------
    (problem, energy_budget):
        The chain instance (Discrete model, deadline ``3S/2``) and the
        energy budget ``5S``; the 2-Partition instance is a yes-instance iff
        the optimal energy of the problem is at most the budget.

    Raises
    ------
    InvalidGraphError
        If the values are not positive integers or their sum is odd.
    """
    if not values:
        raise InvalidGraphError("2-Partition needs at least one value")
    for v in values:
        if not isinstance(v, int) or v <= 0:
            raise InvalidGraphError(f"2-Partition values must be positive integers, got {v!r}")
    total = sum(values)
    if total % 2 != 0:
        raise InvalidGraphError("2-Partition values must have an even sum")
    half = total // 2

    graph = chain(len(values), works=[float(v) for v in values], name="two-partition-gadget")
    model = DiscreteModel(modes=GADGET_MODES)
    deadline = 1.5 * half
    problem = MinEnergyProblem(graph=graph, deadline=deadline, model=model,
                               name=f"2partition(n={len(values)}, S={half})")
    energy_budget = 5.0 * half
    return problem, energy_budget


def decide_two_partition_via_energy(values: list[int], *,
                                    max_nodes: int = 2_000_000) -> bool:
    """Decide a 2-Partition instance by solving its ``MinEnergy`` gadget exactly.

    Returns ``True`` iff a subset of ``values`` sums to exactly half of the
    total.  Uses the exact chain dynamic program, falling back to branch and
    bound if the chain structure check ever fails.
    """
    from repro.discrete.exact import solve_discrete_exact
    from repro.discrete.pareto_dp import solve_chain_discrete_exact

    problem, budget = two_partition_gadget(values)
    try:
        solution = solve_chain_discrete_exact(problem)
    except InvalidGraphError:
        solution = solve_discrete_exact(problem, max_nodes=max_nodes)
    except InfeasibleProblemError:
        return False
    return leq_with_tol(solution.energy, budget, rel_tol=1e-12, abs_tol=1e-6)
