"""Fleet execution: many workers, one job store.

This package turns the durable :class:`~repro.api.jobstore.JobStore` into
a work queue a fleet of machines can drain together:

:func:`submit_sharded` (``repro submit --shards N``)
    Parks N detached shard jobs of one fingerprinted grid plus a
    dependent merge job that becomes claimable once every shard is
    terminal — no coordinator process, the dependency lives in the
    records.
:class:`FleetWorker` (``repro work``)
    A claim-execute-renew loop over whatever the store offers: it claims
    through :meth:`~repro.api.jobstore.JobStore.claim` (so two workers
    never race a record), renews its lease with every heartbeat, releases
    cleanly on SIGTERM, and exits once the queue has stayed empty for
    ``--drain`` seconds.
:func:`queue_stats` / :func:`prune_records` (``/v1/queue``, ``repro jobs
    --prune``)
    The ops surface: queue depth and stale-lease counts for autoscalers,
    and age/status-based garbage collection of terminal records.

The claim/lease discipline is what makes the repo's deterministic
no-coordinator sharding (PR 3) safe in the multi-worker case: partitions
are derived identically everywhere, and the store arbitrates ownership.
"""

from repro.fleet.ops import parse_duration, prune_records, queue_stats
from repro.fleet.submit import (
    execute_merge_job,
    shard_dump_from_record,
    submit_sharded,
)
from repro.fleet.worker import FleetWorker, WorkerCrashLoopError

__all__ = [
    "FleetWorker",
    "WorkerCrashLoopError",
    "execute_merge_job",
    "parse_duration",
    "prune_records",
    "queue_stats",
    "shard_dump_from_record",
    "submit_sharded",
]
