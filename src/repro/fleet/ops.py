"""Fleet operations: queue statistics and record garbage collection.

:func:`queue_stats` is the payload of ``GET /v1/queue`` — what an
autoscaler needs to size the fleet (claimable backlog, live runners,
expired leases) — and :func:`prune_records` is ``repro jobs --prune``:
age/status-based retention over *terminal* records only, so GC can never
eat queued or running work.
"""

from __future__ import annotations

import contextlib
import re
import time
from typing import Any

from repro.api.jobstore import (
    STALE_RUNNER_SECONDS,
    JobStore,
    record_orphaned,
)
from repro.api.protocol import TERMINAL_STATUSES
from repro.utils.errors import InvalidParameterError

__all__ = ["queue_stats", "prune_records", "parse_duration"]

_DURATION_UNITS = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0,
                   "w": 604800.0}


def parse_duration(text: str) -> float:
    """Seconds from a human duration: ``"90"``, ``"90s"``, ``"15m"``,
    ``"2h"``, ``"7d"``, ``"1w"`` (fractions allowed: ``"1.5h"``)."""
    raw = str(text).strip().lower()
    match = re.fullmatch(r"(\d+(?:\.\d+)?)([smhdw]?)", raw)
    if not match:
        raise InvalidParameterError(
            f"unparsable duration {text!r}; expected e.g. 90, 90s, 15m, "
            "2h, 7d or 1w"
        )
    value = float(match.group(1)) * _DURATION_UNITS.get(match.group(2) or "s")
    if value <= 0:
        raise InvalidParameterError(f"duration must be > 0, got {text!r}")
    return value


def queue_stats(store: JobStore, *, now: float | None = None,
                stale_after: float = STALE_RUNNER_SECONDS) -> dict[str, Any]:
    """One scan's worth of queue health counters.

    ``depth`` is the claimable backlog — ready ``pending`` records plus
    expired-lease orphans — i.e. how much work an idle worker would find
    right now; ``pending_blocked`` are dependency-gated records (merge
    jobs whose shards are still running) that will join the backlog on
    their own.  ``workers`` lists the distinct lease holders of live
    running records, so ``/v1/queue`` doubles as a fleet roster.
    """
    now = time.time() if now is None else now
    records, skipped = store.scan()
    status_of = {str(r.get("job_id")): str(r.get("status") or "")
                 for r in records}
    by_status: dict[str, int] = {}
    pending_ready = pending_blocked = running_live = running_stale = 0
    workers: set[str] = set()
    oldest_ready: float | None = None
    for record in records:
        status = str(record.get("status") or "")
        by_status[status] = by_status.get(status, 0) + 1
        if status == "pending":
            # dependency check against this same snapshot: a dep missing
            # from the scan counts as satisfied, matching JobStore.claim
            blocked = any(
                status_of.get(str(dep)) not in (None, *TERMINAL_STATUSES)
                for dep in record.get("depends_on") or [])
            if blocked:
                pending_blocked += 1
            else:
                pending_ready += 1
                created = record.get("created_at")
                if isinstance(created, (int, float)):
                    oldest_ready = (float(created) if oldest_ready is None
                                    else min(oldest_ready, float(created)))
        elif status == "running":
            if record_orphaned(record, now=now, stale_after=stale_after):
                running_stale += 1
            else:
                running_live += 1
                if record.get("worker_id"):
                    workers.add(str(record["worker_id"]))
    return {
        "total": len(records),
        "by_status": by_status,
        "depth": pending_ready + running_stale,
        "pending_ready": pending_ready,
        "pending_blocked": pending_blocked,
        "running_live": running_live,
        "running_stale": running_stale,
        "workers": sorted(workers),
        "oldest_ready_age": (None if oldest_ready is None
                             else max(0.0, now - oldest_ready)),
        "unreadable": len(skipped),
    }


def prune_records(store: JobStore, *, older_than: float | None = None,
                  statuses: "tuple[str, ...] | list[str]" = TERMINAL_STATUSES,
                  dry_run: bool = False,
                  now: float | None = None) -> list[dict[str, Any]]:
    """Delete (or, with ``dry_run``, list) old terminal records.

    A record is pruned when its status is in ``statuses`` **and** it
    finished more than ``older_than`` seconds ago (``None``: any age).
    Only terminal statuses are accepted — passing ``pending`` or
    ``running`` raises :class:`ValueError`, because GC must never delete
    queued or in-flight work.  Returns a summary per pruned record.
    """
    chosen = tuple(str(s) for s in statuses)
    illegal = [s for s in chosen if s not in TERMINAL_STATUSES]
    if illegal:
        raise InvalidParameterError(
            f"--prune only accepts terminal statuses "
            f"{TERMINAL_STATUSES}, got {illegal}; pending/running records "
            "are the queue, not garbage"
        )
    if older_than is not None and older_than < 0:
        raise InvalidParameterError(f"--older-than must be >= 0, got {older_than}")
    now = time.time() if now is None else now
    records, _ = store.scan()
    pruned: list[dict[str, Any]] = []
    for record in records:
        status = str(record.get("status") or "")
        if status not in chosen:
            continue
        stamp = record.get("finished_at") or record.get("created_at")
        age = (now - float(stamp)
               if isinstance(stamp, (int, float)) else float("inf"))
        if older_than is not None and age < older_than:
            continue
        job_id = str(record.get("job_id"))
        if not dry_run:
            with contextlib.suppress(OSError):
                store.path(job_id).unlink()
            # a lock sidecar left by a dead claimer goes with the record
            with contextlib.suppress(OSError):
                (store.directory / f".{job_id}.lock").unlink()
        pruned.append({"job_id": job_id, "status": status,
                       "age_seconds": age if age != float("inf") else None})
    return pruned
