"""Shard-fanout submission and the dependent merge job.

``repro submit --shards N`` parks N+1 records in the job store: one
detached shard job per ``i/N`` slice of a single fingerprinted grid, plus
a *merge job* — a record with ``job_type="merge"`` whose ``depends_on``
lists the shard ids.  :meth:`~repro.api.jobstore.JobStore.claim` refuses
the merge job while any dependency is non-terminal, so no coordinator
process is needed: the last worker to finish a shard simply finds the
merge job claimable on its next poll.

The merge job never re-solves anything.  Each terminal shard record
carries its rows and its shard-dump manifest (fingerprint, shard
identity, full-grid coordinates), so :func:`execute_merge_job` rebuilds
:class:`~repro.batch.merge.ShardDump` objects straight from the store and
runs them through the paranoid :func:`~repro.batch.merge.merge_shard_dumps`
— fingerprint, coverage and overlap are all re-validated before the
merged table is written into the merge record.
"""

from __future__ import annotations

import dataclasses
from typing import Any

from repro.api.jobstore import JobStore, new_job_id
from repro.api.protocol import SweepRequest
from repro.batch.merge import ShardDump, merge_shard_dumps
from repro.batch.sweep import grid_identity
from repro.utils.errors import InvalidParameterError, JobStateError, MergeError

__all__ = ["submit_sharded", "execute_merge_job", "shard_dump_from_record"]


def submit_sharded(store: JobStore, request: SweepRequest, shards: int,
                   ) -> tuple[list[dict[str, Any]], dict[str, Any]]:
    """Park ``shards`` detached shard jobs plus their dependent merge job.

    Returns ``(shard_records, merge_record)``.  All records are created
    ``pending`` and unstarted — executing them is the fleet's job (``repro
    work``), which is exactly what makes the submission safe from any
    machine.  The grid is fingerprinted once (:func:`grid_identity`, no
    graphs built) and the fingerprint stamped on every record, so a
    mis-matched worker build that somehow produced different rows is
    caught by the merge, not silently blended.
    """
    if shards < 1:
        raise InvalidParameterError(f"--shards must be >= 1, got {shards}")
    if request.shard:
        raise InvalidParameterError(
            f"the base request already names shard {request.shard!r}; "
            "submit the unsharded grid and let --shards partition it"
        )
    grid, fingerprint, _ = grid_identity(method=request.method,
                                         exact=request.exact,
                                         **request.grid_kwargs())
    batch = new_job_id()
    base_name = request.name or batch
    shard_records: list[dict[str, Any]] = []
    shard_ids: list[str] = []
    for i in range(shards):
        spelling = f"{i + 1}/{shards}"
        shard_request = dataclasses.replace(
            request, shard=spelling,
            name=f"{base_name} [shard {spelling}]")
        job_id = f"{batch}-s{i + 1:02d}"
        shard_records.append(store.create(
            shard_request, job_id=job_id,
            extra={"job_type": "shard", "grid_fingerprint": fingerprint}))
        shard_ids.append(job_id)
    merge_request = dataclasses.replace(request,
                                        name=f"{base_name} [merge]")
    merge_record = store.create(
        merge_request, job_id=f"{batch}-merge",
        extra={"job_type": "merge", "depends_on": shard_ids,
               "grid_fingerprint": fingerprint, "total": len(grid)})
    return shard_records, merge_record


def shard_dump_from_record(payload: dict[str, Any]) -> ShardDump:
    """Rebuild a mergeable :class:`ShardDump` from a terminal shard record.

    A shard job's terminal record stores exactly what a ``repro sweep
    --dump`` file would: the rows plus the manifest header.  Raises
    :class:`MergeError` when the record lacks either (it never ran, or it
    predates the fleet layer).
    """
    job_id = str(payload.get("job_id") or "?")
    manifest = payload.get("manifest")
    if not isinstance(manifest, dict):
        raise MergeError(
            f"job {job_id} carries no shard manifest; only completed sweep "
            "records can feed a merge"
        )
    columns = payload.get("columns")
    if not isinstance(columns, list):
        raise MergeError(f"job {job_id} carries no result rows to merge")
    try:
        return ShardDump(
            fingerprint=str(manifest.get("fingerprint") or ""),
            shard_index=int(manifest.get("shard_index") or 0),
            shard_count=int(manifest.get("shard_count") or 1),
            strategy=str(manifest.get("strategy") or ""),
            columns=[str(c) for c in columns],
            rows=[list(r) for r in payload.get("rows") or []],
            grid=[tuple(c) for c in manifest.get("grid") or []],
            params=dict(manifest.get("params") or {}),
            title=str(payload.get("title") or ""),
            path=f"job:{job_id}",
        )
    except (TypeError, ValueError) as exc:
        raise MergeError(
            f"job {job_id}: malformed shard manifest: {exc}") from exc


def execute_merge_job(store: JobStore, job_id: str, *,
                      worker_id: str) -> str:
    """Run a claimed merge job to a terminal state; return the outcome.

    Called by :meth:`~repro.api.client.DiskTransport.run_claimed` once the
    worker holds the lease.  Every dependency must have finished ``done``
    — a failed or cancelled shard fails the merge loudly (naming the
    shard) instead of producing a gap-ridden table.  All writes are
    conditional on ``worker_id`` still holding the lease.
    """
    payload = store.load(job_id)
    try:
        deps = [str(d) for d in payload.get("depends_on") or []]
        if not deps:
            raise MergeError(
                f"merge job {job_id} lists no dependencies; nothing to merge")
        dumps = []
        for dep in deps:
            dep_payload = store.load(dep)
            status = dep_payload.get("status")
            if status != "done":
                raise MergeError(
                    f"merge job {job_id}: shard {dep} finished {status!r} "
                    f"({dep_payload.get('error') or 'no error recorded'}); "
                    "refusing to merge a partial grid"
                )
            dumps.append(shard_dump_from_record(dep_payload))
        merged = merge_shard_dumps(
            dumps, title=str(payload.get("name") or f"merge {job_id}"))
        store.transition(
            job_id, "done", expected_worker=worker_id,
            total=len(merged.rows), done=len(merged.rows),
            title=merged.title, columns=list(merged.columns),
            rows=[list(row) for row in merged.rows],
            manifest=merged.manifest,
            grid_fingerprint=str(merged.manifest.get("fingerprint") or ""))
        return "done"
    except JobStateError:
        return "lost"  # the lease was taken over; the new owner re-merges
    except Exception as exc:
        try:
            store.transition(job_id, "failed", expected_worker=worker_id,
                             error=f"{type(exc).__name__}: {exc}")
        except JobStateError:
            pass
        return "failed"
