"""The ``repro work`` loop: claim, execute, renew, release.

A :class:`FleetWorker` is one member of a fleet draining a shared
:class:`~repro.api.jobstore.JobStore`.  Its loop is deliberately simple —
all correctness lives in the store's claim/lease discipline:

1. snapshot the claimable records (ready ``pending`` jobs plus
   expired-lease orphans), oldest first;
2. try to :meth:`~repro.api.jobstore.JobStore.claim` one — losing the
   race to another worker is routine, just try the next;
3. execute the claimed record through
   :meth:`~repro.api.client.DiskTransport.run_claimed`, which renews the
   lease with every progress heartbeat and makes every write conditional
   on still owning it;
4. idle with jittered backoff when nothing is claimable, so N workers
   polling one store (or one server's filesystem) decorrelate instead of
   stampeding.

Shutdown is cooperative: SIGTERM/SIGINT set a stop event, the in-flight
job's solver futures are cancelled and the record is *released* back to
``pending`` — the rest of the fleet picks it up immediately, no lease
expiry wait, and the finished cells are already in the shared cache so
the re-run is mostly warm.  A worker that is SIGKILLed instead simply
stops renewing; its lease expires and any peer reclaims the job.
"""

from __future__ import annotations

import random
import signal
import threading
import time
from typing import Any

from repro.api.client import DiskTransport
from repro.utils.errors import (
    InvalidParameterError,
    JobStateError,
    TransportError,
    UnknownJobError,
    WorkerCrashLoopError,
)

__all__ = ["FleetWorker", "WorkerCrashLoopError", "DEFAULT_MAX_STRIKES"]

#: Idle backoff bounds of the claim loop (seconds between empty polls).
_IDLE_INITIAL = 0.1
_IDLE_MAX = 2.0
_IDLE_FACTOR = 1.6

#: Crash-loop guard: consecutive loop-level failures tolerated before the
#: worker gives up, and the backoff bounds between strikes.
DEFAULT_MAX_STRIKES = 5
_STRIKE_INITIAL = 0.2
_STRIKE_MAX = 5.0


class FleetWorker:
    """One fleet member: a claim-execute loop over a shared job store.

    ``drain`` is the idle timeout: once the store has offered nothing
    claimable for that many consecutive seconds the loop exits (the CI
    and batch-queue mode).  ``drain=None`` runs forever (the daemon
    mode).  All lease/heartbeat timings come from the underlying
    :class:`DiskTransport` and are env-configurable
    (``REPRO_LEASE_SECONDS`` etc.); ``worker_id`` defaults to
    ``host-pid``.
    """

    def __init__(self, jobs_dir: str, *, cache_dir: str | None = None,
                 workers: int = 2, use_threads: bool = False,
                 worker_id: str | None = None,
                 stale_after: float | None = None,
                 heartbeat_seconds: float | None = None,
                 lease_seconds: float | None = None,
                 drain: float | None = None,
                 poll_interval: float = _IDLE_INITIAL,
                 max_strikes: int = DEFAULT_MAX_STRIKES,
                 rng: "random.Random | None" = None) -> None:
        if drain is not None and drain <= 0:
            raise InvalidParameterError(f"--drain must be > 0 seconds, got {drain}")
        if max_strikes < 1:
            raise InvalidParameterError(f"--max-strikes must be >= 1, got {max_strikes}")
        self.transport = DiskTransport(
            jobs_dir, cache_dir=cache_dir, workers=workers,
            use_threads=use_threads, stale_after=stale_after,
            heartbeat_seconds=heartbeat_seconds, lease_seconds=lease_seconds,
            worker_id=worker_id)
        self.store = self.transport.store
        self.worker_id = self.transport.worker_id
        self.drain = drain
        self.poll_interval = poll_interval
        self.max_strikes = max_strikes
        self.stats: dict[str, Any] = {"claimed": 0, "outcomes": {},
                                      "strikes": 0, "last_error": None}
        self._stop = threading.Event()
        self._rng = rng if rng is not None else random.Random()

    # ------------------------------------------------------------------ #
    # shutdown
    # ------------------------------------------------------------------ #
    def stop(self) -> None:
        """Request a cooperative shutdown (idempotent, signal-safe)."""
        self._stop.set()

    def should_stop(self) -> bool:
        return self._stop.is_set()

    def install_signal_handlers(self) -> None:
        """Release-on-SIGTERM: route SIGTERM/SIGINT into :meth:`stop`.

        Main-thread only (the CLI path).  The in-flight job is then
        released back to ``pending`` by ``run_claimed``'s ``should_stop``
        check instead of dying mid-lease.
        """
        for signum in (signal.SIGTERM, signal.SIGINT):
            signal.signal(signum, self._on_signal)

    def _on_signal(self, signum, frame) -> None:  # pragma: no cover - signal
        self.stop()

    # ------------------------------------------------------------------ #
    # the loop
    # ------------------------------------------------------------------ #
    def run_one(self) -> str | None:
        """Claim and fully execute one record; ``None`` if none claimable.

        Losing a claim race (another worker got there first, a lease
        turned out to be live, a record vanished under us) just moves on
        to the next candidate — the store is the arbiter, the snapshot is
        advisory.
        """
        for candidate in self.store.claimable(
                stale_after=self.transport.stale_after):
            if self._stop.is_set():
                return None
            job_id = str(candidate.get("job_id"))
            try:
                self.store.claim(job_id, self.worker_id,
                                 self.transport.lease_seconds)
            except (JobStateError, UnknownJobError, TransportError):
                continue
            self.stats["claimed"] += 1
            try:
                request = self.store.request(job_id)
            except TransportError as exc:
                # claimed a record we cannot execute: fail it loudly
                # rather than bouncing it around the fleet forever
                try:
                    self.store.transition(
                        job_id, "failed", expected_worker=self.worker_id,
                        error=f"{type(exc).__name__}: {exc}")
                except JobStateError:
                    pass
                outcome = "failed"
            else:
                outcome = self.transport.run_claimed(
                    job_id, request, should_stop=self.should_stop)
            outcomes = self.stats["outcomes"]
            outcomes[outcome] = outcomes.get(outcome, 0) + 1
            return outcome
        return None

    def run(self) -> dict[str, Any]:
        """Drain the queue until stopped (or idle past ``drain``).

        A loop-level failure (the store raising out of :meth:`run_one`
        itself, not a job merely *failing*) is a strike: the loop sleeps
        with exponential backoff instead of spinning at full speed against
        a broken store, and after ``max_strikes`` consecutive strikes it
        raises :class:`WorkerCrashLoopError` so the process exits non-zero
        instead of crash-looping forever.  Any successful poll — even an
        empty one — clears the strike count.
        """
        idle_since: float | None = None
        interval = self.poll_interval
        strikes = 0
        strike_sleep = _STRIKE_INITIAL
        while not self._stop.is_set():
            try:
                outcome = self.run_one()
            except TransportError as exc:
                strikes += 1
                self.stats["strikes"] = strikes
                self.stats["last_error"] = f"{type(exc).__name__}: {exc}"
                if strikes >= self.max_strikes:
                    raise WorkerCrashLoopError(
                        f"worker {self.worker_id} struck out: "
                        f"{strikes} consecutive loop failures, last: "
                        f"{type(exc).__name__}: {exc}") from exc
                # full-jitter crash backoff; Event.wait so stop() wakes us
                self._stop.wait(
                    strike_sleep - strike_sleep * self._rng.random())
                strike_sleep = min(strike_sleep * 2.0, _STRIKE_MAX)
                continue
            strikes = 0
            strike_sleep = _STRIKE_INITIAL
            self.stats["strikes"] = 0
            if outcome is not None:
                idle_since = None
                interval = self.poll_interval
                continue
            now = time.monotonic()
            if idle_since is None:
                idle_since = now
            if self.drain is not None and now - idle_since >= self.drain:
                break
            # full-jitter idle sleep; Event.wait so stop() wakes us at once
            self._stop.wait(interval - interval * self._rng.random())
            interval = min(interval * _IDLE_FACTOR, _IDLE_MAX)
        return self.summary()

    def summary(self) -> dict[str, Any]:
        """The loop's final report (the ``repro work`` JSON output)."""
        return {
            "worker_id": self.worker_id,
            "claimed": self.stats["claimed"],
            "outcomes": dict(self.stats["outcomes"]),
            "stopped": self._stop.is_set(),
            "strikes": self.stats["strikes"],
            "last_error": self.stats["last_error"],
        }
