"""Declarative LP / convex model builder.

Every optimisation path of the library used to hand-roll its own COO/CSR
constraint assembly: the Vdd-Hopping LP, the sparse Continuous program and
the discrete relaxation each re-derived the same precedence polytope.  This
module replaces those three copies with one declaration layer:

* variables are declared as **named blocks** with per-variable bounds
  (:meth:`_BaseModel.add_variables`);
* constraints are declared as **named blocks of COO triplets** against
  those variable blocks (:meth:`_BaseModel.add_constraints`) — columns are
  block-local, so a declaration never needs to know the global layout;
* the objective is either a linear cost vector (:class:`LinearModel`) or a
  declarative power form ``sum w_i * x_i ** p`` over one block
  (:class:`ConvexModel`) from which a consuming backend derives values,
  gradients and Hessians itself.

:meth:`materialize` turns the declaration into canonical solver inputs —
``c, A_eq, b_eq, A_ub, b_ub`` CSR for an LP, an inequality-only ``G, h``
CSR (finite variable bounds folded into rows) for a convex program —
**exactly once**: the result is cached on the model, stamped with its
assembly wall-clock (``build_seconds``) and a content hash
(``fingerprint``) suitable for result-cache keys, and the model is frozen
against further edits so a fingerprint can never go stale.

Backends that consume materialised models live in
:mod:`repro.modeling.backends`; the shared precedence-polytope declaration
is :func:`repro.modeling.precedence.declare_precedence`.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

import numpy as np
from scipy import sparse

from repro.utils.errors import SolverError


@dataclass(frozen=True)
class VariableBlock:
    """A named, contiguous run of decision variables.

    ``lower``/``upper`` are per-variable bound arrays (``-inf``/``+inf``
    for unbounded).  ``offset`` is the block's first global column; the
    block object itself is what constraint declarations reference, so
    callers never compute global columns by hand.
    """

    name: str
    size: int
    offset: int
    lower: np.ndarray
    upper: np.ndarray

    def columns(self, local: np.ndarray | Sequence[int]) -> np.ndarray:
        """Global column indices of block-local variable indices."""
        return self.offset + np.asarray(local, dtype=np.int64)


@dataclass(frozen=True)
class PowerObjective:
    """The declarative objective ``sum_i weights[i] * x[offset + i] ** exponent``.

    Convex for positive weights whenever ``exponent >= 1`` or
    ``exponent <= 0`` and ``x > 0`` — the energy objective
    ``sum w_i**alpha * d_i**(1 - alpha)`` of the paper is the
    ``exponent = 1 - alpha`` instance.  Backends derive what they need:

    * value     ``sum(w * x**p)``
    * gradient  ``w * p * x**(p - 1)`` over the block, zero elsewhere
    * Hessian   ``diag(w * p * (p - 1) * x**(p - 2))`` over the block
    """

    offset: int
    size: int
    weights: np.ndarray
    exponent: float

    def block_slice(self) -> slice:
        return slice(self.offset, self.offset + self.size)

    def value(self, x: np.ndarray) -> float:
        return float(np.sum(self.weights * x[self.block_slice()] ** self.exponent))

    def gradient(self, x: np.ndarray) -> np.ndarray:
        grad = np.zeros(len(x))
        xb = x[self.block_slice()]
        grad[self.block_slice()] = self.weights * self.exponent * xb ** (self.exponent - 1.0)
        return grad

    def hessian_diagonal(self, x: np.ndarray) -> np.ndarray:
        hess = np.zeros(len(x))
        xb = x[self.block_slice()]
        hess[self.block_slice()] = (self.weights * self.exponent
                                    * (self.exponent - 1.0)
                                    * xb ** (self.exponent - 2.0))
        return hess


@dataclass
class _ConstraintBlock:
    """One declared constraint block, already in global-column COO form."""

    name: str
    sense: str  # "eq" or "ub"
    n_rows: int
    rhs: np.ndarray
    rows: np.ndarray
    cols: np.ndarray
    data: np.ndarray


@dataclass(frozen=True)
class MaterializedLP:
    """Canonical LP inputs: ``min c @ x`` s.t. equalities, inequalities, bounds."""

    name: str
    kind: str
    n_vars: int
    c: np.ndarray
    a_eq: sparse.csr_matrix
    b_eq: np.ndarray
    a_ub: sparse.csr_matrix
    b_ub: np.ndarray
    lower: np.ndarray
    upper: np.ndarray
    fingerprint: str
    build_seconds: float

    @property
    def bounds(self) -> list[tuple[float, float | None]]:
        """``scipy.optimize.linprog``-style per-variable bound pairs."""
        return [(float(lo), None if np.isinf(hi) else float(hi))
                for lo, hi in zip(self.lower, self.upper)]


@dataclass(frozen=True)
class MaterializedConvex:
    """Canonical convex-program inputs: objective over ``G x <= h`` (CSR).

    Finite variable bounds are folded into rows of ``G`` (upper bounds
    first across blocks, then lower bounds) so interior-point consumers see
    one homogeneous inequality system.
    """

    name: str
    kind: str
    n_vars: int
    g_matrix: sparse.csr_matrix
    h: np.ndarray
    objective: PowerObjective | None
    fingerprint: str
    build_seconds: float


class _BaseModel:
    """Shared declaration machinery of :class:`LinearModel` / :class:`ConvexModel`."""

    kind = ""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._blocks: dict[str, VariableBlock] = {}
        self._constraints: list[_ConstraintBlock] = []
        self._n_vars = 0
        self._materialized: Any = None

    # ------------------------------------------------------------------ #
    # declaration
    # ------------------------------------------------------------------ #
    def add_variables(self, name: str, size: int, *,
                      lower: float | np.ndarray | None = 0.0,
                      upper: float | np.ndarray | None = None) -> VariableBlock:
        """Declare ``size`` variables as the named block; returns the block.

        ``lower=None`` / ``upper=None`` mean unbounded on that side.
        """
        self._check_open("add_variables")
        if name in self._blocks:
            raise SolverError(f"variable block {name!r} declared twice")
        if size < 0:
            raise SolverError(f"variable block {name!r} has negative size {size}")
        lo = np.full(size, -np.inf) if lower is None else np.broadcast_to(
            np.asarray(lower, dtype=float), (size,)).copy()
        hi = np.full(size, np.inf) if upper is None else np.broadcast_to(
            np.asarray(upper, dtype=float), (size,)).copy()
        block = VariableBlock(name=name, size=size, offset=self._n_vars,
                              lower=lo, upper=hi)
        self._blocks[name] = block
        self._n_vars += size
        return block

    def block(self, name: str) -> VariableBlock:
        try:
            return self._blocks[name]
        except KeyError:
            declared = ", ".join(self._blocks) or "<none>"
            raise SolverError(
                f"unknown variable block {name!r} (declared: {declared})"
            ) from None

    @property
    def n_variables(self) -> int:
        return self._n_vars

    def add_constraints(self, name: str, *, sense: str,
                        rhs: np.ndarray | Sequence[float],
                        terms: Iterable[tuple[VariableBlock, np.ndarray,
                                              np.ndarray, np.ndarray | float]],
                        ) -> None:
        """Declare a block of ``sense`` constraints from COO triplet terms.

        Each term is ``(block, rows, local_cols, data)``: ``rows`` are
        block-local row indices (0-based within this constraint block),
        ``local_cols`` index into ``block``, and scalar ``data``
        broadcasts.  Duplicate ``(row, col)`` entries sum, as in COO.
        """
        self._check_open("add_constraints")
        if sense not in ("eq", "ub"):
            raise SolverError(f"constraint sense must be 'eq' or 'ub', got {sense!r}")
        rhs_arr = np.asarray(rhs, dtype=float)
        n_rows = len(rhs_arr)
        all_rows: list[np.ndarray] = []
        all_cols: list[np.ndarray] = []
        all_data: list[np.ndarray] = []
        for block, rows, local_cols, data in terms:
            rows_arr = np.asarray(rows, dtype=np.int64)
            cols_arr = block.columns(local_cols)
            if rows_arr.size and (rows_arr.min() < 0 or rows_arr.max() >= n_rows):
                raise SolverError(
                    f"constraint block {name!r}: row indices outside "
                    f"[0, {n_rows})"
                )
            local = np.asarray(local_cols, dtype=np.int64)
            if local.size and (local.min() < 0 or local.max() >= block.size):
                raise SolverError(
                    f"constraint block {name!r}: columns outside variable "
                    f"block {block.name!r} of size {block.size}"
                )
            data_arr = np.broadcast_to(np.asarray(data, dtype=float),
                                       rows_arr.shape).copy()
            all_rows.append(rows_arr)
            all_cols.append(cols_arr)
            all_data.append(data_arr)
        self._constraints.append(_ConstraintBlock(
            name=name, sense=sense, n_rows=n_rows, rhs=rhs_arr,
            rows=np.concatenate(all_rows) if all_rows else np.empty(0, np.int64),
            cols=np.concatenate(all_cols) if all_cols else np.empty(0, np.int64),
            data=np.concatenate(all_data) if all_data else np.empty(0, float),
        ))

    def _check_open(self, action: str) -> None:
        if self._materialized is not None:
            raise SolverError(
                f"cannot {action}: model {self.name!r} is frozen (it was "
                "already materialised and its fingerprint is cached)"
            )

    # ------------------------------------------------------------------ #
    # materialisation helpers
    # ------------------------------------------------------------------ #
    def _stack_sense(self, sense: str) -> tuple[sparse.csr_matrix, np.ndarray]:
        """One CSR matrix + rhs for all constraint blocks of ``sense``."""
        blocks = [c for c in self._constraints if c.sense == sense]
        n_rows = sum(c.n_rows for c in blocks)
        rows: list[np.ndarray] = []
        cols: list[np.ndarray] = []
        data: list[np.ndarray] = []
        rhs: list[np.ndarray] = []
        row_offset = 0
        for c in blocks:
            rows.append(c.rows + row_offset)
            cols.append(c.cols)
            data.append(c.data)
            rhs.append(c.rhs)
            row_offset += c.n_rows
        matrix = sparse.csr_matrix(
            (np.concatenate(data) if data else np.empty(0, float),
             (np.concatenate(rows) if rows else np.empty(0, np.int64),
              np.concatenate(cols) if cols else np.empty(0, np.int64))),
            shape=(n_rows, self._n_vars))
        return matrix, (np.concatenate(rhs) if rhs else np.empty(0, float))

    def _fingerprint(self, extra: Iterable[bytes]) -> str:
        """Content hash of the declaration (order-sensitive by design)."""
        digest = hashlib.sha256()
        digest.update(f"{self.kind}:{self._n_vars}".encode())
        for block in self._blocks.values():
            digest.update(f"|b:{block.name}:{block.size}:{block.offset}".encode())
            digest.update(np.ascontiguousarray(block.lower).tobytes())
            digest.update(np.ascontiguousarray(block.upper).tobytes())
        for c in self._constraints:
            digest.update(f"|c:{c.name}:{c.sense}:{c.n_rows}".encode())
            for arr in (c.rows, c.cols, c.data, c.rhs):
                digest.update(np.ascontiguousarray(arr).tobytes())
        for chunk in extra:
            digest.update(chunk)
        return digest.hexdigest()[:16]


class LinearModel(_BaseModel):
    """A declarative linear program: blocks, eq/ub constraint blocks, ``c``."""

    kind = "lp"

    def __init__(self, name: str = "") -> None:
        super().__init__(name)
        self._objective_terms: list[tuple[VariableBlock, np.ndarray]] = []

    def add_objective(self, block: VariableBlock,
                      coefficients: np.ndarray | Sequence[float]) -> None:
        """Add linear cost ``coefficients @ x[block]`` (blocks accumulate)."""
        self._check_open("add_objective")
        coeffs = np.broadcast_to(np.asarray(coefficients, dtype=float),
                                 (block.size,)).copy()
        self._objective_terms.append((block, coeffs))

    def materialize(self) -> MaterializedLP:
        """Assemble (once) and return the canonical LP arrays."""
        if self._materialized is not None:
            return self._materialized
        start = time.perf_counter()
        c = np.zeros(self._n_vars)
        for block, coeffs in self._objective_terms:
            c[block.offset:block.offset + block.size] += coeffs
        a_eq, b_eq = self._stack_sense("eq")
        a_ub, b_ub = self._stack_sense("ub")
        lower = np.concatenate([b.lower for b in self._blocks.values()]) \
            if self._blocks else np.empty(0)
        upper = np.concatenate([b.upper for b in self._blocks.values()]) \
            if self._blocks else np.empty(0)
        fingerprint = self._fingerprint([b"|obj:", c.tobytes()])
        self._materialized = MaterializedLP(
            name=self.name, kind=self.kind, n_vars=self._n_vars, c=c,
            a_eq=a_eq, b_eq=b_eq, a_ub=a_ub, b_ub=b_ub,
            lower=lower, upper=upper, fingerprint=fingerprint,
            build_seconds=time.perf_counter() - start)
        return self._materialized


class ConvexModel(_BaseModel):
    """A declarative convex program: power objective over ``G x <= h``."""

    kind = "convex"

    def __init__(self, name: str = "") -> None:
        super().__init__(name)
        self._objective: PowerObjective | None = None

    def add_power_objective(self, block: VariableBlock,
                            weights: np.ndarray | Sequence[float],
                            exponent: float) -> None:
        """Declare ``sum weights * x[block] ** exponent`` as the objective."""
        self._check_open("add_power_objective")
        if self._objective is not None:
            raise SolverError(
                f"model {self.name!r} already declared a power objective"
            )
        w = np.broadcast_to(np.asarray(weights, dtype=float), (block.size,)).copy()
        self._objective = PowerObjective(offset=block.offset, size=block.size,
                                         weights=w, exponent=float(exponent))

    def materialize(self) -> MaterializedConvex:
        """Assemble (once) the inequality-only ``G, h`` system.

        Constraint blocks come first in declaration order; finite variable
        bounds follow as folded rows — upper bounds (``x_j <= u_j``) across
        all blocks, then lower bounds (``-x_j <= -l_j``) — so the row
        layout is deterministic and bound rows participate in the same
        slack/multiplier machinery as every other row.
        """
        if self._materialized is not None:
            return self._materialized
        if any(c.sense == "eq" for c in self._constraints):
            raise SolverError(
                f"convex model {self.name!r} declared equality rows; the "
                "inequality-only materialisation has no equality support"
            )
        start = time.perf_counter()
        g_decl, h_decl = self._stack_sense("ub")
        lower = np.concatenate([b.lower for b in self._blocks.values()]) \
            if self._blocks else np.empty(0)
        upper = np.concatenate([b.upper for b in self._blocks.values()]) \
            if self._blocks else np.empty(0)
        up_cols = np.flatnonzero(np.isfinite(upper))
        lo_cols = np.flatnonzero(np.isfinite(lower))
        parts = [g_decl]
        rhs_parts = [h_decl]
        if len(up_cols):
            parts.append(sparse.csr_matrix(
                (np.ones(len(up_cols)),
                 (np.arange(len(up_cols)), up_cols)),
                shape=(len(up_cols), self._n_vars)))
            rhs_parts.append(upper[up_cols])
        if len(lo_cols):
            parts.append(sparse.csr_matrix(
                (-np.ones(len(lo_cols)),
                 (np.arange(len(lo_cols)), lo_cols)),
                shape=(len(lo_cols), self._n_vars)))
            rhs_parts.append(-lower[lo_cols])
        g_matrix = sparse.vstack(parts, format="csr") if len(parts) > 1 \
            else g_decl
        h = np.concatenate(rhs_parts)
        obj = self._objective
        extra = [b"|pow:"]
        if obj is not None:
            extra.append(f"{obj.offset}:{obj.size}:{obj.exponent}".encode())
            extra.append(obj.weights.tobytes())
        fingerprint = self._fingerprint(extra)
        self._materialized = MaterializedConvex(
            name=self.name, kind=self.kind, n_vars=self._n_vars,
            g_matrix=g_matrix, h=h, objective=obj, fingerprint=fingerprint,
            build_seconds=time.perf_counter() - start)
        return self._materialized
