"""Registry of interchangeable consumers of materialised models.

Mirrors the :class:`repro.core.registry.SolverRegistry` pattern one layer
down: where that registry maps ``(energy model, method)`` to solver
functions, this one maps a **backend name** to a consumer of materialised
:class:`~repro.modeling.model.MaterializedLP` /
:class:`~repro.modeling.model.MaterializedConvex` systems.  Adding a
backend is a registration, not a rewrite:

* each entry declares which model ``kinds`` it consumes (``"lp"``,
  ``"convex"``) and its option schema (the same
  :class:`~repro.core.registry.OptionSpec` machinery, so the CLI can show
  it and validation errors are typed);
* **optional** backends carry an import ``probe`` and register
  unconditionally — :meth:`BackendRegistry.availability` runs the probe
  lazily (and caches it), so ``repro backends`` can list what is missing
  and why, and the parity suite can skip instead of fail;
* :meth:`BackendRegistry.solve` is the single solve path: it materialises
  the model (cached — the "declare once" guarantee), validates options,
  times the backend, and stamps every result's metadata with the backend
  name, ``build_seconds``, ``solve_seconds`` and the model fingerprint.

Unknown names raise :class:`~repro.utils.errors.UnknownBackendError`
listing the registered/available sets; resolving an uninstalled optional
backend raises :class:`~repro.utils.errors.BackendUnavailableError` with
the probe's reason.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping

import numpy as np

from repro.core.registry import OptionSpec
from repro.utils.errors import (
    BackendUnavailableError,
    UnknownBackendError,
    UnknownOptionError,
)

#: Default backend per model kind (used when a solve passes ``backend=None``).
DEFAULT_BACKEND = {"lp": "highs", "convex": "mehrotra-ipm"}


@dataclass(frozen=True)
class BackendSolveResult:
    """Outcome of one backend solve: the point, its objective, diagnostics."""

    x: np.ndarray
    objective: float
    metadata: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class ModelBackend:
    """One registered backend entry.

    ``fn`` takes ``(materialized, options, hints)`` and returns
    ``(x, objective, metadata)``.  ``hints`` carries solver-specific,
    non-identity extras (a warm-start point, a relative-step mask) that a
    backend is free to ignore.
    """

    name: str
    fn: Callable[..., tuple[np.ndarray, float, dict[str, Any]]]
    kinds: tuple[str, ...]
    options: tuple[OptionSpec, ...] = ()
    probe: Callable[[], str | None] | None = None
    optional: bool = False
    doc: str = ""

    def accepts(self, option: str) -> bool:
        """Whether this backend declared the named option."""
        return any(spec.name == option for spec in self.options)

    def validate_options(self, options: Mapping[str, Any]) -> dict[str, Any]:
        known = {spec.name: spec for spec in self.options}
        clean: dict[str, Any] = {}
        for key in options:
            if key not in known:
                valid = ", ".join(sorted(known)) or "<none>"
                raise UnknownOptionError(
                    f"backend {self.name!r} rejected option {key!r}: not in "
                    f"its declared schema (valid options: {valid})"
                )
            clean[key] = known[key].validate(options[key], method=self.name)
        return clean


class BackendRegistry:
    """Name → :class:`ModelBackend` mapping plus the shared solve path."""

    def __init__(self) -> None:
        self._backends: dict[str, ModelBackend] = {}
        self._availability: dict[str, str | None] = {}
        self._routes: dict[str, set[str]] = {}

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #
    def register(self, name: str, *, kinds: Iterable[str],
                 options: Iterable[OptionSpec] = (),
                 probe: Callable[[], str | None] | None = None,
                 optional: bool = False, doc: str = "",
                 ) -> Callable[[Callable], Callable]:
        """Decorator registering ``fn`` as the named backend.

        ``probe`` returns ``None`` when the backend is usable or a reason
        string when it is not (its result is cached on first use).
        Re-registering a name replaces the entry, keeping reloads
        idempotent.
        """

        def decorate(fn: Callable) -> Callable:
            doc_lines = (doc or fn.__doc__ or "").strip().splitlines()
            self._backends[name] = ModelBackend(
                name=name, fn=fn, kinds=tuple(kinds),
                options=tuple(options), probe=probe, optional=optional,
                doc=doc_lines[0] if doc_lines else "")
            self._availability.pop(name, None)
            return fn

        return decorate

    def announce_route(self, kind: str, route: str) -> None:
        """Record that a solver path (e.g. ``vdd-hopping/lp``) consumes ``kind``.

        Purely informational: ``repro backends`` uses it to show which
        registered solve paths each backend serves.
        """
        self._routes.setdefault(kind, set()).add(route)

    def routes(self, kind: str) -> list[str]:
        return sorted(self._routes.get(kind, ()))

    # ------------------------------------------------------------------ #
    # resolution / introspection
    # ------------------------------------------------------------------ #
    def names(self) -> list[str]:
        return sorted(self._backends)

    def resolve(self, name: str, *, kind: str | None = None) -> ModelBackend:
        """Return the entry for ``name``, checking kind and availability.

        Raises :class:`UnknownBackendError` for unregistered names and for
        backends that do not consume ``kind``;
        :class:`BackendUnavailableError` for probe-gated backends whose
        probe failed.
        """
        entry = self._backends.get(name)
        if entry is None:
            raise UnknownBackendError(
                f"unknown backend {name!r} (registered backends: "
                f"{', '.join(self.names()) or '<none>'}; available for this "
                f"environment: {', '.join(self.available()) or '<none>'})"
            )
        if kind is not None and kind not in entry.kinds:
            fitting = sorted(n for n, e in self._backends.items()
                             if kind in e.kinds)
            raise UnknownBackendError(
                f"backend {name!r} does not consume {kind!r} models "
                f"(it handles: {', '.join(entry.kinds)}); backends for "
                f"{kind!r}: {', '.join(fitting) or '<none>'}"
            )
        reason = self.availability(name)
        if reason is not None:
            raise BackendUnavailableError(
                f"backend {name!r} is registered but not usable here: "
                f"{reason}"
            )
        return entry

    def availability(self, name: str) -> str | None:
        """``None`` when the backend is usable, else the probe's reason."""
        if name not in self._backends:
            raise UnknownBackendError(
                f"unknown backend {name!r} (registered backends: "
                f"{', '.join(self.names()) or '<none>'})"
            )
        if name not in self._availability:
            probe = self._backends[name].probe
            self._availability[name] = probe() if probe is not None else None
        return self._availability[name]

    def available(self, kind: str | None = None) -> list[str]:
        """Names of usable backends (optionally restricted to one kind)."""
        out = []
        for name, entry in sorted(self._backends.items()):
            if kind is not None and kind not in entry.kinds:
                continue
            if self.availability(name) is None:
                out.append(name)
        return out

    def describe(self) -> list[dict[str, Any]]:
        """Flat description of every backend (for the CLI and docs)."""
        out: list[dict[str, Any]] = []
        for name in self.names():
            entry = self._backends[name]
            reason = self.availability(name)
            out.append({
                "name": name,
                "kinds": list(entry.kinds),
                "optional": entry.optional,
                "available": reason is None,
                "reason": reason,
                "default_for": sorted(k for k, v in DEFAULT_BACKEND.items()
                                      if v == name),
                "routes": sorted(r for k in entry.kinds
                                 for r in self.routes(k)),
                "options": {spec.name: spec.doc for spec in entry.options},
                "doc": entry.doc,
            })
        return out

    # ------------------------------------------------------------------ #
    # the shared solve path
    # ------------------------------------------------------------------ #
    def solve(self, model: Any, *, backend: str | None = None,
              options: Mapping[str, Any] | None = None,
              hints: Mapping[str, Any] | None = None) -> BackendSolveResult:
        """Materialise ``model`` (cached) and run the requested backend.

        ``backend=None`` picks the kind's default.  The returned metadata
        always carries ``backend``, ``build_seconds``, ``solve_seconds``
        and ``model_fingerprint`` next to whatever the backend reported.
        """
        name = backend or DEFAULT_BACKEND[model.kind]
        entry = self.resolve(name, kind=model.kind)
        clean = entry.validate_options(options or {})
        materialized = model.materialize()
        start = time.perf_counter()
        x, objective, metadata = entry.fn(materialized, clean,
                                          dict(hints or {}))
        solve_seconds = time.perf_counter() - start
        merged = dict(metadata)
        merged.update({
            "backend": name,
            "build_seconds": float(materialized.build_seconds),
            "solve_seconds": float(solve_seconds),
            "model_fingerprint": materialized.fingerprint,
        })
        return BackendSolveResult(x=x, objective=float(objective),
                                  metadata=merged)


#: The process-wide backend registry.  The built-in backends register at
#: :mod:`repro.modeling.backends` import time; optional ones are probe-gated.
BACKENDS = BackendRegistry()
