"""Optional cvxpy backends (``cvxpy``, ``ecos``, ``scs``), probe-gated.

cvxpy is not a dependency of the library: these backends register
unconditionally so ``repro backends`` can list them, but each carries an
import probe that the registry runs lazily — when cvxpy (or the named
solver behind it) is not installed, resolution raises a typed
:class:`~repro.utils.errors.BackendUnavailableError` with the probe's
reason and the parity suite skips instead of failing.  No module-level
``import cvxpy`` exists anywhere, so the library imports cleanly without
it.

``cvxpy`` lets cvxpy pick its own solver; ``ecos`` and ``scs`` pin the
respective solver, turning cvxpy's installed-solver set into registry
entries of their own (the Snippet-2 per-solver availability pattern).
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro.modeling.backends.registry import BACKENDS
from repro.modeling.model import MaterializedConvex, MaterializedLP
from repro.utils.errors import SolverError

_OK_STATUSES = ("optimal", "optimal_inaccurate")


def _probe_cvxpy() -> str | None:
    try:
        import cvxpy  # noqa: F401
    except ImportError:
        return "the 'cvxpy' package is not installed"
    return None


def _probe_solver(solver: str):
    def probe() -> str | None:
        reason = _probe_cvxpy()
        if reason is not None:
            return reason
        import cvxpy as cp

        if solver not in cp.installed_solvers():
            return (f"cvxpy is installed but its {solver} solver is not "
                    f"(installed: {', '.join(cp.installed_solvers())})")
        return None

    return probe


def _solve_with_cvxpy(mat: MaterializedLP | MaterializedConvex,
                      solver: str | None
                      ) -> tuple[np.ndarray, float, dict[str, Any]]:
    import cvxpy as cp

    x = cp.Variable(mat.n_vars)
    constraints = []
    if mat.kind == "lp":
        objective = cp.Minimize(mat.c @ x)
        if mat.a_eq.shape[0]:
            constraints.append(mat.a_eq @ x == mat.b_eq)
        if mat.a_ub.shape[0]:
            constraints.append(mat.a_ub @ x <= mat.b_ub)
        finite_lo = np.isfinite(mat.lower)
        finite_hi = np.isfinite(mat.upper)
        if finite_lo.any():
            constraints.append(x[finite_lo] >= mat.lower[finite_lo])
        if finite_hi.any():
            constraints.append(x[finite_hi] <= mat.upper[finite_hi])
    else:
        obj = mat.objective
        if obj is None:
            raise SolverError(
                f"cvxpy backend needs a power objective on model {mat.name!r}"
            )
        xb = x[obj.block_slice()]
        objective = cp.Minimize(
            cp.sum(cp.multiply(obj.weights, cp.power(xb, obj.exponent))))
        constraints.append(mat.g_matrix @ x <= mat.h)
    prob = cp.Problem(objective, constraints)
    kwargs = {"solver": solver} if solver else {}
    try:
        prob.solve(**kwargs)
    except cp.error.SolverError as exc:
        raise SolverError(
            f"cvxpy failed on model {mat.name!r}: {exc}"
        ) from exc
    if prob.status not in _OK_STATUSES or x.value is None:
        raise SolverError(
            f"cvxpy reports model {mat.name!r} is {prob.status}"
        )
    metadata: dict[str, Any] = {"cvxpy_status": prob.status}
    if solver:
        metadata["cvxpy_solver"] = solver
    return np.asarray(x.value, dtype=float), float(prob.value), metadata


@BACKENDS.register("cvxpy", kinds=("lp", "convex"), probe=_probe_cvxpy,
                   optional=True,
                   doc="cvxpy modeling front-end (solver auto-selected)")
def _solve_cvxpy(mat, options: Mapping[str, Any], hints: Mapping[str, Any]):
    return _solve_with_cvxpy(mat, None)


@BACKENDS.register("ecos", kinds=("lp", "convex"), probe=_probe_solver("ECOS"),
                   optional=True,
                   doc="ECOS interior-point cone solver via cvxpy")
def _solve_ecos(mat, options: Mapping[str, Any], hints: Mapping[str, Any]):
    return _solve_with_cvxpy(mat, "ECOS")


@BACKENDS.register("scs", kinds=("lp", "convex"), probe=_probe_solver("SCS"),
                   optional=True,
                   doc="SCS first-order cone solver via cvxpy")
def _solve_scs(mat, options: Mapping[str, Any], hints: Mapping[str, Any]):
    return _solve_with_cvxpy(mat, "SCS")
