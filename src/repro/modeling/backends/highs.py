"""HiGHS LP backend (SciPy's ``linprog``), with simplex/IPM auto-switch.

HiGHS consumes the materialised CSR matrices natively, so this backend
never densifies anything.  Past ~20k variables the interior-point variant
finishes in tens of iterations where the dual simplex walks tens of
thousands of vertices (6-7x wall time at n=10k), so it is picked
automatically for large instances; ``method`` overrides the switch.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np
from scipy import optimize

from repro.core.registry import OptionSpec
from repro.modeling.backends.registry import BACKENDS
from repro.modeling.model import MaterializedLP
from repro.utils.errors import SolverError

#: Variable count above which the auto-switch prefers ``highs-ipm``.
HIGHS_IPM_THRESHOLD = 20_000

_OPTIONS = (
    OptionSpec("method", (str,), default="auto",
               choices=("auto", "highs", "highs-ds", "highs-ipm"),
               doc="HiGHS variant: 'auto' switches to interior point above "
                   f"{HIGHS_IPM_THRESHOLD} variables"),
)


@BACKENDS.register("highs", kinds=("lp",), options=_OPTIONS,
                   doc="SciPy HiGHS (sparse native; simplex/IPM auto-switch)")
def _solve_highs(mat: MaterializedLP, options: Mapping[str, Any],
                 hints: Mapping[str, Any]
                 ) -> tuple[np.ndarray, float, dict[str, Any]]:
    method = options.get("method", "auto")
    if method == "auto":
        method = "highs-ipm" if mat.n_vars > HIGHS_IPM_THRESHOLD else "highs"
    result = optimize.linprog(
        mat.c,
        A_ub=mat.a_ub if mat.a_ub.shape[0] else None,
        b_ub=mat.b_ub if mat.b_ub.size else None,
        A_eq=mat.a_eq if mat.a_eq.shape[0] else None,
        b_eq=mat.b_eq if mat.b_eq.size else None,
        bounds=mat.bounds, method=method,
    )
    if not result.success:
        raise SolverError(
            f"HiGHS failed on LP {mat.name!r}: {result.message} "
            f"(status {result.status})"
        )
    return result.x, float(result.fun), {
        "highs_method": method,
        "iterations": int(result.nit),
    }
