"""Pluggable consumers of materialised models.

Importing this package registers the built-in backends on the shared
:data:`~repro.modeling.backends.registry.BACKENDS` registry:

* ``highs`` — SciPy's HiGHS, sparse-native, simplex/IPM auto-switch (LP);
* ``simplex`` — the library's educational dense tableau simplex (LP,
  size-guarded);
* ``mehrotra-ipm`` — the sparse Mehrotra predictor-corrector interior
  point (convex);
* ``cvxpy`` / ``ecos`` / ``scs`` — optional, probe-gated: registered
  always, usable only when the packages are installed.

Adding a backend is a ~50-line registration: write a module with a
``@BACKENDS.register(...)``-decorated function consuming a materialised
model and import it here.
"""

from repro.modeling.backends.registry import (
    BACKENDS,
    BackendRegistry,
    BackendSolveResult,
    DEFAULT_BACKEND,
    ModelBackend,
)
from repro.modeling.backends import cvxpy_backend  # noqa: F401
from repro.modeling.backends import highs  # noqa: F401
from repro.modeling.backends import mehrotra  # noqa: F401
from repro.modeling.backends import simplex  # noqa: F401
from repro.modeling.backends.simplex import SIMPLEX_MAX_VARIABLES

__all__ = [
    "BACKENDS",
    "BackendRegistry",
    "BackendSolveResult",
    "DEFAULT_BACKEND",
    "ModelBackend",
    "SIMPLEX_MAX_VARIABLES",
]
