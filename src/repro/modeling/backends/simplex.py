"""Educational dense-simplex LP backend.

Wraps the library's own two-phase tableau simplex
(:mod:`repro.vdd.simplex`) as a registered backend so the reproduction's
central polynomial-time result does not rest on an external black box.
The tableau is dense O(rows·cols), so the backend densifies the sparse
system behind an explicit size guard — and it densifies **exactly once**,
at the solver boundary: the finite-upper-bound rows it must append (the
tableau form has no bound support beyond ``x >= 0``) are assembled as
sparse identity selections and stacked with ``sparse.vstack``, so no
intermediate dense copy ever exists on the way there.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np
from scipy import sparse

from repro.core.registry import OptionSpec
from repro.modeling.backends.registry import BACKENDS
from repro.modeling.model import MaterializedLP
from repro.utils.errors import SolverError

#: Largest variable count the educational dense simplex backend accepts
#: before densifying the sparse system (the tableau is dense O(rows·cols)).
SIMPLEX_MAX_VARIABLES = 5000

_OPTIONS = (
    OptionSpec("max_iterations", (int,), default=20000,
               doc="pivot cap over both simplex phases"),
)


@BACKENDS.register("simplex", kinds=("lp",), options=_OPTIONS,
                   doc="library's own two-phase dense simplex (educational, "
                       f"capped at {SIMPLEX_MAX_VARIABLES} variables)")
def _solve_simplex(mat: MaterializedLP, options: Mapping[str, Any],
                   hints: Mapping[str, Any]
                   ) -> tuple[np.ndarray, float, dict[str, Any]]:
    # imported at call time: repro.vdd itself declares its LP through the
    # modeling layer, so a module-level import here would be circular
    from repro.vdd.simplex import solve_lp_simplex

    n_vars = mat.n_vars
    if n_vars > SIMPLEX_MAX_VARIABLES:
        raise SolverError(
            f"the dense simplex backend is educational and capped at "
            f"{SIMPLEX_MAX_VARIABLES} variables; LP {mat.name!r} has "
            f"{n_vars} — use backend='highs', which consumes the sparse "
            "matrices natively"
        )
    if (mat.lower != 0.0).any():
        raise SolverError(
            f"simplex backend expects zero lower bounds on LP {mat.name!r}"
        )
    # fold finite upper bounds into extra <= rows, keeping them sparse until
    # the single densification below
    up_cols = np.flatnonzero(np.isfinite(mat.upper))
    if len(up_cols):
        bound_rows = sparse.csr_matrix(
            (np.ones(len(up_cols)), (np.arange(len(up_cols)), up_cols)),
            shape=(len(up_cols), n_vars))
        a_ub_sparse = sparse.vstack([mat.a_ub, bound_rows], format="csr")
        b_ub = np.concatenate([mat.b_ub, mat.upper[up_cols]])
    else:
        a_ub_sparse = mat.a_ub
        b_ub = mat.b_ub
    result = solve_lp_simplex(
        mat.c, a_ub=a_ub_sparse.toarray(), b_ub=b_ub,
        a_eq=mat.a_eq.toarray(), b_eq=mat.b_eq,
        max_iterations=int(options.get("max_iterations", 20000)))
    if result.status != "optimal":
        raise SolverError(
            f"simplex backend reports LP {mat.name!r} is {result.status}"
        )
    return result.x, float(result.objective), {
        "iterations": int(result.iterations),
    }
