"""Mehrotra predictor-corrector interior-point backend (convex programs).

This is the sparse primal-dual iteration formerly private to
:mod:`repro.continuous.sparse`, lifted out and generalised over any
materialised :class:`~repro.modeling.model.MaterializedConvex`: the model
supplies ``G x <= h`` in CSR plus a declarative
:class:`~repro.modeling.model.PowerObjective` from which the backend
derives gradients and diagonal Hessians itself.

Each iteration factorises one sparse SPD matrix ``H + Gᵀ diag(λ/s) G``
(SuperLU) and reuses the factorisation for the predictor and corrector
solves; linear constraints mean the iterates stay exactly primal-feasible,
so stopping early still leaves a point the caller can repair.  The
iteration needs a strictly interior start — callers pass it via the
``x0`` hint (the Continuous solver computes one from its warm starts).
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np
from scipy import sparse
from scipy.sparse.linalg import splu

from repro.core.registry import OptionSpec
from repro.modeling.backends.registry import BACKENDS
from repro.modeling.model import MaterializedConvex
from repro.utils.errors import SolverError

#: Fraction-to-boundary factor of the interior-point steps.
_TAU = 0.995

#: Largest per-iteration relative change of any objective-block variable;
#: keeps the Newton model of the ``d**-alpha`` objective trustworthy
#: (without it the iteration can oscillate between two near-optimal
#: clusters on loose deadlines).
_MAX_REL_STEP = 0.5

_OPTIONS = (
    OptionSpec("max_iterations", (int,), default=200,
               doc="cap on interior-point iterations (each is one sparse "
                   "factorisation; typical instances converge in 25-60)"),
    OptionSpec("tolerance", (float, int), default=1e-9,
               doc="relative duality-gap target of the stopping test"),
)


def _max_step(values: np.ndarray, deltas: np.ndarray) -> float:
    """Largest step in ``[0, 1]`` keeping ``values + step * deltas > 0``."""
    negative = deltas < 0
    if not negative.any():
        return 1.0
    return min(1.0, _TAU * float(np.min(-values[negative] / deltas[negative])))


@BACKENDS.register("mehrotra-ipm", kinds=("convex",), options=_OPTIONS,
                   doc="sparse Mehrotra predictor-corrector interior point "
                       "(SuperLU-factorised KKT systems)")
def _solve_mehrotra(mat: MaterializedConvex, options: Mapping[str, Any],
                    hints: Mapping[str, Any]
                    ) -> tuple[np.ndarray, float, dict[str, Any]]:
    obj = mat.objective
    if obj is None:
        raise SolverError(
            f"mehrotra-ipm needs a power objective on model {mat.name!r}"
        )
    x0 = hints.get("x0")
    if x0 is None:
        raise SolverError(
            f"mehrotra-ipm needs a strictly interior start for model "
            f"{mat.name!r}: pass it as the 'x0' hint"
        )
    max_iterations = int(options.get("max_iterations", 200))
    tolerance = float(options.get("tolerance", 1e-9))

    g_matrix = mat.g_matrix
    h = mat.h
    g_t = sparse.csr_matrix(g_matrix.T)
    n_cons = g_matrix.shape[0]
    n_vars = mat.n_vars
    block = obj.block_slice()

    x = np.asarray(x0, dtype=float).copy()
    s = h - g_matrix @ x
    if not (s > 0).all():  # defensive: the interior start guarantees this
        raise SolverError("interior-point start is not strictly feasible")
    lam = np.clip(1.0 / s, 1e-6, 1e8)

    converged = False
    gap = float(s @ lam)
    iteration = 0
    for iteration in range(1, max_iterations + 1):
        grad = obj.gradient(x)
        hess = obj.hessian_diagonal(x)
        gap = float(s @ lam)
        dual_residual = grad + g_t @ lam
        grad_scale = max(1.0, float(np.abs(grad).max()))
        if (gap < tolerance * max(1.0, abs(obj.value(x)))
                and float(np.abs(dual_residual).max()) < 1e-6 * grad_scale):
            converged = True
            break

        weights = lam / s
        kkt = (sparse.diags(hess)
               + g_t @ sparse.diags(weights) @ g_matrix).tocsc()
        # primal regularisation: variables outside the objective block have
        # no Hessian of their own, and one with no tight row would
        # otherwise leave a (near-)singular pivot
        regularisation = 1e-9 * max(1.0, float(np.mean(hess[block])))
        kkt = kkt + sparse.identity(n_vars, format="csc") * regularisation
        try:
            lu = splu(kkt)
        except RuntimeError:
            kkt = kkt + sparse.identity(n_vars, format="csc") * (regularisation * 1e4)
            lu = splu(kkt)

        # predictor: pure Newton step towards complementarity zero
        dx_aff = lu.solve(-grad)
        ds_aff = -(g_matrix @ dx_aff)
        dlam_aff = (-lam * s - lam * ds_aff) / s
        step_p = _max_step(s, ds_aff)
        step_d = _max_step(lam, dlam_aff)
        gap_aff = float((s + step_p * ds_aff) @ (lam + step_d * dlam_aff))
        sigma = (max(gap_aff, 0.0) / gap) ** 3

        # corrector: recentre to sigma * mu with the Mehrotra correction,
        # reusing the factorisation
        mu_target = sigma * gap / n_cons
        correction = (mu_target - ds_aff * dlam_aff) / s
        dx = lu.solve(-grad - g_t @ correction)
        ds = -(g_matrix @ dx)
        dlam = (mu_target - ds_aff * dlam_aff - lam * s - lam * ds) / s
        step_p = _max_step(s, ds)
        step_d = _max_step(lam, dlam)
        relative_move = (float(np.max(np.abs(dx[block]) / x[block]))
                         if obj.size else 0.0)
        if relative_move * step_p > _MAX_REL_STEP:
            step_p = _MAX_REL_STEP / relative_move
        x = x + step_p * dx
        s = s + step_p * ds
        lam = lam + step_d * dlam

    return x, obj.value(x), {
        "iterations": iteration,
        "duality_gap": gap,
        "converged": converged,
        "n_constraints": int(n_cons),
    }
