"""The one shared declaration of the precedence polytope.

Every scheduling program in the library constrains the same polytope: for
each DAG edge ``(u, v)`` the successor may only start after its
predecessor finishes (``t_u - t_v + dur_v <= 0``), and every task must fit
between time zero and its own completion (``dur_i - t_i <= 0``).  The only
thing that varies between energy models is what a *duration* is made of —
one variable ``d_i`` in the Continuous program, the sum of the per-mode
times ``sum_k time[i, k]`` in the Vdd-Hopping LP and the discrete
relaxation.

:func:`declare_precedence` captures that shape once: callers pass the
completion-time block, the block holding the duration variables and a
``(n_tasks, k)`` map from each task to the block-local columns whose sum
is its duration.  The Vdd LP passes ``arange(n*m).reshape(n, m)``, the
Continuous program passes ``arange(n).reshape(n, 1)`` — same rows, same
declaration, no per-solver COO assembly.
"""

from __future__ import annotations

import numpy as np

from repro.modeling.model import VariableBlock, _BaseModel
from repro.utils.errors import SolverError


def declare_precedence(model: _BaseModel, *, completion: VariableBlock,
                       duration_block: VariableBlock,
                       duration_cols: np.ndarray,
                       edge_src: np.ndarray, edge_dst: np.ndarray) -> None:
    """Declare the edge and start-time rows of the precedence polytope.

    Adds two ``<=``-sense constraint blocks to ``model``:

    * ``"precedence"`` — one row per edge ``(u, v)``:
      ``t_u - t_v + dur_v <= 0``;
    * ``"start"`` — one row per task ``i``: ``dur_i - t_i <= 0``
      (start times are non-negative).

    Parameters
    ----------
    completion:
        Variable block of the per-task completion times (size ``n``).
    duration_block:
        Block holding the variables whose sums form task durations.
    duration_cols:
        Integer array of shape ``(n, k)``: row ``i`` lists the block-local
        columns of ``duration_block`` whose sum is task ``i``'s duration.
    edge_src, edge_dst:
        The DAG's edge arrays (task indices, aligned with ``completion``).
    """
    duration_cols = np.asarray(duration_cols, dtype=np.int64)
    n = completion.size
    if duration_cols.ndim != 2 or duration_cols.shape[0] != n:
        raise SolverError(
            f"duration_cols must have shape ({n}, k), got "
            f"{duration_cols.shape}"
        )
    k = duration_cols.shape[1]
    esrc = np.asarray(edge_src, dtype=np.int64)
    edst = np.asarray(edge_dst, dtype=np.int64)
    n_edges = len(esrc)
    edge_rows = np.arange(n_edges, dtype=np.int64)
    task_rows = np.arange(n, dtype=np.int64)

    model.add_constraints(
        "precedence", sense="ub", rhs=np.zeros(n_edges),
        terms=[
            (completion, edge_rows, esrc, 1.0),
            (completion, edge_rows, edst, -1.0),
            (duration_block, np.repeat(edge_rows, k),
             duration_cols[edst].ravel(), 1.0),
        ])
    model.add_constraints(
        "start", sense="ub", rhs=np.zeros(n),
        terms=[
            (duration_block, np.repeat(task_rows, k),
             duration_cols.ravel(), 1.0),
            (completion, task_rows, task_rows, -1.0),
        ])
