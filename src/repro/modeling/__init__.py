"""Declarative model-builder layer: declare once, solve with any backend.

The library's optimisation paths declare their programs here instead of
hand-rolling COO/CSR assembly: a :class:`LinearModel` or
:class:`ConvexModel` collects named variable blocks, bounds, constraint
blocks and the objective, materialises to canonical solver inputs exactly
once (cached, fingerprinted), and any backend registered on
:data:`BACKENDS` consumes the result.  The shared precedence polytope —
the one constraint system every scheduling program in the paper shares —
is declared through :func:`declare_precedence`.
"""

from repro.modeling.backends import (
    BACKENDS,
    BackendRegistry,
    BackendSolveResult,
    DEFAULT_BACKEND,
    ModelBackend,
    SIMPLEX_MAX_VARIABLES,
)
from repro.modeling.model import (
    ConvexModel,
    LinearModel,
    MaterializedConvex,
    MaterializedLP,
    PowerObjective,
    VariableBlock,
)
from repro.modeling.precedence import declare_precedence
from repro.utils.errors import BackendUnavailableError, UnknownBackendError

__all__ = [
    "BACKENDS",
    "BackendRegistry",
    "BackendSolveResult",
    "BackendUnavailableError",
    "ConvexModel",
    "DEFAULT_BACKEND",
    "LinearModel",
    "MaterializedConvex",
    "MaterializedLP",
    "ModelBackend",
    "PowerObjective",
    "SIMPLEX_MAX_VARIABLES",
    "UnknownBackendError",
    "VariableBlock",
    "declare_precedence",
]
