"""Job model of the solver service: statuses, progress and handles.

A :class:`JobHandle` is what :meth:`repro.service.SolverService.submit`
returns: a live view over the per-instance futures of one submitted batch.
It can be polled (:meth:`~JobHandle.status`, :meth:`~JobHandle.progress`),
blocked on (:meth:`~JobHandle.results`), or awaited from asyncio code
(``results = await handle``) — completion is exposed both synchronously and
asynchronously over the same underlying futures.

Failure semantics are inherited from the batch layer: a failing instance
becomes a :class:`~repro.batch.engine.BatchResult` with ``ok=False`` and the
error recorded, it never fails the job.  A job therefore always reaches
``DONE`` (or ``CANCELLED``); ``progress().failed`` counts the captured
per-instance failures.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import Future, wait as futures_wait
from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING, Any, Sequence

from repro.batch.engine import BatchResult
from repro.utils.errors import InvalidParameterError, PollTimeoutError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.batch.shard import ShardSpec


class JobStatus(str, Enum):
    """Lifecycle of a submitted job."""

    PENDING = "pending"      #: accepted, nothing started yet
    RUNNING = "running"      #: at least one instance started, not all done
    DONE = "done"            #: every instance finished (failures captured)
    CANCELLED = "cancelled"  #: cancelled before completion


@dataclass(frozen=True)
class JobProgress:
    """Instance counters of a job at one point in time."""

    total: int
    done: int
    failed: int
    cache_hits: int

    @property
    def remaining(self) -> int:
        return self.total - self.done

    @property
    def fraction(self) -> float:
        """Completed fraction in ``[0, 1]`` (1.0 for an empty job)."""
        return self.done / self.total if self.total else 1.0


class JobHandle:
    """Live handle over one submitted batch of instances.

    Instances resolved from the result cache at submission time are carried
    as pre-computed results; the rest map 1:1 to executor futures.  All
    accessors are safe to call from any thread; :meth:`wait` (and plain
    ``await handle``) bridges the same futures into asyncio.
    """

    def __init__(self, job_id: str, *, name: str = "",
                 futures: Sequence[Future] = (),
                 future_indices: Sequence[int] = (),
                 preresolved: dict[int, BatchResult] | None = None,
                 total: int = 0,
                 coords: Sequence[tuple] | None = None,
                 params: dict[str, Any] | None = None,
                 instance_meta: Sequence[tuple[str, int]] | None = None,
                 shard: "ShardSpec | None" = None,
                 fingerprint: str = "",
                 manifest: dict[str, Any] | None = None) -> None:
        if len(futures) != len(future_indices):
            raise InvalidParameterError("futures and future_indices must align")
        if instance_meta is not None and len(instance_meta) != total:
            raise InvalidParameterError("instance_meta must align with the instance count")
        self.job_id = job_id
        self.name = name or job_id
        self.created_at = time.time()
        self.finished_at: float | None = None
        #: grid coordinates when the job came from a sweep submission
        self.coords = list(coords) if coords is not None else None
        #: submission parameters (grid axes, workers, ...) for job records
        self.params = dict(params or {})
        #: shard identity / grid fingerprint of a sharded sweep submission
        self.shard = shard
        self.fingerprint = fingerprint
        #: shard-dump header of a sweep submission (full-grid coordinates,
        #: fingerprint, params) — attached to job tables so a service job's
        #: output is a mergeable shard dump like a ``repro sweep`` table
        self.manifest = dict(manifest) if manifest else None
        self._futures = list(futures)
        self._indices = list(future_indices)
        self._preresolved = dict(preresolved or {})
        self._total = total
        #: per-index (problem name, task count) so fabricated failure rows
        #: keep the real instance identity even when no solver ever ran
        self._instance_meta = list(instance_meta or [])
        self._cancelled = False

    # ------------------------------------------------------------------ #
    # polling
    # ------------------------------------------------------------------ #
    @property
    def total(self) -> int:
        """Number of instances in the job."""
        return self._total

    def done(self) -> bool:
        """Whether every instance has finished (or the job was cancelled)."""
        return self._cancelled or all(f.done() for f in self._futures)

    def status(self) -> JobStatus:
        """Current lifecycle state (derived from the futures, never stale)."""
        if self._cancelled:
            return JobStatus.CANCELLED
        if not self._futures:
            return JobStatus.DONE
        states = [f for f in self._futures if f.done()]
        if len(states) == len(self._futures):
            return JobStatus.DONE
        if states or any(f.running() for f in self._futures):
            return JobStatus.RUNNING
        return JobStatus.PENDING

    def progress(self) -> JobProgress:
        """Instance counters (pre-resolved cache hits count as done)."""
        done = len(self._preresolved)
        failed = sum(1 for r in self._preresolved.values() if not r.ok)
        cache_hits = sum(1 for r in self._preresolved.values() if r.cache_hit)
        for future in self._futures:
            if future.done() and not future.cancelled():
                try:
                    result = self._future_result(future)
                except Exception:
                    done += 1
                    failed += 1
                    continue
                done += 1
                if not result.ok:
                    failed += 1
                if result.cache_hit:
                    cache_hits += 1
            elif future.cancelled():
                done += 1
                failed += 1
        return JobProgress(total=self._total, done=done, failed=failed,
                           cache_hits=cache_hits)

    # ------------------------------------------------------------------ #
    # completion
    # ------------------------------------------------------------------ #
    def results(self, timeout: float | None = None) -> list[BatchResult]:
        """Block until the job completes and return results in input order.

        Raises :class:`TimeoutError` when ``timeout`` elapses first.
        Instances whose future was cancelled (service shutdown, explicit
        :meth:`cancel`) come back as ``ok=False`` rows with ``error_type``
        ``"CancelledError"``.
        """
        finished = futures_wait(self._futures, timeout=timeout)
        # futures_wait only counts *notified* cancellations as done; a future
        # cancelled before its executor ever dequeued it still belongs in the
        # cancelled bucket, not in "still running"
        still_running = [f for f in finished.not_done if not f.cancelled()]
        if still_running and not self._cancelled:
            raise PollTimeoutError(
                f"job {self.job_id}: {len(still_running)} of "
                f"{len(self._futures)} instances still running after "
                f"{timeout}s"
            )
        out: dict[int, BatchResult] = dict(self._preresolved)
        for index, future in zip(self._indices, self._futures):
            if future.cancelled() or not future.done():
                out[index] = self._fabricated_failure(
                    index, "cancelled before completion", "CancelledError")
                continue
            try:
                out[index] = self._future_result(future)
            except Exception as exc:  # a worker died under this instance
                out[index] = self._fabricated_failure(
                    index, str(exc) or type(exc).__name__, type(exc).__name__)
        if self.finished_at is None:
            self.finished_at = time.time()
        return [out[i] for i in range(self._total)]

    async def wait(self, poll: float = 0.0) -> list[BatchResult]:
        """Asynchronously wait for completion and return the results.

        Bridges the executor futures into the running event loop, so many
        jobs can be awaited concurrently with ``asyncio.gather``.  ``poll``
        is accepted for API compatibility and ignored (no polling happens).
        """
        pending = [asyncio.wrap_future(f) for f in self._futures
                   if not f.done()]
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        return self.results(timeout=0 if self._futures else None)

    def __await__(self):
        return self.wait().__await__()

    def cancel(self) -> int:
        """Cancel the not-yet-started instances; returns how many were."""
        cancelled = sum(1 for f in self._futures if f.cancel())
        if cancelled and all(f.done() or f.cancelled() for f in self._futures):
            self._cancelled = True
        return cancelled

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _fabricated_failure(self, index: int, error: str,
                            error_type: str) -> BatchResult:
        """Failure row for an instance no worker ever reported on."""
        if index < len(self._instance_meta):
            name, n_tasks = self._instance_meta[index]
        else:  # pragma: no cover - handles built without metadata
            name, n_tasks = f"instance-{index}", 0
        return BatchResult(
            index=index, name=name, ok=False, n_tasks=n_tasks,
            error=error, error_type=error_type,
            metadata={"cache_hit": False},
        )

    @staticmethod
    def _future_result(future: Future) -> BatchResult:
        """Unpack a worker future (``(BatchResult, envelope)`` tuples)."""
        value = future.result(timeout=0)
        if isinstance(value, tuple):
            return value[0]
        return value

    def describe(self) -> dict[str, Any]:
        """JSON-able snapshot used by job records and ``repro jobs``."""
        progress = self.progress()
        return {
            "job_id": self.job_id,
            "name": self.name,
            "status": self.status().value,
            "created_at": self.created_at,
            "finished_at": self.finished_at,
            "total": progress.total,
            "done": progress.done,
            "failed": progress.failed,
            "cache_hits": progress.cache_hits,
            "shard": self.shard.spelling if self.shard is not None else None,
            "grid_fingerprint": self.fingerprint,
            "params": self.params,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        progress = self.progress()
        return (f"JobHandle({self.job_id!r}, status={self.status().value}, "
                f"{progress.done}/{progress.total} done)")
