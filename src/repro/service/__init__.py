"""In-process solver pool: submit grids, poll jobs, await results.

This subsystem turns the batch engine into a concurrent pool:
:class:`SolverService` accepts submissions (problem lists or sweep grids),
runs them on a worker pool behind :class:`~repro.service.jobs.JobHandle`
objects, and exposes completion synchronously (``handle.results()``) and
asynchronously (``await handle``).  Per-instance failures are captured as
``ok=False`` rows — a job never dies half way — and a shared
:class:`repro.cache.ResultCache` answers repeated instances without
touching the pool.

Since the :mod:`repro.api` redesign this is the *execution engine* behind
the transport-agnostic client protocol: :class:`repro.api.LocalTransport`
wraps a ``SolverService`` directly, and the durable disk / HTTP transports
run one under their job runners.  ``SolverService`` keeps its original
surface for backward compatibility — new code should prefer
:class:`repro.api.SolverClient`, which speaks the same protocol against
in-process, on-disk and remote backends.

From the command line::

    python -m repro submit --classes chain,tree --sizes 64 --workers 4
    python -m repro jobs
"""

from repro.service.batcher import MicroBatcher
from repro.service.jobs import JobHandle, JobProgress, JobStatus
from repro.service.service import SolverService

__all__ = [
    "JobHandle",
    "JobProgress",
    "JobStatus",
    "MicroBatcher",
    "SolverService",
]
