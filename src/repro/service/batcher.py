"""Request coalescing for the synchronous solve fast path.

A :class:`MicroBatcher` sits between concurrent single-solve submitters
(HTTP handler threads, :meth:`SolverService.solve` callers) and the
struct-of-arrays batch solver.  Submissions land in a queue; a single tick
thread wakes on the first item, waits up to ``window_ms`` for company (or
until ``max_batch`` items arrived), then drains the queue and executes
*one* vectorized :func:`repro.batch.vectorized.solve_batch` call for the
whole tick.  N concurrent submitters therefore cost a handful of batch
ticks instead of N scalar solve pipelines — the occupancy histogram in
:meth:`stats` is the direct measurement.

Submissions with different solver parameters may share a tick; the drain
groups them by ``(method, exact, options)`` so each group still makes a
single batch call.
"""

from __future__ import annotations

import threading
import time
from collections import Counter
from concurrent.futures import Future
from typing import Any, Sequence

from repro.batch.engine import BatchResult
from repro.batch.vectorized import InstanceSpec, solve_batch
from repro.core.problem import MinEnergyProblem
from repro.reliability import failpoints
from repro.reliability.policy import Deadline
from repro.utils.errors import (
    DeadlineExceededError,
    InvalidParameterError,
    ShutdownError,
    TransientTransportError,
)

#: Default coalescing window: how long the first submission of a tick
#: waits for company before the batch executes.
DEFAULT_WINDOW_MS = 2.0

#: Default tick-size cap: a full tick executes immediately.
DEFAULT_MAX_BATCH = 512


class MicroBatcher:
    """Coalesce concurrent solve submissions into vectorized batch ticks.

    Parameters
    ----------
    window_ms:
        Coalescing window in milliseconds.  ``0`` disables waiting: each
        tick drains whatever is queued the moment the thread wakes (still
        coalescing under concurrency, minimal added latency).
    max_batch:
        A tick executes as soon as this many submissions are queued.
    """

    def __init__(self, *, window_ms: float = DEFAULT_WINDOW_MS,
                 max_batch: int = DEFAULT_MAX_BATCH) -> None:
        if window_ms < 0:
            raise InvalidParameterError(f"window_ms must be >= 0, got {window_ms}")
        if max_batch < 1:
            raise InvalidParameterError(f"max_batch must be >= 1, got {max_batch}")
        self.window = window_ms / 1000.0
        self.max_batch = max_batch
        self._cond = threading.Condition()
        self._queue: list[tuple[Any, dict[str, Any], Future]] = []
        self._closed = False
        self._thread: threading.Thread | None = None
        # stats (guarded by _cond's lock)
        self._ticks = 0
        self._submitted = 0
        self._direct = 0
        self._occupancy: Counter[int] = Counter()

    # ------------------------------------------------------------------ #
    # submission
    # ------------------------------------------------------------------ #
    def submit(self, item: "MinEnergyProblem | InstanceSpec", *,
               method: str | None = None, exact: bool | None = None,
               options: dict[str, Any] | None = None,
               keep_speeds: bool = False,
               validate: bool = False,
               deadline: "Deadline | None" = None) -> "Future[BatchResult]":
        """Queue one instance; the future resolves to its ``BatchResult``.

        The future never carries a solve failure as an exception — failed
        instances resolve to ``ok=False`` rows exactly like
        :func:`repro.batch.solve_many`.  It only errors if the batcher is
        shut down underneath the submission, or if ``deadline`` expires
        before the submission's tick executes
        (:class:`~repro.utils.errors.DeadlineExceededError`): the
        coalescing window never waits past the earliest queued deadline,
        and an expired submission is resolved, not solved.
        """
        key = (method, exact,
               tuple(sorted((options or {}).items())), keep_speeds, validate)
        future: "Future[BatchResult]" = Future()
        with self._cond:
            if self._closed:
                raise ShutdownError("MicroBatcher is shut down")
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._loop, name="repro-batcher", daemon=True)
                self._thread.start()
            self._queue.append((item, {"key": key, "method": method,
                                       "exact": exact,
                                       "options": dict(options or {}),
                                       "keep_speeds": keep_speeds,
                                       "validate": validate,
                                       "deadline": deadline}, future))
            self._submitted += 1
            self._cond.notify()
        return future

    def solve(self, item: "MinEnergyProblem | InstanceSpec", *,
              method: str | None = None, exact: bool | None = None,
              options: dict[str, Any] | None = None,
              keep_speeds: bool = False, validate: bool = False,
              timeout: float | None = None,
              deadline: "Deadline | None" = None) -> BatchResult:
        """Blocking convenience wrapper around :meth:`submit`."""
        if deadline is not None:
            timeout = (deadline.remaining() if timeout is None
                       else min(timeout, deadline.remaining()))
        return self.submit(item, method=method, exact=exact, options=options,
                           keep_speeds=keep_speeds, validate=validate,
                           deadline=deadline).result(timeout=timeout)

    def record_direct(self, batch_size: int) -> None:
        """Fold an out-of-band batch call into the occupancy statistics.

        ``solve_batch`` requests execute directly (they arrive pre-batched)
        but still count as one tick of the given occupancy, so the
        histogram reflects everything the vector core swallowed.
        """
        with self._cond:
            self._ticks += 1
            self._direct += 1
            self._submitted += batch_size
            self._occupancy[batch_size] += 1

    # ------------------------------------------------------------------ #
    # the tick loop
    # ------------------------------------------------------------------ #
    def _loop(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._closed:
                    self._cond.wait()
                if self._closed and not self._queue:
                    return
                if self.window > 0.0:
                    until = time.monotonic() + self.window
                    # never coalesce past the earliest queued deadline: a
                    # request with 5ms of budget left must not sit out a
                    # full window waiting for company
                    for _item, spec, _future in self._queue:
                        d = spec.get("deadline")
                        if d is not None:
                            until = min(until,
                                        time.monotonic() + d.remaining())
                    while len(self._queue) < self.max_batch and not self._closed:
                        remaining = until - time.monotonic()
                        if remaining <= 0 or not self._cond.wait(remaining):
                            break
                batch = self._queue[:self.max_batch]
                del self._queue[:self.max_batch]
                self._ticks += 1
                self._occupancy[len(batch)] += 1
            try:
                failpoints.fire("batcher.tick", size=len(batch))
            except TransientTransportError:
                # an injected transient tick failure re-queues the batch
                # untouched; the next tick retries it, so no future is
                # ever stranded and results are unchanged
                with self._cond:
                    self._queue[:0] = batch
                    self._ticks -= 1
                    self._occupancy[len(batch)] -= 1
                    self._cond.notify()
                continue
            self._execute(batch)

    def _execute(self, batch: list[tuple[Any, dict[str, Any], Future]]) -> None:
        # group by solver parameters; typical ticks are uniform -> one call
        groups: dict[tuple, list[tuple[int, Any, dict[str, Any]]]] = {}
        for pos, (item, spec, future) in enumerate(batch):
            deadline = spec.get("deadline")
            if deadline is not None and deadline.expired:
                # resolved, not solved: the submitter's budget is gone
                if not future.done():
                    future.set_exception(DeadlineExceededError(
                        f"solve deadline expired after "
                        f"{deadline.budget:.3f}s while waiting for a "
                        "batch tick"))
                continue
            groups.setdefault(spec["key"], []).append((pos, item, spec))
        for members in groups.values():
            futures = [batch[pos][2] for pos, _item, _spec in members]
            params = members[0][2]
            try:
                results = solve_batch(
                    [item for _pos, item, _spec in members],
                    method=params["method"], exact=params["exact"],
                    options=params["options"] or None,
                    keep_speeds=params["keep_speeds"],
                    validate=params["validate"])
            except BaseException as exc:  # defensive: never strand futures
                for future in futures:
                    if not future.done():
                        future.set_exception(exc)
                continue
            for future, result in zip(futures, results):
                future.set_result(result)

    # ------------------------------------------------------------------ #
    # introspection / lifecycle
    # ------------------------------------------------------------------ #
    def stats(self) -> dict[str, Any]:
        """Coalescing statistics: ticks, occupancy histogram, averages."""
        with self._cond:
            occupancy = dict(sorted(self._occupancy.items()))
            ticks = self._ticks
            submitted = self._submitted
            return {
                "ticks": ticks,
                "submitted": submitted,
                "direct_batches": self._direct,
                "window_ms": self.window * 1000.0,
                "max_batch": self.max_batch,
                "occupancy": occupancy,
                "mean_occupancy": (submitted / ticks) if ticks else 0.0,
                "max_occupancy": max(occupancy) if occupancy else 0,
            }

    def close(self) -> None:
        """Drain the queue and stop the tick thread (idempotent)."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        thread = self._thread
        if thread is not None and thread.is_alive() \
                and thread is not threading.current_thread():
            thread.join(timeout=5.0)

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
