"""The asynchronous solver-service front-end.

:class:`SolverService` turns the batch layer into a job queue: clients
submit a list of problems (or a sweep grid) and get a
:class:`~repro.service.jobs.JobHandle` back immediately; instances run on a
process pool (or a thread pool for in-process testing), failures are
captured per instance, and completion can be polled, blocked on, or
awaited.  Submissions flow through the same registry dispatch and
content-addressed cache as direct :func:`repro.solve.solve` calls, so a
warm cache answers repeated grids without touching the pool at all.

Quickstart
----------
>>> from repro.service import SolverService
>>> with SolverService(workers=4) as service:            # doctest: +SKIP
...     handle = service.submit_sweep(graph_classes=("chain",), sizes=(64,),
...                                   slacks=(1.2, 2.0), repetitions=3)
...     print(handle.status(), handle.progress().fraction)
...     rows = handle.results(timeout=120)               # or: await handle
"""

from __future__ import annotations

import itertools
import threading
import uuid
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from typing import TYPE_CHECKING, Any, Mapping, Sequence

from repro.batch.engine import BatchResult, _WorkItem, _result_from_envelope, _solve_one
from repro.batch.shard import ShardSpec
from repro.batch.sweep import plan_sweep, sweep_table
from repro.batch.vectorized import VECTORIZE_MAX_TASKS, InstanceSpec, solve_batch
from repro.core.problem import MinEnergyProblem
from repro.service.batcher import DEFAULT_MAX_BATCH, DEFAULT_WINDOW_MS, MicroBatcher
from repro.service.jobs import JobHandle, JobStatus
from repro.utils.tables import Table
from repro.utils.errors import InvalidParameterError, ShutdownError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cache import ResultCache
    from repro.reliability.policy import Deadline


class SolverService:
    """A concurrent solve-job front-end over the process pool.

    Parameters
    ----------
    workers:
        Worker processes of the underlying pool (default 2).
    use_threads:
        Run instances on a thread pool instead (no pickling, shared memory);
        useful for tests and for serving from an environment where
        subprocesses are unwelcome.  NumPy/SciPy release the GIL in the
        heavy kernels, so threads still overlap useful work.
    cache:
        Optional :class:`repro.cache.ResultCache` consulted at submission
        time (hits never reach the pool) and populated as instances finish.
    validate:
        Re-check every solution with
        :func:`repro.core.validation.check_solution` in the worker.
    keep_speeds:
        Include per-task speeds in every result.
    batch_window_ms / batch_max:
        Coalescing window and tick-size cap of the synchronous solve fast
        path (:meth:`solve` / :meth:`solve_batch`), which runs on a
        :class:`~repro.service.batcher.MicroBatcher` instead of the pool.
    """

    def __init__(self, *, workers: int = 2, use_threads: bool = False,
                 cache: "ResultCache | None" = None,
                 validate: bool = True, keep_speeds: bool = False,
                 batch_window_ms: float = DEFAULT_WINDOW_MS,
                 batch_max: int = DEFAULT_MAX_BATCH) -> None:
        if workers < 1:
            raise InvalidParameterError(f"workers must be >= 1, got {workers}")
        self.cache = cache
        self.validate = validate
        self.keep_speeds = keep_speeds
        if use_threads:
            self._pool: Any = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-service")
        else:
            self._pool = ProcessPoolExecutor(max_workers=workers)
        self._jobs: dict[str, JobHandle] = {}
        self._lock = threading.Lock()
        self._counter = itertools.count(1)
        self._closed = False
        self._batch_window_ms = batch_window_ms
        self._batch_max = batch_max
        self._batcher: MicroBatcher | None = None

    # ------------------------------------------------------------------ #
    # submission
    # ------------------------------------------------------------------ #
    def submit(self, work: "Sequence[MinEnergyProblem] | Mapping[str, Any]", *,
               method: str | None = None, exact: bool | None = None,
               options: dict[str, Any] | None = None,
               seeds: Sequence[int | None] | None = None,
               name: str = "") -> JobHandle:
        """Submit problems (or a sweep-grid mapping) and return immediately.

        ``work`` is either a sequence of :class:`MinEnergyProblem` or a
        mapping of :func:`repro.batch.build_sweep_problems` keyword
        arguments (``{"graph_classes": ..., "sizes": ..., ...}``), which is
        expanded exactly like :func:`repro.batch.sweep` and additionally
        attaches the grid coordinates to the handle for table rendering.
        """
        if isinstance(work, Mapping):
            if seeds is not None:
                raise InvalidParameterError(
                    "seeds cannot be combined with a sweep-grid mapping: the "
                    "grid derives one seed per cell from its base seed"
                )
            reserved = {"method", "exact", "options", "name"} & set(work)
            if reserved:
                raise InvalidParameterError(
                    f"grid mapping must not contain {sorted(reserved)}; pass "
                    "them as keyword arguments of submit() instead"
                )
            return self.submit_sweep(**dict(work), method=method, exact=exact,
                                     options=options, name=name)
        return self._submit_problems(list(work), method=method, exact=exact,
                                     options=options, seeds=seeds, name=name,
                                     coords=None, params={"kind": "problems"})

    def submit_sweep(self, *, method: str | None = None,
                     exact: bool | None = None,
                     options: dict[str, Any] | None = None,
                     name: str = "",
                     shard: "ShardSpec | str | None" = None,
                     priors: Any = None,
                     **grid: Any) -> JobHandle:
        """Expand a sweep grid and submit every cell as one job.

        ``shard`` (a :class:`~repro.batch.shard.ShardSpec` or its ``"I/N"``
        spelling) submits only that deterministic slice of the grid — the
        service-side counterpart of ``repro sweep --shard``.  The handle
        carries the grid fingerprint and shard identity, so
        :meth:`job_table` emits rows mergeable with the other shards' dumps.
        """
        plan = plan_sweep(shard=shard, method=method, exact=exact,
                          priors=priors, **grid)
        params = {"kind": "sweep", **{k: repr(v) for k, v in sorted(grid.items())}}
        if plan.shard is not None:
            params["shard"] = plan.shard.spelling
            params["shard_strategy"] = plan.shard.strategy
        params["grid_fingerprint"] = plan.fingerprint
        return self._submit_problems(
            plan.problems, method=method, exact=exact, options=options,
            seeds=[coord[-1] for coord in plan.coords], name=name,
            coords=plan.coords, params=params, shard=plan.shard,
            fingerprint=plan.fingerprint, manifest=plan.manifest())

    def _submit_problems(self, problems: list[MinEnergyProblem], *,
                         method: str | None, exact: bool | None,
                         options: dict[str, Any] | None,
                         seeds: Sequence[int | None] | None,
                         name: str, coords: Sequence[tuple] | None,
                         params: dict[str, Any],
                         shard: ShardSpec | None = None,
                         fingerprint: str = "",
                         manifest: dict[str, Any] | None = None) -> JobHandle:
        if self._closed:
            raise ShutdownError("SolverService is shut down")
        if seeds is not None and len(seeds) != len(problems):
            raise InvalidParameterError("seeds must align with problems")
        opts = dict(options or {})
        job_id = f"job-{next(self._counter)}-{uuid.uuid4().hex[:8]}"

        items = [
            _WorkItem(index=i, problem=p, method=method, exact=exact,
                      validate=self.validate, keep_speeds=self.keep_speeds,
                      options=opts,
                      seed=None if seeds is None else seeds[i],
                      want_envelope=self.cache is not None)
            for i, p in enumerate(problems)
        ]

        preresolved: dict[int, Any] = {}
        pending: list[_WorkItem] = []
        keys: dict[int, str] = {}
        if self.cache is not None:
            from repro.solve import cache_key_for

            for item in items:
                try:
                    key = cache_key_for(item.problem, method,
                                        options=opts, exact=exact)
                except Exception:
                    pending.append(item)  # surface as a per-instance failure
                    continue
                keys[item.index] = key
                envelope = self.cache.get(key)
                if envelope is not None:
                    preresolved[item.index] = _result_from_envelope(
                        item, envelope, 0.0)
                else:
                    pending.append(item)
        else:
            pending = items

        futures: list[Future] = []
        indices: list[int] = []
        for item in pending:
            future = self._pool.submit(_solve_one, item)
            if self.cache is not None and item.index in keys:
                future.add_done_callback(
                    self._cache_writer(keys[item.index]))
            futures.append(future)
            indices.append(item.index)

        handle = JobHandle(job_id, name=name, futures=futures,
                           future_indices=indices, preresolved=preresolved,
                           total=len(problems), coords=coords, params=params,
                           instance_meta=[(p.name, p.n_tasks) for p in problems],
                           shard=shard, fingerprint=fingerprint,
                           manifest=manifest)
        with self._lock:
            self._jobs[job_id] = handle
        return handle

    def _cache_writer(self, key: str):
        """Done-callback inserting a finished instance's envelope."""

        def write(future: Future) -> None:
            if future.cancelled():
                return
            try:
                _result, envelope = future.result(timeout=0)
            except Exception:
                return  # worker death: nothing to cache
            if envelope is not None and self.cache is not None:
                self.cache.put(key, envelope)

        return write

    # ------------------------------------------------------------------ #
    # synchronous solves (micro-batched fast path)
    # ------------------------------------------------------------------ #
    def batcher(self) -> MicroBatcher:
        """The lazily started micro-batcher behind :meth:`solve`."""
        with self._lock:
            if self._closed:
                raise ShutdownError("SolverService is shut down")
            if self._batcher is None:
                self._batcher = MicroBatcher(
                    window_ms=self._batch_window_ms,
                    max_batch=self._batch_max)
            return self._batcher

    def solve(self, item: "MinEnergyProblem | InstanceSpec", *,
              method: str | None = None, exact: bool | None = None,
              options: dict[str, Any] | None = None,
              keep_speeds: bool = False, validate: bool = False,
              timeout: float | None = None,
              deadline: "Deadline | None" = None) -> BatchResult:
        """Solve one instance synchronously, coalescing with concurrent calls.

        Small instances queue on the micro-batcher (one vectorized batch
        tick per coalescing window); large ones solve immediately in the
        calling thread — no job record, no cache, no pool hop either way.
        Failures come back as ``ok=False`` rows, never as raised
        exceptions (use :meth:`repro.api.SolverClient.solve` for the
        raising flavour).  ``deadline`` (a
        :class:`repro.reliability.Deadline`) bounds the wait: the batcher
        never coalesces past it, and an expired request raises
        :class:`~repro.utils.errors.DeadlineExceededError` instead of
        solving.
        """
        if deadline is not None:
            deadline.require("solve")
        n_tasks = item.n_tasks
        if n_tasks > VECTORIZE_MAX_TASKS:
            return solve_batch([item], method=method, exact=exact,
                               options=options, keep_speeds=keep_speeds,
                               validate=validate)[0]
        return self.batcher().solve(
            item, method=method, exact=exact, options=options,
            keep_speeds=keep_speeds, validate=validate, timeout=timeout,
            deadline=deadline)

    def solve_many_now(self, items: "Sequence[MinEnergyProblem | InstanceSpec]",
                       *, method: str | None = None, exact: bool | None = None,
                       options: dict[str, Any] | None = None,
                       keep_speeds: bool = False,
                       validate: bool = False) -> list[BatchResult]:
        """Solve a pre-assembled batch in one vectorized call (one tick).

        The transport-level twin of :func:`repro.batch.solve_many` for
        callers that already hold all their instances: executes
        immediately in the calling thread and records one
        occupancy-``len(items)`` tick in :meth:`batch_stats`.
        """
        results = solve_batch(items, method=method, exact=exact,
                              options=options, keep_speeds=keep_speeds,
                              validate=validate)
        self.batcher().record_direct(len(items))
        return results

    def batch_stats(self) -> dict[str, Any]:
        """Coalescing statistics of the solve fast path."""
        with self._lock:
            if self._batcher is None:
                return {"ticks": 0, "submitted": 0, "direct_batches": 0,
                        "window_ms": self._batch_window_ms,
                        "max_batch": self._batch_max, "occupancy": {},
                        "mean_occupancy": 0.0, "max_occupancy": 0}
        return self._batcher.stats()

    # ------------------------------------------------------------------ #
    # job book-keeping
    # ------------------------------------------------------------------ #
    def job(self, job_id: str) -> JobHandle:
        """Look a job up by id (raises ``KeyError`` for unknown ids)."""
        with self._lock:
            return self._jobs[job_id]

    def jobs(self) -> list[JobHandle]:
        """All jobs of this service, in submission order."""
        with self._lock:
            return list(self._jobs.values())

    def status(self, job_id: str) -> JobStatus:
        """Status of one job."""
        return self.job(job_id).status()

    def results(self, job_id: str, timeout: float | None = None):
        """Block for one job's results (see :meth:`JobHandle.results`)."""
        return self.job(job_id).results(timeout=timeout)

    def cancel(self, job_id: str) -> int:
        """Cancel a job's not-yet-started instances."""
        return self.job(job_id).cancel()

    def job_table(self, job_id: str, *, timeout: float | None = None) -> Table:
        """Sweep-style table of a finished job.

        Jobs submitted from a grid get their coordinates back as columns
        (identical rows to :func:`repro.batch.sweep`); plain problem lists
        fall back to synthetic coordinates.
        """
        handle = self.job(job_id)
        results = handle.results(timeout=timeout)
        if handle.coords is not None:
            table = sweep_table(handle.coords, results,
                                title=f"job {handle.name}",
                                shard=handle.shard,
                                fingerprint=handle.fingerprint)
            if handle.manifest is not None:
                # sweep submissions come back as mergeable shard dumps,
                # exactly like a `repro sweep --out` table
                table.manifest = dict(handle.manifest)
            return table
        coords = [("-", r.n_tasks, None, None, None) for r in results]
        return sweep_table(coords, results, title=f"job {handle.name}")

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def shutdown(self, *, wait: bool = True, cancel_pending: bool = False) -> None:
        """Shut the pool down; optionally cancel not-yet-started instances."""
        with self._lock:
            # submit() checks _closed under the same lock: without this a
            # racing submit can observe open state and enqueue into a
            # pool that is already tearing down
            self._closed = True
            batcher, self._batcher = self._batcher, None
        if batcher is not None:
            batcher.close()
        self._pool.shutdown(wait=wait, cancel_futures=cancel_pending)

    def __enter__(self) -> "SolverService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown(wait=exc_type is None, cancel_pending=exc_type is not None)
