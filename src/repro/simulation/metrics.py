"""Metrics derived from execution traces.

These are the quantities an evaluation section reports: per-processor
utilisation, the platform power profile over time, the energy recomputed by
integrating that profile (a cross-check of the per-task energies), and a
compact textual summary.
"""

from __future__ import annotations

from repro.simulation.trace import ExecutionTrace
from repro.utils.errors import InvalidSolutionError


def processor_utilisation(trace: ExecutionTrace, *, horizon: float | None = None
                          ) -> dict[int, float]:
    """Fraction of the horizon each processor spends executing tasks.

    Parameters
    ----------
    trace:
        The execution trace.
    horizon:
        Time horizon for the utilisation (defaults to the trace makespan).
    """
    horizon = horizon if horizon is not None else trace.makespan
    if horizon <= 0:
        return {p: 0.0 for p in trace.processors()}
    return {p: trace.busy_time(p) / horizon for p in trace.processors()}


def power_profile(trace: ExecutionTrace) -> list[tuple[float, float, float]]:
    """Piecewise-constant total power over time.

    Returns a list of ``(start, end, power)`` intervals covering
    ``[0, makespan]``; within each interval the set of running segments (and
    hence the platform power, the sum of ``speed**alpha`` over the running
    segments) is constant.
    """
    events: set[float] = {0.0, trace.makespan}
    for seg in trace.segments():
        events.add(seg.start)
        events.add(seg.end)
    times = sorted(events)
    profile: list[tuple[float, float, float]] = []
    segments = list(trace.segments())
    for a, b in zip(times, times[1:]):
        if b - a <= 0:
            continue
        mid = 0.5 * (a + b)
        power = sum(seg.speed ** trace.alpha for seg in segments
                    if seg.start <= mid < seg.end)
        profile.append((a, b, power))
    return profile


def energy_from_profile(trace: ExecutionTrace) -> float:
    """Energy obtained by integrating the power profile over time.

    Must agree with ``trace.total_energy`` (which sums per-segment
    energies); the test suite checks the two against each other.
    """
    return sum((b - a) * p for a, b, p in power_profile(trace))


def trace_summary(trace: ExecutionTrace) -> dict[str, float]:
    """Compact numeric summary of a trace."""
    if not trace.records:
        raise InvalidSolutionError("cannot summarise an empty trace")
    utilisation = processor_utilisation(trace)
    return {
        "n_tasks": float(len(trace.records)),
        "n_processors": float(len(trace.processors())),
        "makespan": trace.makespan,
        "total_energy": trace.total_energy,
        "mean_utilisation": sum(utilisation.values()) / len(utilisation),
        "max_task_finish": max(r.finish for r in trace.records.values()),
    }
