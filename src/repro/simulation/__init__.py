"""Discrete-event simulation of speed-annotated schedules.

The optimisers reason about the execution analytically (ASAP completion
times); the simulator executes the schedule event by event, independently of
the optimisers' arithmetic, and reports per-task timings, per-processor busy
intervals, a piecewise-constant power profile and the total energy.  Tests
cross-check the simulated energy and makespan against the analytical values,
which guards against bookkeeping bugs in either layer.
"""

from repro.simulation.trace import TaskRecord, SegmentRecord, ExecutionTrace
from repro.simulation.engine import simulate, simulate_solution
from repro.simulation.metrics import (
    processor_utilisation,
    power_profile,
    energy_from_profile,
    trace_summary,
)

__all__ = [
    "TaskRecord",
    "SegmentRecord",
    "ExecutionTrace",
    "simulate",
    "simulate_solution",
    "processor_utilisation",
    "power_profile",
    "energy_from_profile",
    "trace_summary",
]
