"""Execution-trace data structures produced by the simulator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.utils.errors import InvalidSolutionError


@dataclass(frozen=True)
class SegmentRecord:
    """One constant-speed interval of a task's execution."""

    task: str
    processor: int
    speed: float
    start: float
    end: float

    @property
    def duration(self) -> float:
        """Length of the interval."""
        return self.end - self.start

    def energy(self, alpha: float = 3.0) -> float:
        """Dynamic energy of the segment under the ``s**alpha`` power law."""
        return self.speed ** alpha * self.duration


@dataclass(frozen=True)
class TaskRecord:
    """Complete execution record of one task."""

    task: str
    processor: int
    work: float
    start: float
    finish: float
    segments: tuple[SegmentRecord, ...]

    @property
    def duration(self) -> float:
        """Wall-clock execution time of the task."""
        return self.finish - self.start

    def executed_work(self) -> float:
        """Work accounted for by the segments (should equal ``work``)."""
        return sum(s.speed * s.duration for s in self.segments)

    def energy(self, alpha: float = 3.0) -> float:
        """Dynamic energy of the task."""
        return sum(s.energy(alpha) for s in self.segments)


@dataclass
class ExecutionTrace:
    """The full result of simulating a schedule."""

    records: dict[str, TaskRecord] = field(default_factory=dict)
    alpha: float = 3.0

    def add(self, record: TaskRecord) -> None:
        """Register a task record (task names must be unique)."""
        if record.task in self.records:
            raise InvalidSolutionError(f"duplicate trace record for task {record.task!r}")
        self.records[record.task] = record

    @property
    def makespan(self) -> float:
        """Latest finish time across all tasks."""
        return max((r.finish for r in self.records.values()), default=0.0)

    @property
    def total_energy(self) -> float:
        """Total dynamic energy of the trace."""
        return sum(r.energy(self.alpha) for r in self.records.values())

    def processors(self) -> list[int]:
        """Sorted list of processor ids appearing in the trace."""
        return sorted({r.processor for r in self.records.values()})

    def records_on(self, processor: int) -> list[TaskRecord]:
        """Task records executed on ``processor``, ordered by start time."""
        return sorted((r for r in self.records.values() if r.processor == processor),
                      key=lambda r: (r.start, r.task))

    def segments(self) -> Iterable[SegmentRecord]:
        """All constant-speed segments across all tasks."""
        for record in self.records.values():
            yield from record.segments

    def busy_time(self, processor: int) -> float:
        """Total time ``processor`` spends executing tasks."""
        return sum(r.duration for r in self.records_on(processor))
