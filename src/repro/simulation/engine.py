"""Event-driven execution of a speed-annotated execution graph.

The simulator maintains a ready set and a virtual clock: a task becomes
ready when all of its predecessors (in the execution graph, so both
application and same-processor ordering constraints) have completed; it then
starts immediately — idle gaps appear only when a task waits for a
predecessor on another processor.  Each task runs through its constant-speed
segments; the simulator records every segment, checks that the executed work
matches the task's work, and reports the full trace.

Because the execution graph already serialises the tasks sharing a
processor, the ASAP semantics of the simulator coincide with the analytical
schedule used by the optimisers — the point of simulating is to obtain the
per-processor timeline/power profile and to cross-check the two code paths
against each other.
"""

from __future__ import annotations

import heapq
from typing import Mapping

from repro.core.problem import MinEnergyProblem
from repro.core.solution import Assignment, HoppingAssignment, Solution, SpeedAssignment
from repro.graphs.taskgraph import TaskGraph
from repro.mapping.execution_graph import ExecutionGraph
from repro.simulation.trace import ExecutionTrace, SegmentRecord, TaskRecord
from repro.utils.errors import InvalidSolutionError


def _segments_of(assignment: Assignment, task: str, work: float) -> list[tuple[float, float]]:
    """Normalised ``(speed, duration)`` segments of a task."""
    if isinstance(assignment, SpeedAssignment):
        speed = assignment.speed(task)
        return [(speed, work / speed)]
    if isinstance(assignment, HoppingAssignment):
        return [(s, t) for s, t in assignment.segments[task] if t > 0]
    raise InvalidSolutionError(f"unsupported assignment type {type(assignment).__name__}")


def simulate(graph: TaskGraph, assignment: Assignment, *,
             processor_of: Mapping[str, int] | None = None,
             alpha: float = 3.0) -> ExecutionTrace:
    """Simulate the execution of ``graph`` under ``assignment``.

    Parameters
    ----------
    graph:
        The execution graph (precedence plus same-processor ordering edges).
    assignment:
        Constant-speed or hopping assignment covering every task.
    processor_of:
        Optional mapping from task to processor id, used only for labelling
        the trace (defaults to processor 0 for every task).
    alpha:
        Power-law exponent used for the per-segment energies in the trace.

    Returns
    -------
    ExecutionTrace
        Per-task records with their constant-speed segments.
    """
    graph.validate()
    processor_of = processor_of or {}
    indegree = {n: graph.in_degree(n) for n in graph.task_names()}
    finish: dict[str, float] = {}
    trace = ExecutionTrace(alpha=alpha)

    # event queue of (time, sequence, task) for tasks whose predecessors are done
    ready: list[tuple[float, int, str]] = []
    sequence = 0
    for n in graph.task_names():
        if indegree[n] == 0:
            heapq.heappush(ready, (0.0, sequence, n))
            sequence += 1

    completed = 0
    while ready:
        start_time, _seq, task = heapq.heappop(ready)
        work = graph.work(task)
        segments = _segments_of(assignment, task, work)
        executed = sum(s * t for s, t in segments)
        if abs(executed - work) > 1e-6 * max(1.0, work):
            raise InvalidSolutionError(
                f"task {task!r}: segments execute {executed:g} work units, expected {work:g}"
            )
        proc = int(processor_of.get(task, 0))
        clock = start_time
        seg_records: list[SegmentRecord] = []
        for speed, duration in segments:
            seg_records.append(SegmentRecord(task=task, processor=proc, speed=speed,
                                             start=clock, end=clock + duration))
            clock += duration
        trace.add(TaskRecord(task=task, processor=proc, work=work,
                             start=start_time, finish=clock,
                             segments=tuple(seg_records)))
        finish[task] = clock
        completed += 1
        for succ in graph.successors(task):
            indegree[succ] -= 1
            if indegree[succ] == 0:
                release = max((finish[p] for p in graph.predecessors(succ)), default=0.0)
                heapq.heappush(ready, (release, sequence, succ))
                sequence += 1

    if completed != graph.n_tasks:
        raise InvalidSolutionError(
            f"simulation completed only {completed} of {graph.n_tasks} tasks "
            "(the execution graph contains a cycle or disconnected constraint)"
        )
    return trace


def simulate_solution(solution: Solution, *,
                      execution: ExecutionGraph | None = None) -> ExecutionTrace:
    """Simulate a solver :class:`Solution`.

    Parameters
    ----------
    solution:
        The solution to replay.
    execution:
        Optional :class:`ExecutionGraph` providing the task-to-processor
        labelling for the trace; when omitted, tasks are labelled with
        processor 0.
    """
    problem: MinEnergyProblem = solution.problem
    processor_of = None
    if execution is not None:
        processor_of = {t: execution.processor_of(t)
                        for t in execution.task_graph.task_names()}
    return simulate(problem.graph, solution.assignment,
                    processor_of=processor_of, alpha=problem.power.alpha)
