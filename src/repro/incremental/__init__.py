"""Solvers and certificates for the Incremental energy model.

The Incremental model restricts speeds to the regular grid
``s_min + i * delta`` (the paper's "potentiometer knob").  ``MinEnergy`` is
still NP-complete (Theorem 4), but Theorem 5 shows it can be approximated
within ``(1 + delta / s_min)**2 * (1 + 1/K)**2`` in time polynomial in the
instance size and ``K``; Proposition 1 gives the companion a-priori ratios
with respect to the Continuous and Discrete models.

This subpackage provides:

* :func:`solve_incremental_approx` — the Theorem 5 algorithm: solve the
  Continuous relaxation (to the accuracy controlled by ``K``) and round
  every speed up to the next grid point;
* :func:`incremental_certificate` — the a-priori and a-posteriori ratio
  certificates of Theorem 5 / Proposition 1;
* re-exports of the exact Discrete machinery, which applies verbatim since
  an Incremental model is a Discrete model with a regular mode set.
"""

from repro.incremental.approx import (
    solve_incremental_approx,
    solve_incremental_exact,
    incremental_certificate,
    ApproximationCertificate,
)
from repro.incremental.grid import build_incremental_model, grid_from_discrete

__all__ = [
    "solve_incremental_approx",
    "solve_incremental_exact",
    "incremental_certificate",
    "ApproximationCertificate",
    "build_incremental_model",
    "grid_from_discrete",
]
