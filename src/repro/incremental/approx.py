"""The Theorem 5 approximation algorithm and its certificates.

Algorithm (round-up from the Continuous relaxation):

1. solve the Continuous relaxation of the instance with ``s_max`` equal to
   the largest grid speed.  The relaxation's optimum ``E_cont`` is a lower
   bound on the Incremental optimum.  For series-parallel graphs the
   relaxation is solved exactly in closed form; in general it is solved
   numerically, and the parameter ``K`` of Theorem 5 controls the accuracy
   requested from the numerical solver (relative tolerance ``1 / K``) —
   this is the source of the ``(1 + 1/K)**2`` factor in the theorem;
2. round every ideal speed **up** to the next grid point
   ``s_min + i * delta``.  Durations only shrink, so feasibility is
   preserved;
3. because the rounded speed exceeds the ideal speed by at most ``delta``
   and every ideal speed is at least ``s_min`` (when it is not, the slowest
   grid speed is already faster than needed and the task's energy is below
   its continuous share anyway, see note below), the per-task energy grows
   by at most a factor ``((s + delta) / s)**2 <= (1 + delta / s_min)**2``.

Hence ``E_approx <= (1 + delta/s_min)**2 * (1 + 1/K)**2 * OPT_incremental``,
which is Theorem 5; with an exact continuous solve the factor collapses to
``(1 + delta/s_min)**2`` — the first bullet of Proposition 1.

Note on slow tasks: when the continuous-optimal speed of a task is below
``s_min``, the task is forced to run at ``s_min`` (or faster).  Its energy
is then ``w * s_min**2``, which can exceed its continuous share by more than
the advertised factor; however the *Incremental optimum* pays at least
``w * s_min**2`` for that task as well (it has no slower speed available),
so the per-task ratio against the Incremental optimum — the quantity
Theorem 5 bounds — still holds.  The a-posteriori certificate returned by
:func:`incremental_certificate` accounts for this by comparing against the
max of the continuous share and the forced minimum energy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.models import ContinuousModel, IncrementalModel
from repro.core.problem import MinEnergyProblem
from repro.core.registry import REGISTRY, OptionSpec
from repro.core.solution import SpeedAssignment, Solution, make_solution
from repro.utils.errors import InvalidModelError


@dataclass(frozen=True)
class ApproximationCertificate:
    """Quality certificate of an Incremental approximation.

    Attributes
    ----------
    a_priori_ratio:
        The guaranteed bound ``(1 + delta/s_min)**2 * (1 + 1/K)**2`` of
        Theorem 5 (before looking at the instance).
    a_posteriori_ratio:
        ``energy / lower_bound`` actually achieved on the instance (always
        at most the a-priori ratio when the continuous relaxation was
        solved exactly).
    continuous_lower_bound:
        Energy of the Continuous relaxation used as the lower bound.
    delta:
        Grid increment.
    s_min:
        Smallest grid speed.
    k:
        The accuracy parameter ``K`` of Theorem 5.
    """

    a_priori_ratio: float
    a_posteriori_ratio: float
    continuous_lower_bound: float
    delta: float
    s_min: float
    k: int

    def is_within_guarantee(self) -> bool:
        """Whether the measured ratio respects the proven bound."""
        return self.a_posteriori_ratio <= self.a_priori_ratio * (1.0 + 1e-9)


def theorem5_ratio(model: IncrementalModel, k: int, *, alpha: float = 3.0) -> float:
    """The a-priori approximation factor of Theorem 5.

    ``(1 + delta/s_min)**(alpha-1) * (1 + 1/K)**(alpha-1)``; with the paper's
    cubic law (``alpha = 3``) both exponents are 2.
    """
    if k < 1:
        raise InvalidModelError("K must be a positive integer")
    rounding = (1.0 + model.delta / model.s_min) ** (alpha - 1.0) if model.delta > 0 else 1.0
    accuracy = (1.0 + 1.0 / k) ** (alpha - 1.0)
    return rounding * accuracy


def solve_incremental_approx(problem: MinEnergyProblem, *, k: int = 1000) -> Solution:
    """Theorem 5: approximate the Incremental optimum by continuous round-up.

    Parameters
    ----------
    problem:
        The instance; its model must be an :class:`IncrementalModel`.
    k:
        Accuracy parameter of Theorem 5: the Continuous relaxation is solved
        to relative accuracy ``1 / k``.  The default solves the relaxation
        essentially exactly, so the measured ratio is governed by the
        ``(1 + delta/s_min)**2`` term alone.
    """
    from repro.continuous.general import solve_general_convex
    from repro.continuous.solve import solve_continuous

    model = problem.model
    if not isinstance(model, IncrementalModel):
        raise InvalidModelError(
            f"solve_incremental_approx expects an IncrementalModel, got {model.name}"
        )
    if k < 1:
        raise InvalidModelError("K must be a positive integer")
    problem.ensure_feasible()

    relaxed = problem.with_model(ContinuousModel(s_max=model.max_speed))
    if k >= 1000:
        continuous = solve_continuous(relaxed)
    else:
        # honour the requested (lower) accuracy explicitly through the
        # numerical solver tolerance — this is what costs the (1+1/K)^2 term
        continuous = solve_general_convex(relaxed, tolerance=1.0 / (k * k))
    ideal = continuous.speeds()

    speeds: dict[str, float] = {}
    for name in problem.graph.task_names():
        target = min(max(ideal[name], model.s_min), model.max_speed)
        speeds[name] = model.round_up(target)
    assignment = SpeedAssignment(speeds)
    certificate = incremental_certificate(problem, assignment.energy(problem.graph, problem.power),
                                          continuous.energy, k=k)
    return make_solution(
        problem, assignment, solver="incremental-theorem5-round-up", optimal=False,
        lower_bound=continuous.energy,
        metadata={
            "k": k,
            "a_priori_ratio": certificate.a_priori_ratio,
            "a_posteriori_ratio": certificate.a_posteriori_ratio,
            "continuous_solver": continuous.solver,
        },
    )


def solve_incremental_exact(problem: MinEnergyProblem, *, max_nodes: int = 2_000_000) -> Solution:
    """Exact Incremental optimum (NP-hard; small instances only).

    Delegates to the Discrete exact machinery, since an Incremental model is
    a Discrete model with a regular grid.
    """
    from repro.discrete.solve import solve_discrete

    model = problem.model
    if not isinstance(model, IncrementalModel):
        raise InvalidModelError(
            f"solve_incremental_exact expects an IncrementalModel, got {model.name}"
        )
    return solve_discrete(problem, exact=True, max_nodes=max_nodes)


# --------------------------------------------------------------------------- #
# registered backends (repro.solve resolves these through the SolverRegistry)
# --------------------------------------------------------------------------- #
REGISTRY.register(
    "incremental", "theorem5", default=True, aliases=("approx", "round-up"),
    options=(
        OptionSpec("k", (int,), default=1000,
                   doc="Theorem 5 accuracy parameter K (relaxation solved "
                       "to relative accuracy 1/K)"),
    ),
    doc="Theorem 5 round-up from the Continuous relaxation.",
)(solve_incremental_approx)

REGISTRY.register(
    "incremental", "exact",
    options=(
        OptionSpec("max_nodes", (int,), default=2_000_000,
                   doc="node cap of the branch and bound"),
    ),
    doc="Exact Incremental optimum via the Discrete machinery (NP-hard).",
)(solve_incremental_exact)


def incremental_certificate(problem: MinEnergyProblem, achieved_energy: float,
                            continuous_lower_bound: float, *, k: int = 1000
                            ) -> ApproximationCertificate:
    """Build the Theorem 5 / Proposition 1 certificate for an achieved energy."""
    model = problem.model
    if not isinstance(model, IncrementalModel):
        raise InvalidModelError(
            f"incremental_certificate expects an IncrementalModel, got {model.name}"
        )
    alpha = problem.power.alpha
    # The valid lower bound accounts for tasks whose continuous speed falls
    # below s_min: every Incremental solution pays at least w * s_min^(alpha-1)
    # for each task, so the bound is the max of that floor and the continuous
    # optimum's per-instance value.
    forced_floor = sum(
        problem.power.energy_for_work(problem.graph.work(n), model.s_min)
        for n in problem.graph.task_names()
    )
    lower = max(continuous_lower_bound, forced_floor)
    ratio = achieved_energy / lower if lower > 0 else 1.0
    return ApproximationCertificate(
        a_priori_ratio=theorem5_ratio(model, k, alpha=alpha),
        a_posteriori_ratio=ratio,
        continuous_lower_bound=continuous_lower_bound,
        delta=model.delta,
        s_min=model.s_min,
        k=k,
    )
