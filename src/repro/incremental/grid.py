"""Construction helpers for Incremental speed grids.

The Incremental model is parameterised by ``(s_min, s_max, delta)``; these
helpers build grids matching a target mode count or matching an existing
Discrete mode set (used by Proposition 1's second bullet, which compares a
Discrete instance against an Incremental grid whose increment equals the
largest mode gap).
"""

from __future__ import annotations

from repro.core.models import DiscreteModel, IncrementalModel
from repro.utils.errors import InvalidModelError


def build_incremental_model(s_min: float, s_max: float, *,
                            delta: float | None = None,
                            n_modes: int | None = None) -> IncrementalModel:
    """Build an Incremental model from a speed range.

    Exactly one of ``delta`` and ``n_modes`` must be given; ``n_modes``
    chooses the increment so that the grid has that many points between
    ``s_min`` and ``s_max`` inclusive.
    """
    if (delta is None) == (n_modes is None):
        raise InvalidModelError("specify exactly one of delta and n_modes")
    if n_modes is not None:
        if n_modes < 1:
            raise InvalidModelError("n_modes must be at least 1")
        if n_modes == 1:
            return IncrementalModel.from_range(s_min, s_min, s_min)
        delta = (s_max - s_min) / (n_modes - 1)
        if delta <= 0:
            raise InvalidModelError("s_max must exceed s_min when n_modes > 1")
    assert delta is not None
    return IncrementalModel.from_range(s_min, s_max, delta)


def grid_from_discrete(model: DiscreteModel) -> IncrementalModel:
    """Incremental grid covering a Discrete mode set (Proposition 1, bullet 2).

    The grid spans ``[s_1, s_m]`` with increment equal to the largest gap
    between consecutive modes, so every Discrete mode has a grid point at or
    below it within one increment.
    """
    modes = model.modes
    if len(modes) == 1:
        return IncrementalModel.from_range(modes[0], modes[0], modes[0])
    gap = model.max_mode_gap()
    return IncrementalModel.from_range(modes[0], modes[-1], gap)
