"""Cache stores: in-process LRU and on-disk JSON.

Both stores map hex cache keys (see
:meth:`repro.core.problem.MinEnergyProblem.cache_key`) to JSON-serialisable
*result envelopes* (see :func:`repro.cache.solution_envelope`), so a value
written by either store can be read by the other and the two always agree on
content.  Stores are deliberately dumb — eviction, counters and solution
reconstruction live in :class:`repro.cache.ResultCache`.
"""

from __future__ import annotations

import json
import os
import re
from collections import OrderedDict
from pathlib import Path
from typing import Any, Iterator
from repro.utils.errors import InvalidParameterError

_KEY_RE = re.compile(r"^[0-9a-f]{16,128}$")


def _check_key(key: str) -> str:
    """Keys become file names, so only hex digests are accepted."""
    if not isinstance(key, str) or not _KEY_RE.match(key):
        raise InvalidParameterError(f"cache keys must be hex digests, got {key!r}")
    return key


class MemoryLRUStore:
    """In-process LRU store bounded to ``maxsize`` entries.

    Lookups refresh recency; inserting past the bound evicts the least
    recently used entry.  Not thread-safe on its own — the
    :class:`repro.cache.ResultCache` facade serialises access.
    """

    def __init__(self, maxsize: int = 4096) -> None:
        if maxsize < 1:
            raise InvalidParameterError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._data: OrderedDict[str, dict[str, Any]] = OrderedDict()

    def get(self, key: str) -> dict[str, Any] | None:
        entry = self._data.get(_check_key(key))
        if entry is None:
            return None
        self._data.move_to_end(key)
        return entry

    def put(self, key: str, value: dict[str, Any]) -> None:
        self._data[_check_key(key)] = value
        self._data.move_to_end(key)
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)

    def __contains__(self, key: str) -> bool:
        return _check_key(key) in self._data

    def __len__(self) -> int:
        return len(self._data)

    def __iter__(self) -> Iterator[str]:
        return iter(list(self._data))

    def clear(self) -> None:
        self._data.clear()


class DiskJSONStore:
    """One JSON file per key under a directory.

    Writes are atomic (temp file + ``os.replace``) so a crashed writer never
    leaves a truncated envelope behind; a corrupt or unreadable file reads as
    a miss rather than an error.  Suitable for sharing warm results between
    processes or across runs (e.g. repeated benchmark sweeps).
    """

    def __init__(self, directory: str | os.PathLike) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        return self.directory / f"{_check_key(key)}.json"

    def get(self, key: str) -> dict[str, Any] | None:
        path = self._path(key)
        try:
            with path.open("r", encoding="utf-8") as handle:
                value = json.load(handle)
        except (OSError, ValueError):
            return None
        return value if isinstance(value, dict) else None

    def put(self, key: str, value: dict[str, Any]) -> None:
        path = self._path(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(value, sort_keys=True), encoding="utf-8")
        os.replace(tmp, path)

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.json"))

    def __iter__(self) -> Iterator[str]:
        return (p.stem for p in self.directory.glob("*.json"))

    def clear(self) -> None:
        for path in self.directory.glob("*.json"):
            try:
                path.unlink()
            except OSError:  # pragma: no cover - concurrent clear
                pass
