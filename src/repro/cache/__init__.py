"""Content-addressed cache of solve results.

A solve request is identified by
:meth:`repro.core.problem.MinEnergyProblem.cache_key` — a SHA-256 over the
graph structure hash, the weights, the model parameters, the deadline, the
power exponent and the resolved solver ``(method, options)`` pair.  The
cache maps those keys to JSON-serialisable *envelopes* holding the speed (or
hopping) assignment plus the solver's verdict, so a hit is rebuilt into a
full, re-validated :class:`~repro.core.solution.Solution` without running
any solver.  Repeated sweep cells and incremental re-solves become
near-free.

Two stores are provided (and agree on content, see
:mod:`repro.cache.store`): an in-process LRU and an on-disk JSON directory.

Quickstart
----------
>>> from repro.cache import memory_cache
>>> from repro.solve import solve
>>> cache = memory_cache()
>>> first = solve(problem, cache=cache)          # doctest: +SKIP
>>> again = solve(problem, cache=cache)          # doctest: +SKIP
>>> again.metadata["cache_hit"], cache.stats.hit_rate  # doctest: +SKIP
(True, 0.5)

Batch wiring: pass ``cache=`` to :func:`repro.batch.solve_many`,
:func:`repro.batch.sweep` or a :class:`repro.service.SolverService` — only
misses are fanned out to workers, and every row records its ``cache_hit``
flag in :attr:`repro.batch.BatchResult.metadata`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.cache.store import DiskJSONStore, MemoryLRUStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.problem import MinEnergyProblem
    from repro.core.solution import Solution


def _jsonable(value: Any) -> Any:
    """Best-effort conversion of solver metadata to JSON-stable values."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    # numpy scalars expose item(); anything else degrades to repr
    item = getattr(value, "item", None)
    if callable(item):
        try:
            return _jsonable(item())
        except Exception:  # pragma: no cover - exotic array-likes
            pass
    return repr(value)


def solution_envelope(solution: "Solution") -> dict[str, Any]:
    """Serialisable envelope of a solution (the cached value).

    Stores the assignment (constant speeds, or hopping segments), the solver
    name, optimality flag, lower bound and sanitised metadata — everything
    needed to rebuild an equivalent :class:`Solution` for an identical
    problem.  Energy and makespan are included for summary consumers (batch
    rows) but are recomputed on reconstruction, so a tampered envelope
    cannot smuggle in an inconsistent verdict.
    """
    from repro.core.solution import SpeedAssignment

    envelope: dict[str, Any] = {
        "solver": solution.solver,
        "energy": float(solution.energy),
        "makespan": float(solution.makespan),
        "optimal": bool(solution.optimal),
        "lower_bound": (float(solution.lower_bound)
                        if solution.lower_bound is not None else None),
        "metadata": {k: _jsonable(v) for k, v in solution.metadata.items()
                     if k != "cache_hit"},
    }
    assignment = solution.assignment
    if isinstance(assignment, SpeedAssignment):
        envelope["speeds"] = {n: float(s) for n, s in assignment.speeds.items()}
    else:
        envelope["segments"] = {
            n: [[float(s), float(t)] for s, t in segs]
            for n, segs in assignment.segments.items()
        }
    return envelope


def solution_from_envelope(problem: "MinEnergyProblem",
                           envelope: dict[str, Any]) -> "Solution":
    """Rebuild a :class:`Solution` for ``problem`` from a cached envelope.

    The schedule and energy are recomputed from the stored assignment via
    :func:`repro.core.solution.make_solution`, and the result carries
    ``metadata["cache_hit"] = True``.
    """
    from repro.core.solution import (
        HoppingAssignment,
        SpeedAssignment,
        make_solution,
    )

    if "segments" in envelope:
        assignment: Any = HoppingAssignment(segments={
            n: [(float(s), float(t)) for s, t in segs]
            for n, segs in envelope["segments"].items()
        })
    else:
        assignment = SpeedAssignment(speeds={
            n: float(s) for n, s in envelope["speeds"].items()
        })
    metadata = dict(envelope.get("metadata") or {})
    metadata["cache_hit"] = True
    return make_solution(
        problem, assignment,
        solver=envelope["solver"],
        lower_bound=envelope.get("lower_bound"),
        optimal=bool(envelope.get("optimal", False)),
        metadata=metadata,
    )


@dataclass
class CacheStats:
    """Hit/miss/insert counters of a :class:`ResultCache`."""

    hits: int = 0
    misses: int = 0
    puts: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        total = self.lookups
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict[str, float | int]:
        return {"hits": self.hits, "misses": self.misses, "puts": self.puts,
                "hit_rate": self.hit_rate}


@dataclass
class ResultCache:
    """Thread-safe facade over a cache store, with hit/miss counters.

    ``store`` may be a :class:`~repro.cache.store.MemoryLRUStore`, a
    :class:`~repro.cache.store.DiskJSONStore`, or anything with the same
    ``get``/``put``/``clear``/``__len__`` surface.
    """

    store: Any = field(default_factory=MemoryLRUStore)
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self._lock = threading.Lock()

    def get(self, key: str) -> dict[str, Any] | None:
        """Look up an envelope; counts a hit or a miss."""
        with self._lock:
            envelope = self.store.get(key)
            if envelope is None:
                self.stats.misses += 1
            else:
                self.stats.hits += 1
        return envelope

    def peek(self, key: str) -> dict[str, Any] | None:
        """Look up without touching the hit/miss counters.

        For content introspection (tests, debugging, store comparisons) —
        every solving code path goes through :meth:`get` so the stats stay
        an honest account of cache effectiveness.
        """
        with self._lock:
            return self.store.get(key)

    def put(self, key: str, envelope: dict[str, Any]) -> None:
        with self._lock:
            self.store.put(key, envelope)
            self.stats.puts += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self.store)

    def clear(self) -> None:
        with self._lock:
            self.store.clear()

    def reset_stats(self) -> None:
        with self._lock:
            self.stats = CacheStats()


def memory_cache(maxsize: int = 4096) -> ResultCache:
    """An in-process LRU result cache bounded to ``maxsize`` envelopes."""
    return ResultCache(store=MemoryLRUStore(maxsize=maxsize))


def disk_cache(directory) -> ResultCache:
    """A result cache persisted as one JSON file per key under ``directory``."""
    return ResultCache(store=DiskJSONStore(directory))


__all__ = [
    "CacheStats",
    "DiskJSONStore",
    "MemoryLRUStore",
    "ResultCache",
    "disk_cache",
    "memory_cache",
    "solution_envelope",
    "solution_from_envelope",
]
