"""Speed assignments, schedules and solver results.

Two kinds of assignments exist:

* :class:`SpeedAssignment` — one constant speed per task, used by the
  Continuous, Discrete and Incremental models;
* :class:`HoppingAssignment` — an ordered list of ``(speed, duration)``
  segments per task, used by the Vdd-Hopping model where the speed may
  change during a task.

Both expose the same interface (per-task duration, per-task energy, total
energy), so the schedule construction, validation and simulation layers do
not care which model produced them.  A :class:`Solution` bundles an
assignment with the problem it solves, the resulting schedule (ASAP start
and finish times), the energy value and solver metadata.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

import numpy as np

from repro.core.power import PowerLaw, CUBIC
from repro.core.problem import MinEnergyProblem
from repro.graphs.taskgraph import GraphIndex, TaskGraph
from repro.utils.errors import InvalidSolutionError
from repro.utils.numerics import is_close


@dataclass(frozen=True)
class SpeedAssignment:
    """A constant speed for every task.

    Attributes
    ----------
    speeds:
        Mapping from task name to its (strictly positive) execution speed.
    """

    speeds: Mapping[str, float]

    def __post_init__(self) -> None:
        for name, s in self.speeds.items():
            if not s > 0:
                raise InvalidSolutionError(
                    f"task {name!r} has non-positive speed {s}"
                )

    def speed(self, task: str) -> float:
        """Speed of ``task``."""
        return self.speeds[task]

    def duration(self, task: str, work: float) -> float:
        """Execution time of ``task`` given its ``work``."""
        return work / self.speeds[task]

    def speeds_vector(self, graph: TaskGraph) -> np.ndarray:
        """Dense speed vector aligned with ``graph.index().names``."""
        return graph.index().vector_of(self.speeds)

    def durations_vector(self, graph: TaskGraph) -> np.ndarray:
        """Dense duration vector (``work / speed``) aligned with the index."""
        idx = graph.index()
        return idx.works / idx.vector_of(self.speeds)

    def durations(self, graph: TaskGraph) -> dict[str, float]:
        """Per-task execution times for the given graph."""
        return graph.index().mapping_of(self.durations_vector(graph))

    def energy(self, graph: TaskGraph, power: PowerLaw = CUBIC) -> float:
        """Total dynamic energy of the assignment on ``graph``.

        Vectorized over the graph index: ``sum_i w_i * s_i**(alpha - 1)``
        (speeds are validated strictly positive at construction, so the
        closed form matches :meth:`PowerLaw.energy_for_work` task by task).
        """
        idx = graph.index()
        speeds = idx.vector_of(self.speeds)
        return float(np.dot(idx.works, speeds ** (power.alpha - 1.0)))

    def task_energy(self, task: str, work: float, power: PowerLaw = CUBIC) -> float:
        """Energy of a single task."""
        return power.energy_for_work(work, self.speeds[task])

    def tasks(self) -> list[str]:
        """Names of the tasks covered by the assignment."""
        return list(self.speeds.keys())

    def scaled(self, factor: float) -> "SpeedAssignment":
        """Return a new assignment with every speed multiplied by ``factor``."""
        if factor <= 0:
            raise InvalidSolutionError("scaling factor must be strictly positive")
        return SpeedAssignment({n: s * factor for n, s in self.speeds.items()})


@dataclass(frozen=True)
class HoppingAssignment:
    """A per-task sequence of ``(speed, time)`` execution segments.

    Used by the Vdd-Hopping model: a task may run part of its work at one
    mode and the rest at another.  Each segment is a pair
    ``(speed, duration)`` with a strictly positive speed and non-negative
    duration; the work executed by a segment is ``speed * duration``.
    """

    segments: Mapping[str, Sequence[tuple[float, float]]]

    def __post_init__(self) -> None:
        for name, segs in self.segments.items():
            if not segs:
                raise InvalidSolutionError(f"task {name!r} has no execution segment")
            for speed, time in segs:
                if not speed > 0:
                    raise InvalidSolutionError(
                        f"task {name!r} has a segment with non-positive speed {speed}"
                    )
                if time < 0:
                    raise InvalidSolutionError(
                        f"task {name!r} has a segment with negative duration {time}"
                    )

    def duration(self, task: str, work: float | None = None) -> float:
        """Total execution time of ``task`` (sum of its segment durations)."""
        return sum(t for _s, t in self.segments[task])

    def executed_work(self, task: str) -> float:
        """Work executed by the segments of ``task``."""
        return sum(s * t for s, t in self.segments[task])

    def durations(self, graph: TaskGraph) -> dict[str, float]:
        """Per-task execution times."""
        return {n: self.duration(n) for n in graph.task_names()}

    def energy(self, graph: TaskGraph, power: PowerLaw = CUBIC) -> float:
        """Total dynamic energy: sum over segments of ``P(s) * t``."""
        total = 0.0
        for n in graph.task_names():
            for s, t in self.segments[n]:
                total += power.energy(s, t)
        return total

    def task_energy(self, task: str, work: float | None = None,
                    power: PowerLaw = CUBIC) -> float:
        """Energy of a single task."""
        return sum(power.energy(s, t) for s, t in self.segments[task])

    def tasks(self) -> list[str]:
        """Names of the tasks covered by the assignment."""
        return list(self.segments.keys())

    def average_speeds(self) -> dict[str, float]:
        """Work-weighted average speed of every task (``work / duration``)."""
        out: dict[str, float] = {}
        for n, segs in self.segments.items():
            total_time = sum(t for _s, t in segs)
            total_work = sum(s * t for s, t in segs)
            out[n] = total_work / total_time if total_time > 0 else float("inf")
        return out

    @classmethod
    def from_constant_speeds(cls, assignment: SpeedAssignment,
                             graph: TaskGraph) -> "HoppingAssignment":
        """Lift a constant-speed assignment into the hopping representation."""
        segments = {
            n: [(assignment.speed(n), assignment.duration(n, graph.work(n)))]
            for n in graph.task_names()
        }
        return cls(segments=segments)


Assignment = SpeedAssignment | HoppingAssignment


@dataclass(frozen=True)
class Schedule:
    """Start and finish times of every task (as-soon-as-possible execution)."""

    start: Mapping[str, float]
    finish: Mapping[str, float]

    @property
    def makespan(self) -> float:
        """Latest finish time (0 for an empty schedule)."""
        return max(self.finish.values(), default=0.0)

    def task_interval(self, task: str) -> tuple[float, float]:
        """``(start, finish)`` of a task."""
        return self.start[task], self.finish[task]


def asap_times(idx: GraphIndex, durations: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized ASAP start/finish times over a graph index.

    Wide graphs are processed one whole level at a time with
    ``np.maximum.at`` over the level's incoming edges; for deep, narrow
    graphs (many levels relative to the task count) the per-level NumPy
    dispatch overhead would dominate, so a flat pass over the CSR arrays is
    used instead.  Both paths are O(n + m) and recursion-free.
    """
    n = idx.n_tasks
    start = np.zeros(n)
    finish = np.zeros(n)
    if n == 0:
        return start, finish
    n_levels = idx.n_levels
    if n_levels * 4 <= n:
        # level-batched: every task of a level starts after the max finish
        # of its in-edges, all applied in one scatter per level
        order_by_level, level_ptr = idx.order_by_level, idx.level_ptr
        edge_src, edge_dst, edge_level_ptr = idx.edge_src, idx.edge_dst, idx.edge_level_ptr
        first = order_by_level[level_ptr[0]:level_ptr[1]]
        finish[first] = durations[first]
        for lv in range(1, n_levels):
            e0, e1 = edge_level_ptr[lv], edge_level_ptr[lv + 1]
            np.maximum.at(start, edge_dst[e0:e1], finish[edge_src[e0:e1]])
            nodes = order_by_level[level_ptr[lv]:level_ptr[lv + 1]]
            finish[nodes] = start[nodes] + durations[nodes]
        return start, finish
    # deep graph: flat CSR pass on Python lists (no per-step NumPy dispatch)
    pred_ptr = idx.pred_ptr.tolist()
    pred_idx = idx.pred_idx.tolist()
    dur = durations.tolist()
    s_list = [0.0] * n
    f_list = [0.0] * n
    for u in idx.topo_order.tolist():
        lo, hi = pred_ptr[u], pred_ptr[u + 1]
        s = 0.0
        for p in pred_idx[lo:hi]:
            fp = f_list[p]
            if fp > s:
                s = fp
        s_list[u] = s
        f_list[u] = s + dur[u]
    return np.asarray(s_list), np.asarray(f_list)


def compute_makespan(graph: TaskGraph, durations: Mapping[str, float] | np.ndarray) -> float:
    """Makespan of the ASAP schedule without materialising per-task dicts.

    ``durations`` may be a per-task mapping or a dense vector in the order
    of ``graph.index().names``.  This is the fast path used by feasibility
    probes that only need the latest finish time (convex-solver line
    searches, greedy reclamation, batch sweeps).
    """
    idx = graph.index()
    if not isinstance(durations, np.ndarray):
        durations = idx.vector_of(durations)
    _start, finish = asap_times(idx, durations)
    return float(finish.max()) if idx.n_tasks else 0.0


def compute_schedule(graph: TaskGraph, durations: Mapping[str, float] | np.ndarray) -> Schedule:
    """ASAP schedule of ``graph`` for the given per-task durations.

    Every task starts as soon as all of its predecessors have finished; the
    result is the canonical schedule used for feasibility checking (it
    minimises every completion time simultaneously, so if it misses the
    deadline no other schedule with the same durations can meet it).

    ``durations`` may be a mapping or a dense vector aligned with
    ``graph.index().names``; the propagation itself runs on the graph's
    integer index (see :func:`asap_times`) rather than per-task dicts.
    """
    idx = graph.index()
    if not isinstance(durations, np.ndarray):
        durations = idx.vector_of(durations)
    start_v, finish_v = asap_times(idx, durations)
    start = {name: float(start_v[i]) for i, name in enumerate(idx.names)}
    finish = {name: float(finish_v[i]) for i, name in enumerate(idx.names)}
    return Schedule(start=start, finish=finish)


@dataclass
class Solution:
    """The result of a solver run.

    Attributes
    ----------
    problem:
        The instance that was solved.
    assignment:
        The speed (or hopping) assignment.
    energy:
        Total dynamic energy of the assignment (cached; recomputable from
        the assignment).
    schedule:
        ASAP schedule induced by the assignment's durations.
    solver:
        Name of the algorithm that produced the solution.
    lower_bound:
        Optional lower bound on the optimal energy certified by the solver
        (e.g. the Continuous relaxation); ``None`` when not available.
    optimal:
        Whether the solver guarantees optimality for its model.
    metadata:
        Free-form solver diagnostics (iterations, LP size, gap, ...).
    """

    problem: MinEnergyProblem
    assignment: Assignment
    energy: float
    schedule: Schedule
    solver: str
    lower_bound: float | None = None
    optimal: bool = False
    metadata: dict[str, Any] = field(default_factory=dict)

    @property
    def makespan(self) -> float:
        """Makespan of the ASAP schedule."""
        return self.schedule.makespan

    def energy_ratio(self, reference_energy: float) -> float:
        """Ratio of this solution's energy to a reference value."""
        if reference_energy <= 0:
            raise InvalidSolutionError("reference energy must be strictly positive")
        return self.energy / reference_energy

    def gap_to_lower_bound(self) -> float | None:
        """Relative gap ``(energy - lb) / lb`` when a lower bound is attached."""
        if self.lower_bound is None or self.lower_bound <= 0:
            return None
        return (self.energy - self.lower_bound) / self.lower_bound

    def speeds(self) -> dict[str, float]:
        """Per-task (average) speeds, regardless of the assignment kind."""
        if isinstance(self.assignment, SpeedAssignment):
            return dict(self.assignment.speeds)
        return self.assignment.average_speeds()

    def summary(self) -> str:
        """One-line human-readable summary."""
        gap = self.gap_to_lower_bound()
        gap_text = f", gap={gap:.2%}" if gap is not None else ""
        return (
            f"[{self.solver}] {self.problem.name}: energy={self.energy:.6g}, "
            f"makespan={self.makespan:.6g} (D={self.problem.deadline:g})"
            f"{', optimal' if self.optimal else ''}{gap_text}"
        )


def make_solution(problem: MinEnergyProblem, assignment: Assignment, *,
                  solver: str, lower_bound: float | None = None,
                  optimal: bool = False,
                  metadata: dict[str, Any] | None = None) -> Solution:
    """Assemble a :class:`Solution` (computes energy and schedule).

    The energy is recomputed from the assignment with the problem's power
    law, so solvers cannot accidentally report an energy inconsistent with
    their own assignment.
    """
    if isinstance(assignment, SpeedAssignment):
        durations: Mapping[str, float] | np.ndarray = assignment.durations_vector(problem.graph)
    else:
        durations = assignment.durations(problem.graph)
    schedule = compute_schedule(problem.graph, durations)
    energy = assignment.energy(problem.graph, problem.power)
    return Solution(
        problem=problem,
        assignment=assignment,
        energy=energy,
        schedule=schedule,
        solver=solver,
        lower_bound=lower_bound,
        optimal=optimal,
        metadata=metadata or {},
    )


def assignments_close(a: SpeedAssignment, b: SpeedAssignment, *,
                      rel_tol: float = 1e-6) -> bool:
    """Whether two constant-speed assignments agree task-by-task."""
    if set(a.speeds) != set(b.speeds):
        return False
    return all(is_close(a.speeds[n], b.speeds[n], rel_tol=rel_tol) for n in a.speeds)
