"""Dynamic power and energy laws.

The paper uses the classical cubic law: a processor running at speed ``s``
dissipates ``s**3`` watts, so executing for ``d`` time units consumes
``s**3 * d`` joules and executing ``w`` units of work (``d = w / s``)
consumes ``w * s**2`` joules.  The library exposes the exponent as a
parameter (``alpha``, default 3) because the companion literature also uses
``alpha in [2, 3]``; every solver remains correct for any ``alpha > 1``
except the closed forms of Theorem 1, which are stated (and implemented)
for the cubic case and generalise with exponent ``alpha/(alpha-1)`` norms.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.errors import InvalidModelError


@dataclass(frozen=True)
class PowerLaw:
    """Dynamic power model ``P(s) = s ** alpha``.

    Attributes
    ----------
    alpha:
        Exponent of the power law; must be strictly greater than 1 so that
        the energy-per-work function ``w * s**(alpha - 1)`` is strictly
        increasing and the energy objective is strictly convex in ``1/s``.
    """

    alpha: float = 3.0

    def __post_init__(self) -> None:
        if not self.alpha > 1.0:
            raise InvalidModelError(
                f"power exponent alpha must be > 1 for a convex energy model, got {self.alpha}"
            )

    def power(self, speed: float) -> float:
        """Instantaneous dynamic power at ``speed``."""
        if speed < 0:
            raise InvalidModelError(f"speed must be non-negative, got {speed}")
        return speed ** self.alpha

    def energy(self, speed: float, duration: float) -> float:
        """Energy consumed running at ``speed`` for ``duration`` time units."""
        if duration < 0:
            raise InvalidModelError(f"duration must be non-negative, got {duration}")
        return self.power(speed) * duration

    def energy_for_work(self, work: float, speed: float) -> float:
        """Energy consumed executing ``work`` units of work at ``speed``.

        ``E = P(s) * (w / s) = w * s**(alpha - 1)``.  A zero speed with
        positive work is infeasible and reported as infinite energy (the
        task never finishes).
        """
        if work < 0:
            raise InvalidModelError(f"work must be non-negative, got {work}")
        if work == 0:
            return 0.0
        if speed <= 0:
            return float("inf")
        return work * speed ** (self.alpha - 1.0)

    def optimal_single_task_speed(self, work: float, deadline: float) -> float:
        """Speed minimising the energy of a single task under a deadline.

        With a convex power law the optimum is always to finish exactly at
        the deadline, i.e. ``s = w / D``.
        """
        if deadline <= 0:
            raise InvalidModelError(f"deadline must be positive, got {deadline}")
        return work / deadline


#: The cubic power law used throughout the paper.
CUBIC = PowerLaw(alpha=3.0)
