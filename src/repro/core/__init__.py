"""Core problem / solution / energy-model layer.

This subpackage defines the optimisation problem of the paper,
``MinEnergy(G, D)``: given an execution graph (task graph plus the ordering
edges induced by a fixed mapping) and a deadline ``D``, choose per-task
speeds minimising the dynamic energy while meeting all precedence
constraints and the deadline.  The four energy models of the paper
(Continuous, Discrete, Vdd-Hopping, Incremental) are represented as
:class:`EnergyModel` subclasses; solutions are speed assignments (one speed
per task) or hopping assignments (a sequence of (speed, duration) segments
per task, used by the Vdd-Hopping model).
"""

from repro.core.power import PowerLaw, CUBIC
from repro.core.models import (
    EnergyModel,
    ContinuousModel,
    DiscreteModel,
    VddHoppingModel,
    IncrementalModel,
)
from repro.core.problem import MinEnergyProblem
from repro.core.registry import (
    REGISTRY,
    OptionSpec,
    SolverBackend,
    SolverRegistry,
)
from repro.core.solution import (
    SpeedAssignment,
    HoppingAssignment,
    Schedule,
    Solution,
    compute_schedule,
)
from repro.core.validation import check_solution, is_feasible_assignment

__all__ = [
    "PowerLaw",
    "CUBIC",
    "EnergyModel",
    "ContinuousModel",
    "DiscreteModel",
    "VddHoppingModel",
    "IncrementalModel",
    "MinEnergyProblem",
    "REGISTRY",
    "OptionSpec",
    "SolverBackend",
    "SolverRegistry",
    "SpeedAssignment",
    "HoppingAssignment",
    "Schedule",
    "Solution",
    "compute_schedule",
    "check_solution",
    "is_feasible_assignment",
]
