"""Validation of solutions against their problems.

The validator re-derives everything from first principles (durations from
speeds, an ASAP schedule from the durations, admissibility from the energy
model) so that a bug in a solver cannot silently produce an "optimal"
infeasible answer: every experiment driver and most tests run their
solutions through :func:`check_solution`.
"""

from __future__ import annotations

from repro.core.models import VddHoppingModel
from repro.core.problem import MinEnergyProblem
from repro.core.solution import (
    Assignment,
    HoppingAssignment,
    Solution,
    SpeedAssignment,
    compute_schedule,
)
from repro.utils.errors import InvalidSolutionError
from repro.utils.numerics import DEFAULT_REL_TOL, is_close, leq_with_tol


def is_feasible_assignment(problem: MinEnergyProblem, assignment: Assignment, *,
                           check_admissibility: bool = True,
                           rel_tol: float = DEFAULT_REL_TOL) -> bool:
    """Whether the assignment meets deadline, precedence and model constraints."""
    try:
        check_assignment(problem, assignment,
                         check_admissibility=check_admissibility, rel_tol=rel_tol)
    except InvalidSolutionError:
        return False
    return True


def check_assignment(problem: MinEnergyProblem, assignment: Assignment, *,
                     check_admissibility: bool = True,
                     rel_tol: float = DEFAULT_REL_TOL) -> None:
    """Validate an assignment; raise :class:`InvalidSolutionError` on violation.

    Checks performed:

    1. every task of the graph has a speed (or segment list);
    2. for hopping assignments, the executed work of each task matches the
       task's work;
    3. the ASAP schedule induced by the durations meets the deadline
       (precedence constraints are met by construction of the ASAP
       schedule, so the deadline check is the binding one);
    4. when ``check_admissibility`` is true, every used speed is admissible
       for the problem's energy model (constant-speed models) or every
       segment speed is an admissible mode (Vdd-Hopping).
    """
    graph = problem.graph
    task_names = set(graph.task_names())
    covered = set(assignment.tasks())
    missing = task_names - covered
    if missing:
        raise InvalidSolutionError(f"assignment is missing tasks: {sorted(missing)}")
    extra = covered - task_names
    if extra:
        raise InvalidSolutionError(f"assignment covers unknown tasks: {sorted(extra)}")

    if isinstance(assignment, HoppingAssignment):
        for n in graph.task_names():
            executed = assignment.executed_work(n)
            expected = graph.work(n)
            if not is_close(executed, expected, rel_tol=1e-6, abs_tol=1e-9 * max(1.0, expected)):
                raise InvalidSolutionError(
                    f"task {n!r}: hopping segments execute {executed:g} work units, "
                    f"expected {expected:g}"
                )

    durations = assignment.durations(graph)
    schedule = compute_schedule(graph, durations)
    for n in graph.task_names():
        if not leq_with_tol(schedule.finish[n], problem.deadline, rel_tol=rel_tol):
            raise InvalidSolutionError(
                f"task {n!r} completes at {schedule.finish[n]:g}, after the deadline "
                f"{problem.deadline:g}"
            )

    if not check_admissibility:
        return

    model = problem.model
    if isinstance(assignment, SpeedAssignment):
        for n in graph.task_names():
            s = assignment.speed(n)
            if not model.is_admissible(s):
                raise InvalidSolutionError(
                    f"task {n!r} uses speed {s:g}, which is not admissible for the "
                    f"{model.name} model"
                )
    else:
        if not isinstance(model, VddHoppingModel):
            # A hopping assignment under a constant-speed model is only valid
            # when every task has a single segment.
            for n in graph.task_names():
                segs = [seg for seg in assignment.segments[n] if seg[1] > 0]
                if len(segs) > 1:
                    raise InvalidSolutionError(
                        f"task {n!r} changes speed during execution, which the "
                        f"{model.name} model forbids"
                    )
                if segs and not model.is_admissible(segs[0][0]):
                    raise InvalidSolutionError(
                        f"task {n!r} uses speed {segs[0][0]:g}, which is not admissible "
                        f"for the {model.name} model"
                    )
        else:
            for n in graph.task_names():
                for s, t in assignment.segments[n]:
                    if t > 0 and not model.is_admissible(s):
                        raise InvalidSolutionError(
                            f"task {n!r} uses mode {s:g}, which is not an admissible mode "
                            f"of the {model.name} model"
                        )


def check_solution(solution: Solution, *, check_admissibility: bool = True,
                   rel_tol: float = DEFAULT_REL_TOL) -> None:
    """Validate a full :class:`Solution` (assignment + reported energy).

    In addition to :func:`check_assignment`, verifies that the reported
    energy matches the energy recomputed from the assignment.
    """
    check_assignment(solution.problem, solution.assignment,
                     check_admissibility=check_admissibility, rel_tol=rel_tol)
    recomputed = solution.assignment.energy(solution.problem.graph, solution.problem.power)
    if not is_close(recomputed, solution.energy, rel_tol=1e-6,
                    abs_tol=1e-9 * max(1.0, recomputed)):
        raise InvalidSolutionError(
            f"reported energy {solution.energy:g} does not match the energy recomputed "
            f"from the assignment ({recomputed:g})"
        )
