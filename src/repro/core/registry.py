"""Registry-based solver dispatch.

The four energy models of the paper each come with several algorithms
(closed forms, the Theorem-2 tree/SP passes, a convex program, an LP with
two backends, exact search, heuristics, the Theorem-5 round-up).  Before
this layer existed they were reached through an ``isinstance`` chain that
forwarded untyped ``**kwargs`` — a misspelled option was silently swallowed
and there was no canonical (model, method, options) triple to key a result
cache on or to queue behind a service.

:class:`SolverRegistry` fixes both: every solver package registers named
*backends* for its model, each with a declared, validated option schema.
Dispatch becomes ``solve(problem, method="gp-slsqp", options={...})``:

* an unknown method raises :class:`~repro.utils.errors.UnknownSolverError`
  listing the registered methods;
* an option the backend did not declare raises
  :class:`~repro.utils.errors.UnknownOptionError`;
* a wrong type or out-of-choices value raises
  :class:`~repro.utils.errors.InvalidOptionError`.

The validated ``(method, options)`` pair is also what
:meth:`repro.core.problem.MinEnergyProblem.cache_key` folds into the
content-addressed cache key, so the registry is the single point where a
solve call is given its canonical identity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping

from repro.utils.errors import (
    InvalidOptionError,
    UnknownOptionError,
    UnknownSolverError,
)


@dataclass(frozen=True)
class OptionSpec:
    """Declared schema of one solver option.

    Attributes
    ----------
    name:
        Keyword name of the option.
    types:
        Accepted Python types.  ``bool`` is only accepted when listed
        explicitly (it is deliberately not treated as an ``int``).
    default:
        Informational default (the backend function's own default applies
        when the option is omitted; the spec never injects values).
    choices:
        Optional closed set of admissible values.
    doc:
        One-line description shown by ``describe()`` and the CLI.
    """

    name: str
    types: tuple[type, ...]
    default: Any = None
    choices: tuple[Any, ...] | None = None
    doc: str = ""

    def validate(self, value: Any, *, method: str) -> Any:
        """Type/choice-check ``value``; returns it unchanged when valid."""
        if isinstance(value, bool) and bool not in self.types:
            raise InvalidOptionError(
                f"option {self.name!r} of method {method!r} expects "
                f"{self._type_names()}, got bool {value!r}"
            )
        if not isinstance(value, self.types):
            raise InvalidOptionError(
                f"option {self.name!r} of method {method!r} expects "
                f"{self._type_names()}, got {type(value).__name__} {value!r}"
            )
        if self.choices is not None and value not in self.choices:
            raise InvalidOptionError(
                f"option {self.name!r} of method {method!r} must be one of "
                f"{sorted(map(repr, self.choices))}, got {value!r}"
            )
        return value

    def _type_names(self) -> str:
        return " | ".join(t.__name__ for t in self.types)


@dataclass(frozen=True)
class SolverBackend:
    """One registered (model, method) solver entry.

    ``fn`` takes ``(problem, **options)`` and returns a
    :class:`repro.core.solution.Solution`.  ``supports_exact`` marks the
    backends (the Discrete automatic dispatcher) that additionally accept
    the tri-state ``exact`` flag of the legacy top-level signature.
    """

    model: str
    method: str
    fn: Callable[..., Any]
    options: tuple[OptionSpec, ...] = ()
    default: bool = False
    supports_exact: bool = False
    aliases: tuple[str, ...] = ()
    doc: str = ""

    def validate_options(self, options: Mapping[str, Any]) -> dict[str, Any]:
        """Validate a full option mapping against the declared schema."""
        known = {spec.name: spec for spec in self.options}
        clean: dict[str, Any] = {}
        for key in options:
            if key not in known:
                valid = ", ".join(sorted(known)) or "<none>"
                raise UnknownOptionError(
                    f"backend {self.model}/{self.method} rejected option "
                    f"{key!r}: not in its declared schema "
                    f"(valid options: {valid})"
                )
            clean[key] = known[key].validate(options[key], method=self.method)
        return clean


class SolverRegistry:
    """Mapping from (energy-model name, method name) to solver backends.

    Solver packages register their backends at import time with
    :meth:`register`; :meth:`resolve` turns a user-facing ``method`` string
    (or ``None`` for the model's default) into a :class:`SolverBackend`.
    """

    def __init__(self) -> None:
        self._backends: dict[str, dict[str, SolverBackend]] = {}
        self._default: dict[str, str] = {}
        self._alias: dict[str, dict[str, str]] = {}

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #
    def register(self, model: str, method: str, *,
                 options: Iterable[OptionSpec] = (),
                 default: bool = False, supports_exact: bool = False,
                 aliases: Iterable[str] = (), doc: str = "",
                 ) -> Callable[[Callable], Callable]:
        """Decorator registering ``fn`` as a backend of ``model``.

        Re-registering the same (model, method) replaces the entry, so a
        module reload stays idempotent.
        """

        def decorate(fn: Callable) -> Callable:
            doc_lines = (doc or fn.__doc__ or "").strip().splitlines()
            backend = SolverBackend(
                model=model, method=method, fn=fn,
                options=tuple(options), default=default,
                supports_exact=supports_exact,
                aliases=tuple(aliases),
                doc=doc_lines[0] if doc_lines else "",
            )
            table = self._backends.setdefault(model, {})
            table[method] = backend
            alias_table = self._alias.setdefault(model, {})
            for alias in backend.aliases:
                alias_table[alias] = method
            if default or model not in self._default:
                self._default[model] = method
            return fn

        return decorate

    # ------------------------------------------------------------------ #
    # resolution / introspection
    # ------------------------------------------------------------------ #
    def resolve(self, model: str, method: str | None = None) -> SolverBackend:
        """Return the backend for ``(model, method)``.

        ``method=None`` resolves to the model's default backend.  Raises
        :class:`UnknownSolverError` for an unregistered model or method.
        """
        table = self._backends.get(model)
        if not table:
            registered = ", ".join(sorted(self._backends)) or "<none>"
            raise UnknownSolverError(
                f"no solver backends registered for energy model {model!r} "
                f"(registered models: {registered})"
            )
        if method is None:
            method = self._default[model]
        method = self._alias.get(model, {}).get(method, method)
        backend = table.get(method)
        if backend is None:
            raise UnknownSolverError(
                f"unknown method {method!r} for the {model!r} model "
                f"(registered methods: {', '.join(sorted(table))})"
            )
        return backend

    def default_method(self, model: str) -> str:
        """Name of the default method of ``model``."""
        self.resolve(model)  # raises for unknown models
        return self._default[model]

    def models(self) -> list[str]:
        """Registered energy-model names."""
        return sorted(self._backends)

    def methods(self, model: str) -> list[str]:
        """Registered method names of ``model`` (default first)."""
        self.resolve(model)
        default = self._default[model]
        rest = sorted(m for m in self._backends[model] if m != default)
        return [default, *rest]

    def describe(self) -> list[dict[str, Any]]:
        """Flat description of every backend (for the CLI and docs)."""
        out: list[dict[str, Any]] = []
        for model in self.models():
            for method in self.methods(model):
                backend = self._backends[model][method]
                out.append({
                    "model": model,
                    "method": method,
                    "default": method == self._default[model],
                    "aliases": list(backend.aliases),
                    "options": {spec.name: spec.doc for spec in backend.options},
                    "doc": backend.doc,
                })
        return out


#: The process-wide registry the solver packages register into.  Populated
#: lazily by :func:`repro.solve.ensure_backends_loaded` (importing a solver
#: package is what registers its backends).
REGISTRY = SolverRegistry()
