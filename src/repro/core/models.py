"""The four energy models of the paper.

Every model answers the same three questions the solvers need:

* which speeds are admissible for a task (``is_admissible``),
* what the fastest / slowest admissible speeds are (``max_speed`` /
  ``min_speed``),
* how an ideal continuous speed maps onto the model (``round_up`` /
  ``round_down`` for the mode-based models).

The models are:

``ContinuousModel``
    any speed in ``(0, s_max]`` (Section "Continuous" of the paper);
``DiscreteModel``
    an arbitrary finite set of modes, one constant speed per task;
``VddHoppingModel``
    the same finite set of modes, but the speed may change during a task,
    so any *average* speed between the smallest and the largest mode can be
    emulated by mixing modes;
``IncrementalModel``
    modes regularly spaced by ``delta`` between ``s_min`` and ``s_max``
    (the "potentiometer knob" of the paper).
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, field
from typing import Sequence

from repro.utils.errors import InvalidModelError
from repro.utils.numerics import DEFAULT_ABS_TOL, DEFAULT_REL_TOL


def _validate_modes(modes: Sequence[float]) -> tuple[float, ...]:
    """Normalise and validate a set of discrete modes (sorted, unique, > 0)."""
    if not modes:
        raise InvalidModelError("a mode-based model needs at least one speed")
    cleaned = sorted(float(m) for m in modes)
    for m in cleaned:
        if not (m > 0 and math.isfinite(m)):
            raise InvalidModelError(f"modes must be finite and strictly positive, got {m}")
    unique: list[float] = []
    for m in cleaned:
        if not unique or not math.isclose(m, unique[-1], rel_tol=1e-12, abs_tol=0.0):
            unique.append(m)
    return tuple(unique)


@dataclass(frozen=True)
class EnergyModel:
    """Base class of all energy models.

    Subclasses define which speeds a task may use.  The energy consumed is
    always governed by the problem's :class:`repro.core.power.PowerLaw`;
    the model only constrains the admissible speed values and whether the
    speed may change during a task.
    """

    #: Human-readable model name used in reports and solver dispatch.
    name: str = field(default="abstract", init=False)

    #: Whether a task may change speed during its execution.
    allows_mid_task_switching: bool = field(default=False, init=False)

    def is_admissible(self, speed: float, *, tol: float = DEFAULT_ABS_TOL) -> bool:
        """Whether ``speed`` is an admissible constant speed for a task."""
        raise NotImplementedError

    @property
    def max_speed(self) -> float:
        """Largest admissible speed."""
        raise NotImplementedError

    @property
    def min_speed(self) -> float:
        """Smallest admissible *positive* speed (0 for the continuous model)."""
        raise NotImplementedError

    def is_mode_based(self) -> bool:
        """Whether the model has a finite set of modes."""
        return False

    def cache_token(self) -> tuple:
        """Canonical, hashable identity of the model for cache keys.

        Folds the concrete class name and every dataclass field (including
        the mode tuples and the Incremental ``(s_min, s_max, delta)``
        triple), so two model instances produce the same token exactly when
        they constrain speeds identically.
        """
        import dataclasses

        values = tuple(
            (f.name, getattr(self, f.name)) for f in dataclasses.fields(self)
        )
        return (type(self).__name__, values)


@dataclass(frozen=True)
class ContinuousModel(EnergyModel):
    """Arbitrary speeds in ``(0, s_max]``.

    Parameters
    ----------
    s_max:
        Maximum speed; ``math.inf`` (the default) removes the cap, which is
        the setting of Theorem 2 for series-parallel graphs.
    """

    s_max: float = math.inf
    name: str = field(default="continuous", init=False)

    def __post_init__(self) -> None:
        if not self.s_max > 0:
            raise InvalidModelError(f"s_max must be positive, got {self.s_max}")

    def is_admissible(self, speed: float, *, tol: float = DEFAULT_ABS_TOL) -> bool:
        return speed > 0 and speed <= self.s_max * (1.0 + DEFAULT_REL_TOL) + tol

    @property
    def max_speed(self) -> float:
        return self.s_max

    @property
    def min_speed(self) -> float:
        return 0.0

    def has_speed_cap(self) -> bool:
        """Whether ``s_max`` is finite."""
        return math.isfinite(self.s_max)


@dataclass(frozen=True)
class _ModeBasedModel(EnergyModel):
    """Shared implementation for models with a finite mode set."""

    modes: tuple[float, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "modes", _validate_modes(self.modes))

    def is_mode_based(self) -> bool:
        return True

    @property
    def max_speed(self) -> float:
        return self.modes[-1]

    @property
    def min_speed(self) -> float:
        return self.modes[0]

    @property
    def n_modes(self) -> int:
        """Number of distinct modes."""
        return len(self.modes)

    def is_admissible(self, speed: float, *, tol: float = DEFAULT_ABS_TOL) -> bool:
        return any(math.isclose(speed, m, rel_tol=DEFAULT_REL_TOL, abs_tol=tol)
                   for m in self.modes)

    def round_up(self, speed: float) -> float:
        """Smallest mode ``>= speed``.

        Raises
        ------
        InvalidModelError
            If ``speed`` exceeds the largest mode (no admissible speed can
            sustain the requested rate).
        """
        if speed <= self.modes[0]:
            return self.modes[0]
        # tolerate tiny numerical overshoots above an exact mode
        idx = bisect.bisect_left(self.modes, speed * (1.0 - DEFAULT_REL_TOL))
        if idx >= len(self.modes):
            raise InvalidModelError(
                f"requested speed {speed} exceeds the maximum mode {self.modes[-1]}"
            )
        return self.modes[idx]

    def round_down(self, speed: float) -> float:
        """Largest mode ``<= speed``.

        Raises
        ------
        InvalidModelError
            If ``speed`` is below the smallest mode.
        """
        if speed >= self.modes[-1]:
            return self.modes[-1]
        idx = bisect.bisect_right(self.modes, speed * (1.0 + DEFAULT_REL_TOL)) - 1
        if idx < 0:
            raise InvalidModelError(
                f"requested speed {speed} is below the minimum mode {self.modes[0]}"
            )
        return self.modes[idx]

    def bracketing_modes(self, speed: float) -> tuple[float, float]:
        """The two consecutive modes surrounding ``speed``.

        Returns ``(lower, upper)`` with ``lower <= speed <= upper``; at the
        extremes both entries are the same mode.  Used by the Vdd-Hopping
        two-mode mixing construction.
        """
        if speed <= self.modes[0]:
            return self.modes[0], self.modes[0]
        if speed >= self.modes[-1]:
            return self.modes[-1], self.modes[-1]
        upper = self.round_up(speed)
        lower = self.round_down(speed)
        return lower, upper

    def max_mode_gap(self) -> float:
        """Largest gap ``s_{i+1} - s_i`` between consecutive modes.

        This is the quantity ``alpha`` of Proposition 1 (second bullet).
        """
        if len(self.modes) == 1:
            return 0.0
        return max(b - a for a, b in zip(self.modes, self.modes[1:]))


@dataclass(frozen=True)
class DiscreteModel(_ModeBasedModel):
    """Arbitrary finite set of modes; one constant speed per task.

    ``MinEnergy(G, D)`` is NP-complete under this model (Theorem 4).
    """

    name: str = field(default="discrete", init=False)


@dataclass(frozen=True)
class VddHoppingModel(_ModeBasedModel):
    """Finite set of modes with mid-task speed switching allowed.

    Any average speed between the smallest and largest mode can be emulated
    by splitting the task's work across modes; the optimal split uses the
    two modes bracketing the ideal continuous speed.  ``MinEnergy(G, D)``
    is polynomial under this model (Theorem 3, via linear programming).
    """

    name: str = field(default="vdd-hopping", init=False)
    allows_mid_task_switching: bool = field(default=True, init=False)


@dataclass(frozen=True)
class IncrementalModel(_ModeBasedModel):
    """Regularly spaced modes ``s_min + i * delta`` within ``[s_min, s_max]``.

    Parameters
    ----------
    s_min, s_max:
        Bounds of the admissible speed range (``0 < s_min <= s_max``).
    delta:
        Speed increment (strictly positive).  The largest mode is the
        largest value of the grid not exceeding ``s_max``; by the paper's
        definition the grid always contains ``s_min``.

    Notes
    -----
    Construct with :meth:`from_range`; the primary constructor also accepts
    an explicit mode tuple for interoperability with the shared base class,
    but ``from_range`` is the canonical way and stores ``s_min`` / ``s_max``
    / ``delta`` for the approximation-ratio certificates of Theorem 5.
    """

    name: str = field(default="incremental", init=False)
    s_min: float = 0.0
    s_max: float = 0.0
    delta: float = 0.0

    @classmethod
    def from_range(cls, s_min: float, s_max: float, delta: float) -> "IncrementalModel":
        """Build the model from the paper's ``(s_min, s_max, delta)`` triple."""
        if not (s_min > 0 and math.isfinite(s_min)):
            raise InvalidModelError(f"s_min must be finite and positive, got {s_min}")
        if not (s_max >= s_min and math.isfinite(s_max)):
            raise InvalidModelError(
                f"s_max must be finite and at least s_min, got s_min={s_min}, s_max={s_max}"
            )
        if not (delta > 0 and math.isfinite(delta)):
            raise InvalidModelError(f"delta must be finite and positive, got {delta}")
        count = int(math.floor((s_max - s_min) / delta + 1e-12)) + 1
        modes = tuple(s_min + i * delta for i in range(count))
        return cls(modes=modes, s_min=s_min, s_max=s_max, delta=delta)

    def __post_init__(self) -> None:
        super().__post_init__()
        # When constructed directly from modes, infer the triple.
        if self.s_min == 0.0 and self.s_max == 0.0 and self.delta == 0.0:
            modes = self.modes
            object.__setattr__(self, "s_min", modes[0])
            object.__setattr__(self, "s_max", modes[-1])
            gap = modes[1] - modes[0] if len(modes) > 1 else 0.0
            object.__setattr__(self, "delta", gap)

    def approximation_ratio_vs_continuous(self) -> float:
        """The a-priori ratio ``(1 + delta / s_min)**2`` of Proposition 1."""
        if self.delta == 0.0:
            return 1.0
        return (1.0 + self.delta / self.s_min) ** 2

    def to_discrete(self) -> DiscreteModel:
        """View the same mode set as a plain Discrete model."""
        return DiscreteModel(modes=self.modes)

    def to_vdd_hopping(self) -> VddHoppingModel:
        """View the same mode set as a Vdd-Hopping model."""
        return VddHoppingModel(modes=self.modes)
