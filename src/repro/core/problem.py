"""The ``MinEnergy(G, D)`` optimisation problem.

A problem instance bundles the execution graph (the task graph augmented
with the ordering edges of a fixed mapping), the deadline ``D``, the energy
model and the power law.  It also provides the feasibility primitives every
solver needs: the minimum achievable makespan (critical path at maximum
speed) and per-task maximum-speed release/latest times.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.models import ContinuousModel, EnergyModel
from repro.core.power import CUBIC, PowerLaw
from repro.graphs.analysis import longest_path_length, topological_order
from repro.graphs.taskgraph import TaskGraph
from repro.utils.errors import InfeasibleProblemError, InvalidGraphError, InvalidModelError
from repro.utils.numerics import leq_with_tol

if TYPE_CHECKING:  # pragma: no cover - import cycle avoidance
    from repro.mapping.execution_graph import ExecutionGraph


@dataclass
class MinEnergyProblem:
    """An instance of ``MinEnergy(G, D)``.

    Parameters
    ----------
    graph:
        The execution graph 𝒢: a :class:`TaskGraph` whose edges contain the
        original precedence constraints *and* the ordering edges between
        consecutive tasks mapped to the same processor.  Building 𝒢 from a
        mapping is the job of :class:`repro.mapping.ExecutionGraph`; a plain
        task graph is also accepted (each task on its own processor).
    deadline:
        The bound ``D`` on the completion time of every task.
    model:
        The energy model constraining admissible speeds.
    power:
        The power law (cubic by default, as in the paper).
    name:
        Optional label used in experiment reports.
    """

    graph: TaskGraph
    deadline: float
    model: EnergyModel = field(default_factory=ContinuousModel)
    power: PowerLaw = CUBIC
    name: str = ""

    def __post_init__(self) -> None:
        if isinstance(self.graph, TaskGraph):
            pass
        else:
            # Accept an ExecutionGraph transparently.
            combined = getattr(self.graph, "combined_graph", None)
            if combined is None:
                raise InvalidGraphError(
                    "graph must be a TaskGraph or an ExecutionGraph, "
                    f"got {type(self.graph).__name__}"
                )
            self.graph = combined()
        if not (self.deadline > 0 and math.isfinite(self.deadline)):
            raise InvalidModelError(f"deadline must be finite and positive, got {self.deadline}")
        if not isinstance(self.model, EnergyModel):
            raise InvalidModelError(f"model must be an EnergyModel, got {type(self.model).__name__}")
        self.graph.validate()
        if not self.name:
            self.name = f"MinEnergy({self.graph.name}, D={self.deadline:g})"

    # ------------------------------------------------------------------ #
    # feasibility primitives
    # ------------------------------------------------------------------ #
    @property
    def n_tasks(self) -> int:
        """Number of tasks of the execution graph."""
        return self.graph.n_tasks

    def min_makespan(self) -> float:
        """Smallest achievable makespan: critical path at the maximum speed.

        Under every model the fastest execution runs each task at the
        model's maximum speed, so the minimum makespan is the longest path
        of the execution graph weighted by ``w_i / s_max``.

        Returns ``inf`` when the model has no finite maximum speed and the
        graph is non-empty only in the degenerate sense that the makespan
        can be made arbitrarily small (returns 0.0 in that case).
        """
        s_max = self.model.max_speed
        if math.isinf(s_max):
            return 0.0
        return longest_path_length(self.graph, weight=lambda n: self.graph.work(n) / s_max)

    def is_feasible(self) -> bool:
        """Whether the deadline can be met at all (at maximum speed)."""
        return leq_with_tol(self.min_makespan(), self.deadline)

    def ensure_feasible(self) -> None:
        """Raise :class:`InfeasibleProblemError` when the deadline is unreachable."""
        makespan = self.min_makespan()
        if not leq_with_tol(makespan, self.deadline):
            raise InfeasibleProblemError(
                f"{self.name}: minimum makespan {makespan:g} (all tasks at the maximum "
                f"speed {self.model.max_speed:g}) exceeds the deadline {self.deadline:g}"
            )

    def slack_factor(self) -> float:
        """Ratio ``D / min_makespan`` (``inf`` for an unbounded-speed model).

        A slack factor of 1 means the deadline is tight; larger values leave
        room for energy reclamation.  This is the "deadline tightness"
        parameter swept by experiments E7/E9.
        """
        makespan = self.min_makespan()
        if makespan == 0.0:
            return math.inf
        return self.deadline / makespan

    # ------------------------------------------------------------------ #
    # per-task timing windows at maximum speed
    # ------------------------------------------------------------------ #
    def earliest_completion_times(self, speeds: dict[str, float] | None = None) -> dict[str, float]:
        """ASAP completion time of every task.

        Parameters
        ----------
        speeds:
            Per-task speeds; defaults to the model's maximum speed for every
            task (which must then be finite).
        """
        durations = self._durations(speeds)
        order = topological_order(self.graph)
        completion: dict[str, float] = {}
        for n in order:
            start = max((completion[p] for p in self.graph.predecessors(n)), default=0.0)
            completion[n] = start + durations[n]
        return completion

    def latest_completion_times(self, speeds: dict[str, float] | None = None) -> dict[str, float]:
        """ALAP completion time of every task with respect to the deadline."""
        durations = self._durations(speeds)
        order = topological_order(self.graph)
        latest: dict[str, float] = {}
        for n in reversed(order):
            succs = self.graph.successors(n)
            if succs:
                latest[n] = min(latest[s] - durations[s] for s in succs)
            else:
                latest[n] = self.deadline
        return latest

    def _durations(self, speeds: dict[str, float] | None) -> dict[str, float]:
        if speeds is None:
            s_max = self.model.max_speed
            if math.isinf(s_max):
                raise InvalidModelError(
                    "per-task speeds are required when the model has no finite maximum speed"
                )
            return {n: self.graph.work(n) / s_max for n in self.graph.task_names()}
        missing = set(self.graph.task_names()) - set(speeds)
        if missing:
            raise InvalidModelError(f"speeds missing for tasks: {sorted(missing)}")
        return {n: self.graph.work(n) / speeds[n] for n in self.graph.task_names()}

    # ------------------------------------------------------------------ #
    # content addressing
    # ------------------------------------------------------------------ #
    def cache_key(self, *, method: str | None = None,
                  options: "dict | None" = None,
                  exact: bool | None = None) -> str:
        """Stable content hash identifying this solve request (hex SHA-256).

        The key covers everything that determines the solver's answer: the
        graph structure hash (names, weights, edges — see
        :meth:`repro.graphs.taskgraph.TaskGraph.structure_hash`), the
        deadline, the energy model's full parameterisation, the power-law
        exponent, and the resolved solver ``(method, options, exact)``
        triple.  The display ``name`` of the problem/graph is deliberately
        excluded: two identically-posed instances share a key.

        Mutating the graph invalidates its cached index, so a later
        ``cache_key()`` on the same problem object reflects the new
        structure — stale cache hits cannot happen.
        """
        import hashlib
        import json

        payload = {
            "graph": self.graph.structure_hash(),
            "deadline": float(self.deadline).hex(),
            "model": self.model.cache_token(),
            "alpha": float(self.power.alpha).hex(),
            "method": method,
            "options": sorted((options or {}).items()),
            "exact": exact,
        }
        blob = json.dumps(payload, sort_keys=True, default=repr)
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------ #
    # derived instances
    # ------------------------------------------------------------------ #
    def with_model(self, model: EnergyModel) -> "MinEnergyProblem":
        """Same graph and deadline under a different energy model."""
        return MinEnergyProblem(graph=self.graph, deadline=self.deadline,
                                model=model, power=self.power)

    def with_deadline(self, deadline: float) -> "MinEnergyProblem":
        """Same graph and model with a different deadline."""
        return MinEnergyProblem(graph=self.graph, deadline=deadline,
                                model=self.model, power=self.power)

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            f"MinEnergyProblem(graph={self.graph.name!r}, n={self.n_tasks}, "
            f"D={self.deadline:g}, model={self.model.name})"
        )
