"""Baseline speed-selection strategies.

These are the comparators any evaluation of the paper needs: what a system
that does **not** reclaim energy (or reclaims it naively) would consume.

* :func:`solve_no_reclaim` — every task at the maximum speed; this is the
  schedule the mapping was validated with and the reference against which
  energy savings are reported (experiment E9);
* :func:`solve_uniform_scaling` — every task slowed by the same factor so
  that the critical path exactly meets the deadline (the simplest global
  slack-reclamation rule);
* :func:`solve_proportional_path` is an alias of uniform scaling kept for
  API clarity in the experiment drivers.
"""

from repro.baselines.naive import (
    solve_no_reclaim,
    solve_uniform_scaling,
    solve_proportional_path,
)

__all__ = [
    "solve_no_reclaim",
    "solve_uniform_scaling",
    "solve_proportional_path",
]
