"""Naive baseline strategies (no reclamation / uniform reclamation)."""

from __future__ import annotations

import math

from repro.core.models import ContinuousModel, EnergyModel
from repro.core.problem import MinEnergyProblem
from repro.core.solution import SpeedAssignment, Solution, make_solution
from repro.graphs.analysis import longest_path_length
from repro.utils.errors import InvalidModelError
from repro.utils.numerics import leq_with_tol


def _reference_max_speed(model: EnergyModel) -> float:
    s_max = model.max_speed
    if math.isinf(s_max):
        raise InvalidModelError(
            "the no-reclaim baseline needs a finite maximum speed; "
            "give the Continuous model an explicit s_max"
        )
    return s_max


def solve_no_reclaim(problem: MinEnergyProblem) -> Solution:
    """Run every task at the maximum admissible speed (no energy reclamation).

    This is the energy the system pays when the deadline slack is simply
    ignored; all reclaiming strategies are reported relative to it in
    experiment E9.
    """
    problem.ensure_feasible()
    s_max = _reference_max_speed(problem.model)
    speeds = {n: s_max for n in problem.graph.task_names()}
    assignment = SpeedAssignment(speeds)
    return make_solution(problem, assignment, solver="baseline-no-reclaim",
                         optimal=False)


def solve_uniform_scaling(problem: MinEnergyProblem) -> Solution:
    """Slow every task by a single common factor until the deadline is tight.

    The common speed is ``critical_path_work / D`` (never below what a
    finite ``s_max`` allows and, for mode-based models, rounded **up** to
    the next admissible mode so the result stays feasible and admissible).
    """
    problem.ensure_feasible()
    graph = problem.graph
    model = problem.model
    cp_work = longest_path_length(graph)
    common = cp_work / problem.deadline

    if isinstance(model, ContinuousModel):
        speed = min(common, model.max_speed) if math.isfinite(model.max_speed) else common
        speeds = {n: speed for n in graph.task_names()}
    else:
        rounded = model.round_up(min(max(common, model.min_speed), model.max_speed))  # type: ignore[attr-defined]
        speeds = {n: rounded for n in graph.task_names()}

    assignment = SpeedAssignment(speeds)
    solution = make_solution(problem, assignment, solver="baseline-uniform-scaling",
                             optimal=False)
    # The common speed is derived from the critical path, so the ASAP
    # makespan meets the deadline by construction; assert it defensively.
    if not leq_with_tol(solution.makespan, problem.deadline):
        raise InvalidModelError(
            "uniform scaling produced an infeasible schedule; this indicates an "
            "inconsistent model (s_max below the critical-path requirement)"
        )
    return solution


def solve_proportional_path(problem: MinEnergyProblem) -> Solution:
    """Alias of :func:`solve_uniform_scaling` (kept for driver readability)."""
    solution = solve_uniform_scaling(problem)
    solution.solver = "baseline-proportional-path"
    return solution
