"""Lower bounds on the optimal energy.

Every mode-based model (Discrete, Vdd-Hopping, Incremental) is at least as
constrained as the Continuous model with the same maximum speed, so the
Continuous optimum is a universal lower bound.  Three bounds of increasing
tightness (and cost) are provided:

* :func:`load_lower_bound` — treat the whole graph as a single chain-free
  pool of work executed within ``D`` on unlimited processors: each task can
  be given the full window, so ``E >= sum_i w_i**alpha / D**(alpha-1)``;
* :func:`critical_path_lower_bound` — every path must fit in ``D``; the
  heaviest path behaves like a chain of total work ``L_cp``, so
  ``E >= L_cp**alpha / D**(alpha-1)``, and the two bounds combine by taking
  the larger of the path bound and the off-path load bound;
* :func:`continuous_lower_bound` — the actual Continuous optimum computed by
  the dispatching solver (exact for SP graphs, numerical otherwise).
"""

from __future__ import annotations

from repro.core.models import ContinuousModel
from repro.core.problem import MinEnergyProblem
from repro.graphs.analysis import critical_path
from repro.utils.numerics import cube


def load_lower_bound(problem: MinEnergyProblem) -> float:
    """Per-task relaxation: every task gets the entire deadline window."""
    alpha = problem.power.alpha
    d = problem.deadline
    return sum(problem.graph.work(n) ** alpha for n in problem.graph.task_names()) / d ** (alpha - 1.0)


def critical_path_lower_bound(problem: MinEnergyProblem) -> float:
    """Critical-path relaxation combined with the per-task load bound.

    The heaviest (work-weighted) path ``P`` must complete within ``D``; the
    optimal way to run a chain of total work ``W_P`` in ``D`` costs
    ``W_P**alpha / D**(alpha-1)``.  Tasks outside ``P`` independently cost at
    least ``w**alpha / D**(alpha-1)`` each, so the two contributions add.
    """
    alpha = problem.power.alpha
    d = problem.deadline
    length, path_tasks = critical_path(problem.graph)
    on_path = set(path_tasks)
    path_bound = length ** alpha / d ** (alpha - 1.0)
    off_path = sum(problem.graph.work(n) ** alpha
                   for n in problem.graph.task_names() if n not in on_path)
    return path_bound + off_path / d ** (alpha - 1.0)


def continuous_lower_bound(problem: MinEnergyProblem, *,
                           use_model_speed_cap: bool = True) -> float:
    """The Continuous optimum of the instance (a valid bound for every model).

    Parameters
    ----------
    problem:
        Any ``MinEnergy`` instance (the model may be mode-based).
    use_model_speed_cap:
        When true (default), the Continuous relaxation inherits the model's
        maximum speed, which keeps the bound as tight as possible while
        remaining valid.  When false the relaxation is uncapped (cheaper,
        always solvable by the SP closed forms when applicable).

    Notes
    -----
    The import of :func:`repro.continuous.solve.solve_continuous` is local to
    avoid an import cycle (the dispatcher itself reports these bounds).
    """
    from repro.continuous.solve import solve_continuous

    s_max = problem.model.max_speed if use_model_speed_cap else float("inf")
    relaxed = problem.with_model(ContinuousModel(s_max=s_max))
    solution = solve_continuous(relaxed)
    return solution.energy
