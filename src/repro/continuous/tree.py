"""Polynomial Continuous algorithm for tree-shaped execution graphs.

Theorem 2 covers trees; an in/out-tree is SP-decomposable (the root forms a
series block with the parallel composition of its subtrees), so the
series-parallel algorithm applies.  This module provides

* :func:`is_tree` — structural recognition of in-trees and out-trees;
* :func:`tree_equivalent_load` — a *direct* recursive computation of the
  equivalent load that does not go through the generic decomposition (used
  to cross-check the SP machinery in tests);
* :func:`solve_tree` — optimal speeds, implemented by the direct recursion.

Direct recursion (out-tree rooted at ``r`` with subtrees ``C_1..C_k``)::

    L(r) = w_r + (L(C_1)**alpha + ... + L(C_k)**alpha) ** (1/alpha)

which is the paper's "nested expressions of this form" remark.  An in-tree
is handled by reversing the edge direction (the energy problem is invariant
under time reversal).
"""

from __future__ import annotations

from repro.core.problem import MinEnergyProblem
from repro.core.solution import Solution, SpeedAssignment, make_solution
from repro.graphs.taskgraph import TaskGraph
from repro.utils.errors import InvalidGraphError, SolverError
from repro.utils.numerics import leq_with_tol


def is_tree(graph: TaskGraph) -> bool:
    """Whether the graph is a (weakly connected) out-tree or in-tree."""
    return _tree_orientation(graph) is not None


def _tree_orientation(graph: TaskGraph) -> str | None:
    """Return ``"out"``, ``"in"``, or ``None`` when the graph is not a tree."""
    n = graph.n_tasks
    if n == 0:
        return None
    if n == 1:
        return "out"
    if graph.n_edges != n - 1:
        return None
    if not graph.is_dag():
        return None
    # weak connectivity
    names = graph.task_names()
    seen = {names[0]}
    stack = [names[0]]
    while stack:
        u = stack.pop()
        for v in graph.successors(u) + graph.predecessors(u):
            if v not in seen:
                seen.add(v)
                stack.append(v)
    if len(seen) != n:
        return None
    out_tree = all(graph.in_degree(v) <= 1 for v in names)
    in_tree = all(graph.out_degree(v) <= 1 for v in names)
    if out_tree and len(graph.sources()) == 1:
        return "out"
    if in_tree and len(graph.sinks()) == 1:
        return "in"
    return None


def tree_equivalent_load(graph: TaskGraph, root: str, *, alpha: float = 3.0,
                         direction: str = "out") -> float:
    """Equivalent load of the subtree rooted at ``root``.

    ``direction`` selects whether children are successors (out-tree) or
    predecessors (in-tree).
    """
    children = (graph.successors(root) if direction == "out"
                else graph.predecessors(root))
    if not children:
        return graph.work(root)
    child_loads = [tree_equivalent_load(graph, c, alpha=alpha, direction=direction)
                   for c in children]
    return graph.work(root) + sum(l ** alpha for l in child_loads) ** (1.0 / alpha)


def _assign_tree_speeds(graph: TaskGraph, root: str, window: float,
                        speeds: dict[str, float], *, alpha: float,
                        direction: str) -> None:
    """Assign optimal speeds to the subtree rooted at ``root`` within ``window``."""
    if window <= 0:
        raise SolverError("tree speed assignment received a non-positive window")
    children = (graph.successors(root) if direction == "out"
                else graph.predecessors(root))
    w_root = graph.work(root)
    if not children:
        speeds[root] = w_root / window
        return
    child_loads = {c: tree_equivalent_load(graph, c, alpha=alpha, direction=direction)
                   for c in children}
    subtree_norm = sum(l ** alpha for l in child_loads.values()) ** (1.0 / alpha)
    total_load = w_root + subtree_norm
    root_window = window * w_root / total_load
    child_window = window - root_window
    speeds[root] = w_root / root_window
    for c in children:
        _assign_tree_speeds(graph, c, child_window, speeds, alpha=alpha,
                            direction=direction)


def solve_tree(problem: MinEnergyProblem, *, enforce_speed_cap: bool = True) -> Solution:
    """Optimal Continuous solution for a tree execution graph (Theorem 2).

    Raises
    ------
    InvalidGraphError
        If the graph is not an in-tree or out-tree.
    SolverError
        If a finite ``s_max`` is violated by the uncapped optimum and
        ``enforce_speed_cap`` is true (fall back to the convex solver).
    """
    graph = problem.graph
    orientation = _tree_orientation(graph)
    if orientation is None:
        raise InvalidGraphError(f"graph {graph.name!r} is not an in-tree or out-tree")
    root = graph.sources()[0] if orientation == "out" else graph.sinks()[0]
    alpha = problem.power.alpha
    speeds: dict[str, float] = {}
    _assign_tree_speeds(graph, root, problem.deadline, speeds, alpha=alpha,
                        direction=orientation)
    s_max = problem.model.max_speed
    if enforce_speed_cap:
        violating = [n for n, s in speeds.items() if not leq_with_tol(s, s_max)]
        if violating:
            raise SolverError(
                f"tree closed form violates s_max={s_max:g} on {len(violating)} task(s); "
                "use the general convex solver for this instance"
            )
    assignment = SpeedAssignment(speeds)
    load = tree_equivalent_load(graph, root, alpha=alpha, direction=orientation)
    return make_solution(problem, assignment, solver="continuous-tree",
                         optimal=True, metadata={"equivalent_load": load})
