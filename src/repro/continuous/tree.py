"""Polynomial Continuous algorithm for tree-shaped execution graphs.

Theorem 2 covers trees; an in/out-tree is SP-decomposable (the root forms a
series block with the parallel composition of its subtrees), so the
series-parallel algorithm applies.  This module provides

* :func:`is_tree` — structural recognition of in-trees and out-trees;
* :func:`tree_equivalent_load` — a *direct* recursive computation of the
  equivalent load that does not go through the generic decomposition (used
  to cross-check the SP machinery in tests);
* :func:`solve_tree` — optimal speeds, implemented by the direct recursion.

The load obeys (out-tree rooted at ``r`` with subtrees ``C_1..C_k``)::

    L(r) = w_r + (L(C_1)**alpha + ... + L(C_k)**alpha) ** (1/alpha)

which is the paper's "nested expressions of this form" remark.  An in-tree
is handled by reversing the edge direction (the energy problem is invariant
under time reversal).

The implementation is fully iterative: one bottom-up pass over the graph's
cached topological order memoises every subtree's equivalent load, and one
top-down pass splits each node's window between the node and its subtrees.
Both passes are O(n), and no Python recursion happens at any depth — a
10,000-task chain solves without touching the interpreter recursion limit
(the previous recursive formulation recomputed child loads at every level,
which was O(n²) and overflowed the stack beyond ~1000 tasks).
"""

from __future__ import annotations

import numpy as np

from repro.core.problem import MinEnergyProblem
from repro.core.solution import Solution, SpeedAssignment, make_solution
from repro.graphs.taskgraph import TaskGraph
from repro.utils.errors import InvalidGraphError, SolverError
from repro.utils.numerics import leq_with_tol


def is_tree(graph: TaskGraph) -> bool:
    """Whether the graph is a (weakly connected) out-tree or in-tree."""
    return _tree_orientation(graph) is not None


def _tree_orientation(graph: TaskGraph) -> str | None:
    """Return ``"out"``, ``"in"``, or ``None`` when the graph is not a tree."""
    n = graph.n_tasks
    if n == 0:
        return None
    if n == 1:
        return "out"
    if graph.n_edges != n - 1:
        return None
    if not graph.is_dag():
        return None
    # weak connectivity
    names = graph.task_names()
    seen = {names[0]}
    stack = [names[0]]
    while stack:
        u = stack.pop()
        for v in graph.successors(u) + graph.predecessors(u):
            if v not in seen:
                seen.add(v)
                stack.append(v)
    if len(seen) != n:
        return None
    out_tree = all(graph.in_degree(v) <= 1 for v in names)
    in_tree = all(graph.out_degree(v) <= 1 for v in names)
    if out_tree and len(graph.sources()) == 1:
        return "out"
    if in_tree and len(graph.sinks()) == 1:
        return "in"
    return None


def _tree_csr(graph: TaskGraph, direction: str):
    """``(index, child_ptr, child_idx, bottom_up_order)`` for a tree pass.

    Children are successors for an out-tree and predecessors for an in-tree;
    the bottom-up order is the cached topological order (reversed for the
    out orientation) so every child is visited before its parent.
    """
    idx = graph.index()
    if direction == "out":
        return idx, idx.succ_ptr.tolist(), idx.succ_idx.tolist(), idx.topo_order[::-1].tolist()
    return idx, idx.pred_ptr.tolist(), idx.pred_idx.tolist(), idx.topo_order.tolist()


def tree_equivalent_loads(graph: TaskGraph, *, alpha: float = 3.0,
                          direction: str = "out") -> np.ndarray:
    """Equivalent load of *every* subtree, in ``graph.index()`` order.

    One bottom-up pass over the cached topological order; each node combines
    its memoised child loads exactly once, so the whole vector costs O(n)
    regardless of the tree depth.
    """
    idx, child_ptr, child_idx, bottom_up = _tree_csr(graph, direction)
    works = idx.works.tolist()
    inv_alpha = 1.0 / alpha
    loads = [0.0] * idx.n_tasks
    for u in bottom_up:
        lo, hi = child_ptr[u], child_ptr[u + 1]
        if hi == lo:
            loads[u] = works[u]
            continue
        acc = 0.0
        for c in child_idx[lo:hi]:
            acc += loads[c] ** alpha
        loads[u] = works[u] + acc ** inv_alpha
    return np.asarray(loads)


def tree_equivalent_load(graph: TaskGraph, root: str, *, alpha: float = 3.0,
                         direction: str = "out") -> float:
    """Equivalent load of the subtree rooted at ``root``.

    ``direction`` selects whether children are successors (out-tree) or
    predecessors (in-tree).  The load of a subtree only depends on the tasks
    below ``root``, so this is a lookup into the memoised bottom-up pass of
    :func:`tree_equivalent_loads`.
    """
    loads = tree_equivalent_loads(graph, alpha=alpha, direction=direction)
    return float(loads[graph.index().index_of[root]])


def _assign_tree_speeds(graph: TaskGraph, root: str, window: float,
                        speeds: dict[str, float], *, alpha: float,
                        direction: str, loads: np.ndarray | None = None) -> None:
    """Assign optimal speeds to the subtree rooted at ``root`` within ``window``.

    Iterative top-down pass: each node splits its window between itself
    (proportionally to ``w / L``) and its subtrees, which all receive the
    remainder in parallel.  ``loads`` memoises the bottom-up equivalent
    loads; it is computed when not supplied.
    """
    idx, child_ptr, child_idx, bottom_up = _tree_csr(graph, direction)
    if loads is None:
        loads = tree_equivalent_loads(graph, alpha=alpha, direction=direction)
    load_list = loads.tolist()
    works = idx.works.tolist()
    names = idx.names
    windows = [0.0] * idx.n_tasks
    root_i = idx.index_of[root]
    windows[root_i] = window
    for u in reversed(bottom_up):  # top-down: parents before children
        win = windows[u]
        if u != root_i and win == 0.0:
            continue  # outside the requested subtree
        if win <= 0:
            raise SolverError("tree speed assignment received a non-positive window")
        lo, hi = child_ptr[u], child_ptr[u + 1]
        if hi == lo:
            speeds[names[u]] = works[u] / win
            continue
        own_window = win * works[u] / load_list[u]
        child_window = win - own_window
        speeds[names[u]] = works[u] / own_window
        for c in child_idx[lo:hi]:
            windows[c] = child_window


def solve_tree(problem: MinEnergyProblem, *, enforce_speed_cap: bool = True) -> Solution:
    """Optimal Continuous solution for a tree execution graph (Theorem 2).

    Raises
    ------
    InvalidGraphError
        If the graph is not an in-tree or out-tree.
    SolverError
        If a finite ``s_max`` is violated by the uncapped optimum and
        ``enforce_speed_cap`` is true (fall back to the convex solver).
    """
    graph = problem.graph
    orientation = _tree_orientation(graph)
    if orientation is None:
        raise InvalidGraphError(f"graph {graph.name!r} is not an in-tree or out-tree")
    root = graph.sources()[0] if orientation == "out" else graph.sinks()[0]
    alpha = problem.power.alpha
    loads = tree_equivalent_loads(graph, alpha=alpha, direction=orientation)
    speeds: dict[str, float] = {}
    _assign_tree_speeds(graph, root, problem.deadline, speeds, alpha=alpha,
                        direction=orientation, loads=loads)
    s_max = problem.model.max_speed
    if enforce_speed_cap:
        violating = [n for n, s in speeds.items() if not leq_with_tol(s, s_max)]
        if violating:
            raise SolverError(
                f"tree closed form violates s_max={s_max:g} on {len(violating)} task(s); "
                "use the general convex solver for this instance"
            )
    assignment = SpeedAssignment(speeds)
    load = float(loads[graph.index().index_of[root]])
    return make_solution(problem, assignment, solver="continuous-tree",
                         optimal=True, metadata={"equivalent_load": load})
