"""Dispatching solver for the Continuous model.

``solve_continuous`` picks the cheapest applicable exact method:

1. single task, chain, fork, join — closed forms (Theorem 1 and its
   degenerate cases);
2. in/out-trees and series-parallel graphs — the polynomial equivalent-load
   algorithm (Theorem 2), provided the resulting speeds respect a finite
   ``s_max``;
3. everything else (or capped instances the closed forms cannot handle) —
   the general convex program: the dense SLSQP pipeline up to
   ``SPARSE_DISPATCH_THRESHOLD`` tasks, the sparse interior-point backend
   (``convex-sparse``) beyond it, so general DAGs no longer hit a
   task-count cap on the automatic path.

The chosen method is recorded in the returned solution's ``solver`` field so
that experiments can report which path was taken.
"""

from __future__ import annotations

from repro.core.models import ContinuousModel
from repro.core.problem import MinEnergyProblem
from repro.core.registry import REGISTRY, OptionSpec
from repro.core.solution import Solution
from repro.continuous.closed_forms import (
    solve_chain,
    solve_fork,
    solve_join,
    solve_single_task,
)
from repro.continuous.general import solve_general_convex
from repro.continuous.sparse import solve_general_convex_sparse
from repro.continuous.series_parallel import solve_series_parallel
from repro.continuous.tree import is_tree, solve_tree
from repro.graphs.sp_decomposition import NotSeriesParallelError
from repro.modeling import BACKENDS
from repro.utils.errors import InvalidGraphError, InvalidModelError, SolverError

#: General DAGs above this task count are dispatched to the sparse
#: interior-point backend instead of the dense SLSQP pipeline on the
#: automatic path (the dense stages are O(n³)/iteration and already ~50x
#: slower by n=40; the sparse solver has no cap of its own).
SPARSE_DISPATCH_THRESHOLD = 64


def solve_continuous(problem: MinEnergyProblem, *, force_method: str | None = None) -> Solution:
    """Solve a Continuous-model instance with the best applicable method.

    Parameters
    ----------
    problem:
        The instance; its model must be a :class:`ContinuousModel`.
    force_method:
        Override the dispatch: one of ``"closed-form"``, ``"tree"``,
        ``"series-parallel"``, ``"convex"``, ``"convex-sparse"`` or
        ``None`` (automatic).

    Raises
    ------
    InvalidModelError
        If the problem's model is not Continuous.
    InfeasibleProblemError
        If the deadline cannot be met even at ``s_max``.
    """
    if not isinstance(problem.model, ContinuousModel):
        raise InvalidModelError(
            f"solve_continuous expects a ContinuousModel, got {problem.model.name}"
        )
    problem.ensure_feasible()

    if force_method == "convex":
        return solve_general_convex(problem)
    if force_method == "convex-sparse":
        return solve_general_convex_sparse(problem)
    if force_method == "tree":
        return solve_tree(problem)
    if force_method == "series-parallel":
        return solve_series_parallel(problem)
    if force_method == "closed-form":
        return _closed_form(problem)
    if force_method is not None:
        raise InvalidModelError(f"unknown force_method {force_method!r}")

    # 1. closed forms
    closed = _try_closed_form(problem)
    if closed is not None:
        return closed

    # 2. trees / series-parallel graphs (exact and cheap, uncapped speeds)
    try:
        if is_tree(problem.graph):
            return solve_tree(problem)
    except SolverError:
        pass  # s_max violated: fall through to the convex solver
    try:
        # solve_series_parallel decomposes internally and raises
        # NotSeriesParallelError for non-SP graphs, so probing with
        # is_series_parallel first would run the decomposition twice.
        return solve_series_parallel(problem)
    except (SolverError, NotSeriesParallelError):
        pass

    # 3. general convex program: dense pipeline while it is competitive,
    # sparse interior point beyond (no task-count cap)
    if problem.graph.n_tasks > SPARSE_DISPATCH_THRESHOLD:
        return solve_general_convex_sparse(problem)
    return solve_general_convex(problem)


# --------------------------------------------------------------------------- #
# registered backends (repro.solve resolves these through the SolverRegistry)
# --------------------------------------------------------------------------- #
REGISTRY.register(
    "continuous", "auto", default=True,
    doc="Cheapest applicable exact method (closed form, tree/SP, convex).",
)(solve_continuous)

REGISTRY.register(
    "continuous", "closed-form",
    doc="Theorem 1 closed forms (single task, chain, fork, join).",
)(lambda problem: solve_continuous(problem, force_method="closed-form"))

REGISTRY.register(
    "continuous", "tree",
    doc="Theorem 2 equivalent-load pass for in/out-trees (O(n)).",
)(lambda problem: solve_continuous(problem, force_method="tree"))

REGISTRY.register(
    "continuous", "series-parallel", aliases=("sp",),
    doc="Theorem 2 series-parallel decomposition algorithm.",
)(lambda problem: solve_continuous(problem, force_method="series-parallel"))

REGISTRY.register(
    "continuous", "gp-slsqp", aliases=("convex",),
    options=(
        OptionSpec("max_iterations", (int,), default=800,
                   doc="SLSQP iteration cap"),
        OptionSpec("tolerance", (int, float), default=1e-12,
                   doc="relative objective tolerance"),
        OptionSpec("max_dense_tasks", (int,), default=2000,
                   doc="hard task-count ceiling of the dense stages"),
    ),
    doc="General convex program (log-space GP stage + SLSQP polish).",
)(solve_general_convex)

REGISTRY.register(
    "continuous", "convex-sparse", aliases=("sparse", "ipm"),
    options=(
        OptionSpec("max_iterations", (int,), default=200,
                   doc="interior-point iteration cap (one sparse "
                       "factorisation each)"),
        OptionSpec("tolerance", (int, float), default=1e-9,
                   doc="relative duality-gap stopping target"),
        OptionSpec("prune", (bool,), default=True,
                   doc="drop transitively redundant precedence rows first"),
        OptionSpec("warm_start", (str,), default="forest",
                   choices=("forest", "uniform"),
                   doc="critical-forest tree projection or uniform scaling"),
        OptionSpec("backend", (str,), default="mehrotra-ipm",
                   doc="convex backend registered on repro.modeling.BACKENDS"),
    ),
    doc="Sparse primal-dual interior point over the CSR precedence "
        "polytope; no task-count cap (10k-task general DAGs).",
)(solve_general_convex_sparse)

BACKENDS.announce_route("convex", "continuous/convex-sparse")


def _closed_form(problem: MinEnergyProblem) -> Solution:
    solution = _try_closed_form(problem)
    if solution is None:
        raise InvalidGraphError(
            "no closed form applies to this graph (not a single task, chain, fork or join)"
        )
    return solution


def _try_closed_form(problem: MinEnergyProblem) -> Solution | None:
    """Try the closed forms in order; return ``None`` when none applies."""
    for solver in (solve_single_task, solve_chain, solve_fork, solve_join):
        try:
            return solver(problem)
        except InvalidGraphError:
            continue
        except SolverError:
            continue
    return None
