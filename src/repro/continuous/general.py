"""Numerical Continuous solver for arbitrary execution graphs.

For a general DAG the paper observes that ``MinEnergy(G, D)`` is a geometric
program: writing ``d_i`` for the duration and ``t_i`` for the completion
time of task ``T_i``, the problem is

    minimise    sum_i  w_i**alpha / d_i**(alpha-1)
    subject to  t_j >= t_i + d_j          for every edge (T_i, T_j)
                t_i >= d_i                (start times are non-negative)
                t_i <= D
                d_i >= w_i / s_max        (when s_max is finite)

The objective is strictly convex in ``d`` (for ``alpha > 1``) and every
constraint is linear, so the program has a unique optimal duration vector.
This module solves it with SciPy's SLSQP sequential quadratic programming
routine.  To keep the solve well conditioned regardless of the units of the
instance, the problem is first normalised (time is rescaled so the deadline
becomes 1 and work is rescaled so the mean task work becomes 1 — both are
exact re-parameterisations of the same convex program), warm-started from
the uniform-scaling feasible point (every task slowed by the same factor
until the critical path exactly meets the deadline), and the result is
re-normalised so the returned assignment is feasible to machine precision.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np
from scipy import optimize

from repro.core.problem import MinEnergyProblem
from repro.core.solution import (
    Solution,
    SpeedAssignment,
    asap_times,
    compute_makespan,
    make_solution,
)
from repro.graphs.analysis import longest_path_length
from repro.utils.errors import SolverError


def _uniform_scaling_durations(problem: MinEnergyProblem) -> dict[str, float]:
    """Feasible durations obtained by slowing every task by a common factor."""
    graph = problem.graph
    cp = longest_path_length(graph)  # critical path at unit speed
    if cp <= 0:
        raise SolverError("graph has no work")
    factor = problem.deadline / cp
    return {n: graph.work(n) * factor for n in graph.task_names()}


def _solve_log_space(graph, works: np.ndarray, d_lower: np.ndarray,
                     init_d: np.ndarray, alpha: float,
                     max_iterations: int, tolerance: float
                     ) -> tuple[np.ndarray, optimize.OptimizeResult] | None:
    """Solve the normalised program in log variables (GP standard form).

    Variables are ``y_i = log d_i`` and ``z_i = log t_i`` (normalised time).
    The objective ``sum w_i**alpha * exp(-(alpha-1) y_i)`` is convex and the
    constraints ``(t_u + d_v) / t_v <= 1`` / ``d_i / t_i <= 1`` are the
    log-convex posynomial forms of the precedence system, so the program is
    convex in ``(y, z)`` and free of the corner degeneracies that stall the
    linear-space SLSQP.  Returns the candidate duration vector and the raw
    optimizer result, or ``None`` when the optimizer failed outright.
    """
    idx = graph.index()
    n = idx.n_tasks
    esrc = idx.edge_src
    edst = idx.edge_dst
    m = len(esrc)
    arange_m = np.arange(m)
    arange_n = np.arange(n)
    w_alpha = works ** alpha

    def objective(x: np.ndarray) -> float:
        return float(np.sum(w_alpha * np.exp(-(alpha - 1.0) * x[:n])))

    def gradient(x: np.ndarray) -> np.ndarray:
        grad = np.zeros(2 * n)
        grad[:n] = -(alpha - 1.0) * w_alpha * np.exp(-(alpha - 1.0) * x[:n])
        return grad

    def cons_f(x: np.ndarray) -> np.ndarray:
        y, z = x[:n], x[n:]
        own = 1.0 - np.exp(y - z)
        if m == 0:
            return own
        edge = 1.0 - (np.exp(z[esrc]) + np.exp(y[edst])) * np.exp(-z[edst])
        return np.concatenate([edge, own])

    def cons_jac(x: np.ndarray) -> np.ndarray:
        y, z = x[:n], x[n:]
        jac = np.zeros((m + n, 2 * n))
        if m:
            inv_tv = np.exp(-z[edst])
            jac[arange_m, edst] = -np.exp(y[edst]) * inv_tv
            jac[arange_m, n + esrc] = -np.exp(z[esrc]) * inv_tv
            jac[arange_m, n + edst] = (np.exp(z[esrc]) + np.exp(y[edst])) * inv_tv
        ratio = np.exp(y - z)
        jac[m + arange_n, arange_n] = -ratio
        jac[m + arange_n, n + arange_n] = ratio
        return jac

    log_lower = np.log(d_lower)
    bounds = ([(log_lower[i], 0.0) for i in range(n)]
              + [(log_lower[i], 0.0) for i in range(n)])
    _start, init_finish = asap_times(idx, init_d)
    init_t = np.clip(init_finish, d_lower, 1.0)
    x0 = np.concatenate([np.log(init_d), np.log(init_t)])
    objective_scale = max(objective(x0), 1e-12)
    try:
        result = optimize.minimize(
            objective, x0, jac=gradient, bounds=bounds,
            constraints=[{"type": "ineq", "fun": cons_f, "jac": cons_jac}],
            method="SLSQP",
            options={"maxiter": max_iterations, "ftol": tolerance * objective_scale},
        )
    except (ValueError, OverflowError):  # pragma: no cover - scipy internals
        return None
    if not np.all(np.isfinite(result.x)):
        return None
    durations = np.clip(np.exp(result.x[:n]), d_lower, 1.0)
    return durations, result


def solve_general_convex(problem: MinEnergyProblem, *, max_iterations: int = 800,
                         tolerance: float = 1e-12,
                         max_dense_tasks: int = 2000) -> Solution:
    """Solve the Continuous instance numerically (any DAG, finite or infinite s_max).

    Parameters
    ----------
    problem:
        The instance; the model's ``s_max`` (possibly infinite) is honoured.
    max_iterations:
        Iteration cap handed to SLSQP.
    tolerance:
        Relative objective tolerance of the SLSQP stopping criterion.
    max_dense_tasks:
        Hard ceiling on the task count: the SLSQP stages assemble dense
        ``(|E| + n) x 2n`` constraint matrices and factorise O(n³) per
        iteration, so beyond a couple thousand tasks a solve would
        silently consume gigabytes and hours.  Exceeding the ceiling
        raises a clean :class:`SolverError` instead (structured graphs of
        that size belong on the tree/series-parallel paths; see the
        ROADMAP's sparse-solver open item).

    Raises
    ------
    InfeasibleProblemError
        If the deadline cannot be met at the maximum speed.
    SolverError
        If SLSQP fails to converge to a feasible point, or the instance
        exceeds ``max_dense_tasks``.
    """
    problem.ensure_feasible()
    graph = problem.graph
    names = graph.task_names()
    n = len(names)
    if n > max_dense_tasks:
        n_edges = graph.n_edges
        raise SolverError(
            f"backend 'gp-slsqp' got a {n}-task, {n_edges}-edge instance, above "
            f"its max_dense_tasks ceiling of {max_dense_tasks}: its SLSQP stages "
            f"factorise a dense {n_edges + n} x {2 * n} constraint system "
            "(O(n^3) per iteration).  Use method='convex-sparse' (the sparse "
            "interior-point backend, no task-count cap) or the structured "
            "tree/series-parallel solvers when they apply"
        )
    index = {name: i for i, name in enumerate(names)}
    works_raw = np.array([graph.work(name) for name in names], dtype=float)
    alpha = problem.power.alpha
    deadline = problem.deadline
    s_max = problem.model.max_speed

    if n == 1:
        # trivial instance: run until the deadline
        speed = works_raw[0] / deadline
        return make_solution(problem, SpeedAssignment({names[0]: speed}),
                             solver="continuous-convex", optimal=True)

    # ---- normalisation: deadline -> 1, mean work -> 1 ---------------------
    work_scale = float(np.mean(works_raw))
    works = works_raw / work_scale
    # in normalised units a speed s_norm corresponds to s_norm * work_scale
    # per original time unit spread over `deadline` original units, so the
    # speed cap becomes:
    s_max_n = s_max * deadline / work_scale if math.isfinite(s_max) else math.inf

    # variable layout: x = [d_0 .. d_{n-1}, t_0 .. t_{n-1}]   (normalised time)
    if math.isfinite(s_max_n):
        d_lower = works / s_max_n
    else:
        d_lower = np.full(n, 1e-9)
    d_lower = np.maximum(d_lower, 1e-9)
    bounds = [(d_lower[i], 1.0) for i in range(n)] + [(0.0, 1.0)] * n

    # linear inequality constraints A @ x >= 0
    rows: list[np.ndarray] = []
    for u, v in graph.edges():
        row = np.zeros(2 * n)
        row[n + index[v]] = 1.0   # t_v
        row[n + index[u]] = -1.0  # -t_u
        row[index[v]] = -1.0      # -d_v
        rows.append(row)
    for name in names:
        row = np.zeros(2 * n)
        row[n + index[name]] = 1.0  # t_i
        row[index[name]] = -1.0     # -d_i
        rows.append(row)
    a_matrix = np.vstack(rows) if rows else np.zeros((0, 2 * n))

    def objective(x: np.ndarray) -> float:
        d = x[:n]
        return float(np.sum(works ** alpha / d ** (alpha - 1.0)))

    def gradient(x: np.ndarray) -> np.ndarray:
        d = x[:n]
        grad = np.zeros(2 * n)
        grad[:n] = -(alpha - 1.0) * works ** alpha / d ** alpha
        return grad

    constraints = [{
        "type": "ineq",
        "fun": lambda x: a_matrix @ x,
        "jac": lambda x: a_matrix,
    }]

    # warm start: uniform scaling durations (normalised) and the ASAP schedule
    # (the task-name order of `names` matches the graph index order, so the
    # duration vectors feed the vectorized schedule kernel directly)
    graph_index = graph.index()
    cp_norm = longest_path_length(graph, weight=lambda name: graph.work(name) / work_scale)
    factor = 1.0 / cp_norm
    init_d = np.maximum(works * factor, d_lower)
    _init_start, init_finish = asap_times(graph_index, init_d)
    init_t = np.minimum(init_finish, 1.0)
    x0 = np.concatenate([init_d, init_t])

    def makespan_of(durations_norm: np.ndarray) -> float:
        return compute_makespan(graph, durations_norm)

    def is_feasible_point(durations_norm: np.ndarray) -> bool:
        if np.any(durations_norm < d_lower * (1.0 - 1e-9)):
            return False
        return makespan_of(durations_norm) <= 1.0 + 1e-9

    def feasible_blend(candidate: np.ndarray) -> np.ndarray:
        """Smallest blend of the candidate towards the warm start that is feasible."""
        lo, hi = 0.0, 1.0  # hi = pure warm start (always feasible)
        if is_feasible_point(candidate):
            return candidate
        for _ in range(60):
            mid = 0.5 * (lo + hi)
            blended = (1.0 - mid) * candidate + mid * init_d
            if is_feasible_point(blended):
                hi = mid
            else:
                lo = mid
        return (1.0 - hi) * candidate + hi * init_d

    # scale the stopping tolerance with the objective magnitude so the
    # criterion is relative rather than absolute
    objective_scale = max(objective(x0), 1e-12)
    options = {"maxiter": max_iterations, "ftol": tolerance * objective_scale}

    # ---- stage 1: geometric-program (log-space) SLSQP ---------------------
    # In variables y = log d, t = log(completion) the program is the GP
    # standard form: the objective stays convex and smooth, the precedence
    # constraint becomes (t_u + d_v) / t_v <= 1 (posynomial over monomial),
    # and the awkward d <= 1 / t <= 1 corner degeneracies turn into simple
    # upper bounds at 0.  SLSQP converges to the optimum here on instances
    # where the linear-space formulation stalls mid-run with a line-search
    # failure and used to need a slow interior-point polish.
    accepted = None
    log_start = init_d
    for log_round in range(3):
        log_result = _solve_log_space(graph, works, d_lower, log_start, alpha,
                                      max_iterations, tolerance)
        if log_result is None:
            break
        log_d, log_opt = log_result
        makespan_log = makespan_of(log_d)
        overshoot_log = makespan_log - 1.0
        if overshoot_log > 0:
            repaired = np.maximum(log_d / makespan_log, d_lower)
        else:
            repaired = log_d
        # Accept when feasible and either cleanly converged or stalled with
        # a vanishing overshoot: the scale repair inflates the energy by at
        # most (alpha - 1) * overshoot ~ 2e-5 relative, an order below the
        # tightest downstream comparison, while the repaired point in
        # practice beats what the interior-point polish reaches in 50x the
        # time.  A stall further out is re-warm-started from the repaired
        # point (the stall location is numerically chaotic, so a fresh
        # line-search from a feasible point usually lands within the gate).
        if is_feasible_point(repaired) and (log_opt.status == 0 or overshoot_log <= 1e-5):
            accepted = repaired
            stage = ("slsqp-log" if overshoot_log <= 0
                     else "slsqp-log-scale-repair")
            if log_round:
                stage += f"-restart-{log_round}"
            stage_result = log_opt
            break
        if overshoot_log > 1e-2 or not np.all(np.isfinite(repaired)):
            break  # far from feasible: the linear pipeline is the better bet
        log_start = repaired

    if accepted is not None:
        best_d = accepted
    else:
        result = optimize.minimize(objective, x0, jac=gradient, bounds=bounds,
                                   constraints=constraints, method="SLSQP", options=options)
        best_d = np.clip(result.x[:n], d_lower, 1.0)
        # Which stage actually produced `best_d`; kept in sync below so the
        # returned metadata describes the point the caller receives, not just
        # the first SLSQP attempt.
        stage = "slsqp"
        stage_result = result

    def repaired_start(durations_norm: np.ndarray) -> np.ndarray:
        """Scale a point back into the feasible region and rebuild its times."""
        scale = 1.0 / max(makespan_of(durations_norm), 1e-12)
        d = np.maximum(durations_norm * min(scale, 1.0), d_lower)
        _start, finish = asap_times(graph_index, d)
        t = np.minimum(finish, 1.0)
        return np.concatenate([d, t])

    # If SLSQP stalled (line-search failure, status != 0) or left the feasible
    # region, repair the point and restart from it; the repaired point is
    # usually an excellent warm start and one restart converges.
    attempts = 0
    while (accepted is None
           and (not is_feasible_point(best_d) or result.status != 0)
           and attempts < 2):
        attempts += 1
        restart = optimize.minimize(objective, repaired_start(best_d),
                                    jac=gradient, bounds=bounds, constraints=constraints,
                                    method="SLSQP", options=options)
        candidate = np.clip(restart.x[:n], d_lower, 1.0)
        improved = objective(np.concatenate([candidate, candidate])) \
            < objective(np.concatenate([best_d, best_d]))
        if is_feasible_point(candidate) and (improved or not is_feasible_point(best_d)):
            best_d = candidate
            result = restart
            stage = f"slsqp-restart-{attempts}"
            stage_result = restart
        if restart.status == 0 and is_feasible_point(candidate):
            break

    # If SLSQP never reported clean convergence, polish with the slower but
    # more robust trust-constr interior-point method (the problem is convex,
    # so any stationary feasible point it finds is the global optimum).  The
    # polish is skipped for very large instances, where SLSQP's best feasible
    # point is kept as-is to bound the solve time.
    if (accepted is None
            and (result.status != 0 or not is_feasible_point(best_d))
            and n <= 150):
        # a_matrix is a dense np.vstack already; sparse assembly is the
        # modeling layer's job (repro-lint: modeling-only-assembly)
        linear = optimize.LinearConstraint(a_matrix, 0.0, np.inf)
        polish = optimize.minimize(
            objective, repaired_start(best_d), jac=gradient, bounds=bounds,
            constraints=[linear], method="trust-constr",
            options={"maxiter": 500, "gtol": 1e-9, "xtol": 1e-12},
        )
        candidate = np.clip(polish.x[:n], d_lower, 1.0)
        if objective(np.concatenate([candidate, candidate])) \
                < objective(np.concatenate([best_d, best_d])) or not is_feasible_point(best_d):
            best_d = candidate
            stage = "trust-constr-polish"
            stage_result = polish

    # Guarantee feasibility: blend towards the uniform-scaling warm start if
    # needed, and never return something worse than the warm start itself.
    blended = feasible_blend(best_d)
    if blended is not best_d:
        stage = f"feasible-blend(after {stage})"
    best_d = blended
    if objective(np.concatenate([best_d, best_d])) > objective(x0):
        best_d = init_d
        stage = "uniform-scaling-warm-start"

    durations = best_d * deadline
    speeds = {name: works_raw[index[name]] / durations[index[name]] for name in names}

    # The point is feasible in normalised units; clamp any residual s_max
    # overshoot from round-off (bounded by the 1e-9 feasibility tolerance).
    if math.isfinite(s_max):
        overshoot = max(speeds.values()) / s_max
        if overshoot > 1.0 + 1e-6:
            raise SolverError(
                f"convex solver produced speeds exceeding s_max by {overshoot - 1.0:.2%} "
                f"(stage {stage}, status {stage_result.status}: {stage_result.message})"
            )

    assignment = SpeedAssignment(speeds)
    # `stage_result` is the optimizer run that produced the returned point
    # (the blend/warm-start stages are derived repairs of that run, which the
    # `stage` field records), so iterations/status/message describe the
    # numbers behind `best_d` rather than whatever SLSQP reported first.
    metadata: dict[str, Any] = {
        "stage": stage,
        "iterations": int(stage_result.nit),
        "status": int(stage_result.status),
        "message": str(stage_result.message),
        "objective": float(assignment.energy(graph, problem.power)),
    }
    return make_solution(problem, assignment, solver="continuous-convex",
                         optimal=True, metadata=metadata)
