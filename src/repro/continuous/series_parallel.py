"""Polynomial Continuous algorithm for series-parallel graphs (Theorem 2).

The algorithm works on the series-parallel decomposition tree
(:mod:`repro.graphs.sp_decomposition`) and is based on the notion of
*equivalent load*: for every SP-decomposable (sub)graph ``H`` there is a
single number ``L(H)`` such that the optimal energy of ``H`` under deadline
``d`` (cubic power law, no speed cap) is ``L(H)**3 / d**2``.  The load obeys

* a single task of work ``w``:            ``L = w``;
* series composition ``H1 ; H2``:         ``L = L1 + L2``;
* parallel composition ``H1 || H2``:      ``L = (L1**3 + L2**3) ** (1/3)``.

For the fork graph (source in series with the parallel composition of its
leaves) this reduces to ``L = w0 + (sum w_i**3)**(1/3)`` and yields exactly
the speeds of Theorem 1.  With a general power exponent ``alpha`` the
parallel rule becomes the ``alpha``-norm; the implementation is written for
general ``alpha`` and defaults to the paper's ``alpha = 3``.

Once the loads are known, the optimal speeds are obtained top-down: a
subgraph of load ``L`` solved within a window of length ``d`` runs "at pace
``L / d``"; a series node splits its window proportionally to its
children's loads; a parallel node gives the full window to every child; a
leaf of work ``w`` inside a window of length ``d`` runs at speed ``w / d``.

The correctness argument for the (relaxed) series composition used by the
decomposition — every task of the first block transitively precedes every
task of the second — is that in *any* feasible schedule all of the first
block finishes before any of the second starts, so the deadline can be
split, and conversely any split schedule is feasible because the dropped
cross edges are implied by the time separation.

``s_max`` handling: Theorem 2 assumes ``s_max = +inf`` for series-parallel
graphs.  :func:`solve_series_parallel` therefore solves the uncapped
problem; if the resulting speeds violate a finite ``s_max`` the caller
(:func:`repro.continuous.solve.solve_continuous`) falls back to the general
convex solver, which handles the cap exactly.
"""

from __future__ import annotations

from repro.core.problem import MinEnergyProblem
from repro.core.solution import Solution, SpeedAssignment, make_solution
from repro.graphs.sp_decomposition import (
    SPLeaf,
    SPNode,
    SPParallel,
    SPSeries,
    sp_decompose,
)
from repro.graphs.taskgraph import TaskGraph
from repro.utils.errors import InvalidGraphError, SolverError
from repro.utils.numerics import leq_with_tol


def sp_equivalent_load(node: SPNode, *, alpha: float = 3.0) -> float:
    """Equivalent load of a decomposition-tree node.

    See the module docstring for the composition rules.
    """
    if isinstance(node, SPLeaf):
        return node.work
    if isinstance(node, SPSeries):
        return sum(sp_equivalent_load(c, alpha=alpha) for c in node.children)
    if isinstance(node, SPParallel):
        return sum(sp_equivalent_load(c, alpha=alpha) ** alpha
                   for c in node.children) ** (1.0 / alpha)
    raise InvalidGraphError(f"unknown SP node type {type(node).__name__}")


def equivalent_load(graph: TaskGraph, *, alpha: float = 3.0) -> float:
    """Equivalent load of an SP-decomposable task graph.

    The optimal Continuous energy under deadline ``D`` (without a speed cap)
    is ``equivalent_load(G)**alpha / D**(alpha - 1)``.
    """
    return sp_equivalent_load(sp_decompose(graph), alpha=alpha)


def _assign_speeds(node: SPNode, window: float, speeds: dict[str, float],
                   *, alpha: float) -> None:
    """Recursively assign optimal speeds for ``node`` inside ``window`` time units."""
    if window <= 0:
        raise SolverError(
            "series-parallel speed assignment received a non-positive window; "
            "the instance is infeasible or the deadline is degenerate"
        )
    if isinstance(node, SPLeaf):
        speeds[node.task] = node.work / window
        return
    if isinstance(node, SPSeries):
        loads = [sp_equivalent_load(c, alpha=alpha) for c in node.children]
        total = sum(loads)
        if total <= 0:
            raise SolverError("series block with zero total load")
        for child, load in zip(node.children, loads):
            _assign_speeds(child, window * load / total, speeds, alpha=alpha)
        return
    if isinstance(node, SPParallel):
        for child in node.children:
            _assign_speeds(child, window, speeds, alpha=alpha)
        return
    raise InvalidGraphError(f"unknown SP node type {type(node).__name__}")


def solve_series_parallel(problem: MinEnergyProblem, *,
                          enforce_speed_cap: bool = True) -> Solution:
    """Optimal Continuous solution for an SP-decomposable execution graph.

    Parameters
    ----------
    problem:
        The instance; its graph must be SP-decomposable
        (:func:`repro.graphs.sp_decomposition.is_series_parallel`).
    enforce_speed_cap:
        When true (default) and the model has a finite ``s_max`` that the
        uncapped optimum violates, a :class:`SolverError` is raised so the
        caller can fall back to the general convex solver.  When false the
        uncapped optimum is returned regardless (useful for computing lower
        bounds).

    Raises
    ------
    NotSeriesParallelError
        If the graph is not SP-decomposable.
    SolverError
        If the uncapped optimum violates a finite ``s_max`` and
        ``enforce_speed_cap`` is true.
    """
    graph = problem.graph
    alpha = problem.power.alpha
    tree = sp_decompose(graph)
    speeds: dict[str, float] = {}
    _assign_speeds(tree, problem.deadline, speeds, alpha=alpha)
    s_max = problem.model.max_speed
    if enforce_speed_cap:
        violating = {n: s for n, s in speeds.items() if not leq_with_tol(s, s_max)}
        if violating:
            worst = max(violating.values())
            raise SolverError(
                f"series-parallel closed form requires speed {worst:g} > s_max "
                f"{s_max:g} for {len(violating)} task(s); Theorem 2 assumes an "
                "uncapped s_max — use the general convex solver for this instance"
            )
    assignment = SpeedAssignment(speeds)
    return make_solution(
        problem, assignment, solver="continuous-series-parallel",
        optimal=not enforce_speed_cap or True,
        metadata={"equivalent_load": sp_equivalent_load(tree, alpha=alpha)},
    )
