"""Polynomial Continuous algorithm for series-parallel graphs (Theorem 2).

The algorithm works on the series-parallel decomposition tree
(:mod:`repro.graphs.sp_decomposition`) and is based on the notion of
*equivalent load*: for every SP-decomposable (sub)graph ``H`` there is a
single number ``L(H)`` such that the optimal energy of ``H`` under deadline
``d`` (cubic power law, no speed cap) is ``L(H)**3 / d**2``.  The load obeys

* a single task of work ``w``:            ``L = w``;
* series composition ``H1 ; H2``:         ``L = L1 + L2``;
* parallel composition ``H1 || H2``:      ``L = (L1**3 + L2**3) ** (1/3)``.

For the fork graph (source in series with the parallel composition of its
leaves) this reduces to ``L = w0 + (sum w_i**3)**(1/3)`` and yields exactly
the speeds of Theorem 1.  With a general power exponent ``alpha`` the
parallel rule becomes the ``alpha``-norm; the implementation is written for
general ``alpha`` and defaults to the paper's ``alpha = 3``.

Once the loads are known, the optimal speeds are obtained top-down: a
subgraph of load ``L`` solved within a window of length ``d`` runs "at pace
``L / d``"; a series node splits its window proportionally to its
children's loads; a parallel node gives the full window to every child; a
leaf of work ``w`` inside a window of length ``d`` runs at speed ``w / d``.

The correctness argument for the (relaxed) series composition used by the
decomposition — every task of the first block transitively precedes every
task of the second — is that in *any* feasible schedule all of the first
block finishes before any of the second starts, so the deadline can be
split, and conversely any split schedule is feasible because the dropped
cross edges are implied by the time separation.

``s_max`` handling: Theorem 2 assumes ``s_max = +inf`` for series-parallel
graphs.  :func:`solve_series_parallel` therefore solves the uncapped
problem; if the resulting speeds violate a finite ``s_max`` the caller
(:func:`repro.continuous.solve.solve_continuous`) falls back to the general
convex solver, which handles the cap exactly.
"""

from __future__ import annotations

from repro.core.problem import MinEnergyProblem
from repro.core.solution import Solution, SpeedAssignment, make_solution
from repro.graphs.sp_decomposition import (
    SPLeaf,
    SPNode,
    SPParallel,
    SPSeries,
    sp_decompose,
)
from repro.graphs.taskgraph import TaskGraph
from repro.utils.errors import InvalidGraphError, SolverError
from repro.utils.numerics import leq_with_tol


def sp_node_loads(node: SPNode, *, alpha: float = 3.0) -> dict[int, float]:
    """Equivalent load of every node of a decomposition tree, keyed by ``id``.

    One iterative post-order pass (explicit stack — decomposition trees of
    caterpillar graphs can nest O(n) deep, and each node's load is combined
    from its memoised children exactly once, so the pass is O(n) instead of
    the O(n²) recompute-per-level of the recursive formulation).
    """
    loads: dict[int, float] = {}
    stack: list[tuple[SPNode, bool]] = [(node, False)]
    while stack:
        current, expanded = stack.pop()
        if isinstance(current, SPLeaf):
            loads[id(current)] = current.work
            continue
        if not isinstance(current, (SPSeries, SPParallel)):
            raise InvalidGraphError(f"unknown SP node type {type(current).__name__}")
        if not expanded:
            stack.append((current, True))
            for child in current.children:
                stack.append((child, False))
            continue
        if isinstance(current, SPSeries):
            loads[id(current)] = sum(loads[id(c)] for c in current.children)
        else:
            loads[id(current)] = sum(loads[id(c)] ** alpha
                                     for c in current.children) ** (1.0 / alpha)
    return loads


def sp_equivalent_load(node: SPNode, *, alpha: float = 3.0) -> float:
    """Equivalent load of a decomposition-tree node.

    See the module docstring for the composition rules.
    """
    return sp_node_loads(node, alpha=alpha)[id(node)]


def equivalent_load(graph: TaskGraph, *, alpha: float = 3.0) -> float:
    """Equivalent load of an SP-decomposable task graph.

    The optimal Continuous energy under deadline ``D`` (without a speed cap)
    is ``equivalent_load(G)**alpha / D**(alpha - 1)``.
    """
    return sp_equivalent_load(sp_decompose(graph), alpha=alpha)


def _assign_speeds(node: SPNode, window: float, speeds: dict[str, float],
                   *, alpha: float, loads: dict[int, float] | None = None) -> None:
    """Assign optimal speeds for ``node`` inside ``window`` time units.

    Iterative top-down pass over the decomposition tree; ``loads`` memoises
    :func:`sp_node_loads` (computed here when not supplied) so series nodes
    split their window with two lookups per child instead of re-walking the
    subtree.
    """
    if loads is None:
        loads = sp_node_loads(node, alpha=alpha)
    stack: list[tuple[SPNode, float]] = [(node, window)]
    while stack:
        current, win = stack.pop()
        if win <= 0:
            raise SolverError(
                "series-parallel speed assignment received a non-positive window; "
                "the instance is infeasible or the deadline is degenerate"
            )
        if isinstance(current, SPLeaf):
            speeds[current.task] = current.work / win
            continue
        if isinstance(current, SPSeries):
            total = loads[id(current)]
            if total <= 0:
                raise SolverError("series block with zero total load")
            for child in current.children:
                stack.append((child, win * loads[id(child)] / total))
            continue
        if isinstance(current, SPParallel):
            for child in current.children:
                stack.append((child, win))
            continue
        raise InvalidGraphError(f"unknown SP node type {type(current).__name__}")


def solve_series_parallel(problem: MinEnergyProblem, *,
                          enforce_speed_cap: bool = True) -> Solution:
    """Optimal Continuous solution for an SP-decomposable execution graph.

    Parameters
    ----------
    problem:
        The instance; its graph must be SP-decomposable
        (:func:`repro.graphs.sp_decomposition.is_series_parallel`).
    enforce_speed_cap:
        When true (default) and the model has a finite ``s_max`` that the
        uncapped optimum violates, a :class:`SolverError` is raised so the
        caller can fall back to the general convex solver.  When false the
        uncapped optimum is returned regardless (useful for computing lower
        bounds).

    Raises
    ------
    NotSeriesParallelError
        If the graph is not SP-decomposable.
    SolverError
        If the uncapped optimum violates a finite ``s_max`` and
        ``enforce_speed_cap`` is true.
    """
    graph = problem.graph
    alpha = problem.power.alpha
    tree = sp_decompose(graph)
    loads = sp_node_loads(tree, alpha=alpha)
    speeds: dict[str, float] = {}
    _assign_speeds(tree, problem.deadline, speeds, alpha=alpha, loads=loads)
    s_max = problem.model.max_speed
    if enforce_speed_cap:
        violating = {n: s for n, s in speeds.items() if not leq_with_tol(s, s_max)}
        if violating:
            worst = max(violating.values())
            raise SolverError(
                f"series-parallel closed form requires speed {worst:g} > s_max "
                f"{s_max:g} for {len(violating)} task(s); Theorem 2 assumes an "
                "uncapped s_max — use the general convex solver for this instance"
            )
    assignment = SpeedAssignment(speeds)
    return make_solution(
        problem, assignment, solver="continuous-series-parallel",
        optimal=not enforce_speed_cap or True,
        metadata={"equivalent_load": loads[id(tree)]},
    )
