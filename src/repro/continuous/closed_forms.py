"""Closed-form Continuous solutions for simple graph shapes.

This module implements Theorem 1 of the paper (fork graphs) together with
the two even simpler shapes used throughout the tests and experiments:

* a **single task** runs at ``w / D`` (finish exactly at the deadline);
* a **chain** runs every task at the common speed ``(sum of works) / D``
  (equal speeds follow from the convexity of the power law: any speed
  imbalance between two consecutive tasks can be smoothed to reduce
  energy);
* a **fork** ``T0 -> {T1..Tn}`` runs the source at
  ``s0 = ((sum w_i^alpha)^(1/alpha) + w0) / D`` and each leaf at
  ``s_i = s0 * w_i / (sum w_i^alpha)^(1/alpha)`` — with ``alpha = 3`` this
  is exactly the cube-root-of-sum-of-cubes formula of Theorem 1.  When the
  unconstrained ``s0`` exceeds ``s_max``, the source saturates at ``s_max``
  and every leaf runs at ``w_i / (D - w0 / s_max)`` (the paper's second
  branch); if a leaf then needs more than ``s_max`` the instance is
  infeasible;
* a **join** is the time-reversed fork and has the same optimal speeds.
"""

from __future__ import annotations

import math

from repro.core.models import ContinuousModel
from repro.core.problem import MinEnergyProblem
from repro.core.solution import Solution, SpeedAssignment, make_solution
from repro.utils.errors import InfeasibleProblemError, InvalidGraphError
from repro.utils.numerics import leq_with_tol


def solve_single_task(problem: MinEnergyProblem) -> Solution:
    """Optimal Continuous solution for a single-task graph."""
    graph = problem.graph
    if graph.n_tasks != 1:
        raise InvalidGraphError("solve_single_task requires exactly one task")
    name = graph.task_names()[0]
    speed = graph.work(name) / problem.deadline
    s_max = problem.model.max_speed
    if not leq_with_tol(speed, s_max):
        raise InfeasibleProblemError(
            f"single task {name!r} needs speed {speed:g} > s_max {s_max:g}"
        )
    assignment = SpeedAssignment({name: speed})
    return make_solution(problem, assignment, solver="continuous-single",
                         optimal=True)


def solve_chain(problem: MinEnergyProblem) -> Solution:
    """Optimal Continuous solution for a chain execution graph.

    Every task runs at the same speed ``W / D`` where ``W`` is the total
    work: by strict convexity of the power law, any two consecutive tasks
    running at different speeds can both be moved towards their common
    average speed without violating the deadline while strictly decreasing
    the energy, so the optimum uses a single speed.
    """
    graph = problem.graph
    _assert_is_chain(graph)
    total = graph.total_work()
    speed = total / problem.deadline
    s_max = problem.model.max_speed
    if not leq_with_tol(speed, s_max):
        raise InfeasibleProblemError(
            f"chain requires common speed {speed:g} > s_max {s_max:g}"
        )
    assignment = SpeedAssignment({n: speed for n in graph.task_names()})
    return make_solution(problem, assignment, solver="continuous-chain",
                         optimal=True)


def fork_optimal_speeds(source_work: float, leaf_works: list[float],
                        deadline: float, *, s_max: float = math.inf,
                        alpha: float = 3.0) -> tuple[float, list[float]]:
    """Theorem 1: optimal speeds ``(s0, [s1..sn])`` for a fork graph.

    Parameters
    ----------
    source_work:
        Work ``w0`` of the source task ``T0``.
    leaf_works:
        Works ``w1..wn`` of the independent successor tasks.
    deadline:
        The bound ``D``.
    s_max:
        Maximum admissible speed (``inf`` for the unconstrained branch).
    alpha:
        Power-law exponent; 3 reproduces the paper's formula (cube root of
        the sum of cubes).

    Raises
    ------
    InfeasibleProblemError
        If even the saturated branch cannot meet the deadline.
    """
    if deadline <= 0:
        raise InfeasibleProblemError("deadline must be positive")
    if not leaf_works:
        raise InvalidGraphError("a fork needs at least one leaf")
    norm = sum(w ** alpha for w in leaf_works) ** (1.0 / alpha)
    s0 = (norm + source_work) / deadline
    if leq_with_tol(s0, s_max):
        if norm == 0.0:
            leaf_speeds = [0.0 for _ in leaf_works]
        else:
            leaf_speeds = [s0 * w / norm for w in leaf_works]
        return s0, leaf_speeds
    # saturated branch: source at s_max, leaves share the remaining window
    s0 = s_max
    remaining = deadline - source_work / s_max
    if remaining <= 0:
        raise InfeasibleProblemError(
            f"source alone needs {source_work / s_max:g} time units at s_max, "
            f"which exceeds the deadline {deadline:g}"
        )
    leaf_speeds = [w / remaining for w in leaf_works]
    for w, s in zip(leaf_works, leaf_speeds):
        if not leq_with_tol(s, s_max):
            raise InfeasibleProblemError(
                f"leaf with work {w:g} needs speed {s:g} > s_max {s_max:g} "
                "in the saturated branch: no feasible solution exists"
            )
    return s0, leaf_speeds


def solve_fork(problem: MinEnergyProblem) -> Solution:
    """Optimal Continuous solution for a fork execution graph (Theorem 1)."""
    graph = problem.graph
    source, leaves = _fork_structure(graph)
    leaf_names = sorted(leaves)
    s0, leaf_speeds = fork_optimal_speeds(
        graph.work(source),
        [graph.work(n) for n in leaf_names],
        problem.deadline,
        s_max=problem.model.max_speed,
        alpha=problem.power.alpha,
    )
    speeds = {source: s0}
    speeds.update(dict(zip(leaf_names, leaf_speeds)))
    assignment = SpeedAssignment(speeds)
    return make_solution(problem, assignment, solver="continuous-fork-closed-form",
                         optimal=True)


def solve_join(problem: MinEnergyProblem) -> Solution:
    """Optimal Continuous solution for a join execution graph.

    A join is the time reversal of a fork, and time reversal leaves both the
    energy and the set of feasible duration vectors unchanged, so the
    optimal speeds coincide with those of the corresponding fork.
    """
    graph = problem.graph
    sink, leaves = _join_structure(graph)
    leaf_names = sorted(leaves)
    s_sink, leaf_speeds = fork_optimal_speeds(
        graph.work(sink),
        [graph.work(n) for n in leaf_names],
        problem.deadline,
        s_max=problem.model.max_speed,
        alpha=problem.power.alpha,
    )
    speeds = {sink: s_sink}
    speeds.update(dict(zip(leaf_names, leaf_speeds)))
    assignment = SpeedAssignment(speeds)
    return make_solution(problem, assignment, solver="continuous-join-closed-form",
                         optimal=True)


# --------------------------------------------------------------------------- #
# structure checks
# --------------------------------------------------------------------------- #
def _assert_is_chain(graph) -> None:
    names = graph.task_names()
    if not names:
        raise InvalidGraphError("empty graph")
    sources = graph.sources()
    sinks = graph.sinks()
    if len(sources) != 1 or len(sinks) != 1:
        raise InvalidGraphError("a chain has exactly one source and one sink")
    for n in names:
        if graph.out_degree(n) > 1 or graph.in_degree(n) > 1:
            raise InvalidGraphError(f"task {n!r} breaks the chain structure")
    if graph.n_edges != graph.n_tasks - 1:
        raise InvalidGraphError("graph is not a single connected chain")


def _fork_structure(graph) -> tuple[str, list[str]]:
    """Return ``(source, leaves)`` or raise if the graph is not a fork."""
    sources = graph.sources()
    if len(sources) != 1:
        raise InvalidGraphError("a fork has exactly one source")
    source = sources[0]
    leaves = graph.successors(source)
    if set(leaves) | {source} != set(graph.task_names()):
        raise InvalidGraphError("a fork's source must directly precede every other task")
    for leaf in leaves:
        if graph.out_degree(leaf) != 0 or graph.in_degree(leaf) != 1:
            raise InvalidGraphError(f"task {leaf!r} breaks the fork structure")
    if not leaves:
        raise InvalidGraphError("a fork needs at least one leaf")
    return source, leaves


def _join_structure(graph) -> tuple[str, list[str]]:
    """Return ``(sink, leaves)`` or raise if the graph is not a join."""
    sinks = graph.sinks()
    if len(sinks) != 1:
        raise InvalidGraphError("a join has exactly one sink")
    sink = sinks[0]
    leaves = graph.predecessors(sink)
    if set(leaves) | {sink} != set(graph.task_names()):
        raise InvalidGraphError("a join's sink must directly succeed every other task")
    for leaf in leaves:
        if graph.in_degree(leaf) != 0 or graph.out_degree(leaf) != 1:
            raise InvalidGraphError(f"task {leaf!r} breaks the join structure")
    if not leaves:
        raise InvalidGraphError("a join needs at least one source task")
    return sink, leaves
