"""Sparse large-n Continuous solver for general DAGs.

The dense :func:`repro.continuous.general.solve_general_convex` pipeline
assembles an ``(|E| + n) x 2n`` constraint matrix and lets SLSQP factorise
it densely — O(n³) per iteration, gigabytes of memory, and a hard
``max_dense_tasks`` ceiling.  This module is the sparse replacement that
takes general DAGs to 10,000 tasks:

* the normalised convex program is *declared* through
  :mod:`repro.modeling` — one ``d`` block, one ``t`` block, the shared
  precedence polytope — and materialises to one CSR system (no dense row
  buffers at any point);
* transitively redundant precedence rows are pruned first with a
  vectorised two-hop bitset filter (an Erdős-layered 2,000-task DAG keeps
  ~4% of its 300k edges — every dropped row is implied by a longer path,
  so the feasible region is unchanged);
* a structure-exploiting warm start projects the instance onto its
  critical spanning forest and runs the O(n) iterative Theorem-2 tree
  machinery on it, then scale-repairs the result back into the
  critical-path polytope of the full DAG;
* the convex program itself is handed to a backend registered on
  :data:`repro.modeling.BACKENDS` — by default ``mehrotra-ipm``, the
  primal-dual Mehrotra predictor-corrector interior point (formerly
  private to this module, now :mod:`repro.modeling.backends.mehrotra`)
  whose KKT systems are the sparse 2n x 2n matrices
  ``H + Gᵀ diag(λ/s) G`` (same sparsity as the DAG), factorised with
  SuperLU — ~25-60 factorisations regardless of size, each O(nnz) for
  these structures.

The entry point :func:`solve_general_convex_sparse` is registered as the
``convex-sparse`` backend of the Continuous model and is what
``solve_continuous`` dispatches to for general DAGs above the dense
pipeline's comfort zone.  (SciPy's own sparse interior point,
``minimize(method="trust-constr")`` over the same sparse Jacobian/Hessian,
was benchmarked first: its barrier loop re-centres away from the active
deadline face and needs ~0.3 s/iteration at n=500 — the specialised
iteration here converges in a fraction of the iterations at a fraction of
the per-iteration cost, which is what the 10k acceptance target needs.)

Every returned point is feasibility-repaired exactly like the dense
pipeline (scale repair, feasible blend, never worse than the warm start),
so callers get a valid solution even when the iteration is stopped early
by ``max_iterations``.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np
from scipy import sparse

from repro.core.problem import MinEnergyProblem
from repro.core.solution import (
    Solution,
    SpeedAssignment,
    asap_times,
    compute_makespan,
    make_solution,
)
from repro.graphs.analysis import longest_path_length
from repro.graphs.taskgraph import GraphIndex, Task, TaskGraph
from repro.modeling import BACKENDS, ConvexModel, declare_precedence
from repro.utils.errors import SolverError


def prune_redundant_edges(idx: GraphIndex) -> tuple[np.ndarray, np.ndarray]:
    """Drop precedence edges implied by a two-hop path (vectorised bitsets).

    An edge ``(u, v)`` is redundant for the scheduling polytope whenever a
    longer path ``u -> w -> v`` exists: the chained constraints
    ``t_w >= t_u + d_w`` and ``t_v >= t_w + d_v`` imply
    ``t_v >= t_u + d_v`` because ``d_w > 0``.  Successor/predecessor sets
    are packed into uint64 bitsets and all edges are tested with one
    chunked ``&``-reduction, so the filter is O(n·m/64) — about 0.1 s for
    the 300k edges of a 2,000-task Erdős DAG, of which it removes ~96%.

    Returns the surviving ``(edge_src, edge_dst)`` arrays (the originals
    when nothing can be pruned).
    """
    esrc, edst = idx.edge_src, idx.edge_dst
    m = len(esrc)
    n = idx.n_tasks
    if m == 0 or n == 0:
        return esrc, edst
    words = (n + 63) // 64
    succ_bits = np.zeros((n, words), dtype=np.uint64)
    pred_bits = np.zeros((n, words), dtype=np.uint64)
    one = np.uint64(1)
    np.bitwise_or.at(succ_bits, (esrc, edst // 64), one << (edst % 64).astype(np.uint64))
    np.bitwise_or.at(pred_bits, (edst, esrc // 64), one << (esrc % 64).astype(np.uint64))
    keep = np.ones(m, dtype=bool)
    # chunk the m x words intersection table to bound peak memory (~400 MB)
    chunk = max(1, 50_000_000 // words)
    for lo in range(0, m, chunk):
        hi = min(lo + chunk, m)
        inter = succ_bits[esrc[lo:hi]] & pred_bits[edst[lo:hi]]
        keep[lo:hi] = ~inter.any(axis=1)
    if keep.all():
        return esrc, edst
    return esrc[keep], edst[keep]


def declare_continuous_program(n: int, esrc: np.ndarray, edst: np.ndarray,
                               d_lower: np.ndarray,
                               works: np.ndarray | None = None,
                               alpha: float | None = None) -> ConvexModel:
    """Declare the normalised Continuous program as a :class:`ConvexModel`.

    Variable layout ``x = [d_0..d_{n-1}, t_0..t_{n-1}]`` (normalised time,
    deadline = 1).  Inequality rows, in materialisation order:

    * one per precedence edge ``(u, v)``: ``t_u - t_v + d_v <= 0``;
    * one per task: ``d_i - t_i <= 0`` (start times are non-negative);
    * one per task: ``t_i <= 1`` (the deadline, a folded upper bound);
    * one per task: ``-d_i <= -d_lower_i`` (the speed cap, a folded lower
      bound).

    When ``works``/``alpha`` are given the energy objective
    ``sum w_i**alpha * d_i**(1 - alpha)`` is declared on the ``d`` block.
    """
    model = ConvexModel(name="continuous-sparse")
    d = model.add_variables("d", n, lower=np.asarray(d_lower, dtype=float))
    t = model.add_variables("t", n, lower=None, upper=1.0)
    if works is not None and alpha is not None:
        model.add_power_objective(d, np.asarray(works, dtype=float) ** alpha,
                                  1.0 - alpha)
    declare_precedence(
        model, completion=t, duration_block=d,
        duration_cols=np.arange(n, dtype=np.int64).reshape(n, 1),
        edge_src=esrc, edge_dst=edst)
    return model


def build_sparse_constraints(n: int, esrc: np.ndarray, edst: np.ndarray,
                             d_lower: np.ndarray
                             ) -> tuple[sparse.csr_matrix, np.ndarray]:
    """CSR inequality system ``G x <= h`` of the normalised program.

    A thin view over :func:`declare_continuous_program`'s materialisation,
    kept for callers (and tests) that want the raw arrays.
    """
    mat = declare_continuous_program(n, esrc, edst, d_lower).materialize()
    return mat.g_matrix, mat.h


def _forest_warm_start(problem: MinEnergyProblem, idx: GraphIndex,
                       works: np.ndarray, d_lower: np.ndarray
                       ) -> np.ndarray | None:
    """Durations from the Theorem-2 tree machinery on a critical forest.

    Keeps, for every task, only its *critical* predecessor (the one with
    the latest unit-speed ASAP finish, so the DAG's critical path survives
    in the forest), hangs the forest's roots under a virtual
    negligible-work root, and solves the resulting out-tree exactly with
    the O(n) iterative tree solver.  The tree optimum is then rescaled so
    the *full* DAG (whose dropped edges the forest ignored) meets the
    normalised deadline again — a projection onto the critical-path
    polytope that is typically within a few percent of the true optimum
    and costs O(n + m).

    Returns the normalised duration vector, or ``None`` when the tree
    machinery does not apply (it then falls back to uniform scaling).
    """
    from repro.continuous.tree import solve_tree
    from repro.core.models import ContinuousModel

    n = idx.n_tasks
    _start, unit_finish = asap_times(idx, works)
    root = "__critical_forest_root__"
    while root in problem.graph:
        root += "_"
    forest = TaskGraph(name="critical-forest")
    forest.add_task(Task(root, max(float(np.min(works)) * 1e-6, 1e-12)))
    for i, name in enumerate(idx.names):
        forest.add_task(Task(name, float(works[i])))
    for i, name in enumerate(idx.names):
        preds = idx.predecessors_of(i)
        if len(preds):
            critical = preds[int(np.argmax(unit_finish[preds]))]
            forest.add_edge(idx.names[critical], name)
        else:
            forest.add_edge(root, name)
    tree_problem = MinEnergyProblem(
        graph=forest, deadline=1.0, model=ContinuousModel(s_max=math.inf),
        power=problem.power, name="critical-forest-warm-start",
    )
    try:
        tree_solution = solve_tree(tree_problem, enforce_speed_cap=False)
    except SolverError:
        return None
    speeds = tree_solution.speeds()
    durations = np.array([works[i] / speeds[name]
                          for i, name in enumerate(idx.names)])
    durations = np.clip(durations, d_lower, 1.0)
    return durations


def _interior_start(idx: GraphIndex, d_feas: np.ndarray, d_lower: np.ndarray
                    ) -> np.ndarray | None:
    """A strictly interior ``[d, t]`` point blended from a feasible one.

    Blends the feasible durations a quarter of the way towards the
    speed-cap floor's slack so the deadline face is not active, bumps every
    duration off the cap by a depth-scaled epsilon, and spreads completion
    times level by level into the remaining slack so every precedence and
    start-time row holds strictly.  Returns ``None`` when the instance has
    (numerically) no interior — the deadline then equals the fastest
    makespan and the caller returns the all-out point directly.
    """
    n = idx.n_tasks
    ms_floor = float(asap_times(idx, d_lower)[1].max())
    slack_room = 1.0 - ms_floor
    if slack_room < 1e-9:
        return None
    ms_feas = float(asap_times(idx, d_feas)[1].max())
    target = 1.0 - 0.25 * slack_room
    d_up = d_feas * min(target / max(ms_feas, 1e-300), 1.0)
    beta = 0.95
    depth = int(idx.level.max()) + 1 if n else 1
    eps = min(1e-9, 0.1 * slack_room / (depth + 1))
    d0 = (1.0 - beta) * d_lower + beta * np.maximum(d_up, d_lower) + eps
    _s0, f0 = asap_times(idx, d0)
    fmax = float(f0.max())
    if fmax >= 1.0 - 1e-12:
        return None
    lev = idx.level.astype(float)
    delta = 0.5 * (1.0 - fmax) / (lev.max() + 2.0)
    t0 = f0 + delta * (lev + 1.0)
    return np.concatenate([d0, t0])


def solve_general_convex_sparse(problem: MinEnergyProblem, *,
                                max_iterations: int = 200,
                                tolerance: float = 1e-9,
                                prune: bool = True,
                                warm_start: str = "forest",
                                backend: str = "mehrotra-ipm") -> Solution:
    """Sparse interior-point Continuous solver for arbitrary DAGs.

    The large-n counterpart of :func:`repro.continuous.general.
    solve_general_convex`: same convex program, but every matrix it touches
    is ``scipy.sparse`` and the iteration count is size-independent, so
    10,000-task general DAGs solve in seconds without any task-count cap.

    Parameters
    ----------
    problem:
        The instance; its model's ``s_max`` (finite or infinite) is
        honoured.
    max_iterations:
        Cap on interior-point iterations (each is one sparse
        factorisation; typical instances converge in 25-60).  Passed to
        the backend when it declares the option.
    tolerance:
        Relative duality-gap target of the stopping test (ditto).
    prune:
        Drop transitively redundant precedence rows first (two-hop bitset
        filter); identical optimum, much sparser KKT systems on dense
        random DAGs.
    warm_start:
        ``"forest"`` (default) projects onto the critical spanning forest
        via the iterative tree machinery; ``"uniform"`` uses the plain
        uniform-scaling point.
    backend:
        Any convex backend registered on :data:`repro.modeling.BACKENDS`
        (default ``"mehrotra-ipm"``; optional ``"cvxpy"``/``"ecos"``/
        ``"scs"`` when installed).

    Raises
    ------
    InfeasibleProblemError
        If the deadline cannot be met at the maximum speed.
    SolverError
        For an unknown ``warm_start`` or a graph with no work.
    UnknownBackendError
        If no registered convex backend matches ``backend``.
    """
    if warm_start not in ("forest", "uniform"):
        raise SolverError(
            f"convex-sparse got unknown warm_start {warm_start!r} "
            "(use 'forest' or 'uniform')"
        )
    entry = BACKENDS.resolve(backend, kind="convex")
    problem.ensure_feasible()
    graph = problem.graph
    idx = graph.index()
    n = idx.n_tasks
    alpha = problem.power.alpha
    deadline = problem.deadline
    s_max = problem.model.max_speed
    works_raw = idx.works

    if n == 1:
        speed = works_raw[0] / deadline
        return make_solution(problem, SpeedAssignment({idx.names[0]: speed}),
                             solver="continuous-convex-sparse", optimal=True)

    # ---- normalisation: deadline -> 1, mean work -> 1 (as the dense path)
    work_scale = float(np.mean(works_raw))
    works = works_raw / work_scale
    s_max_n = s_max * deadline / work_scale if math.isfinite(s_max) else math.inf
    if math.isfinite(s_max_n):
        d_lower = works / s_max_n
    else:
        d_lower = np.full(n, 1e-9)
    d_lower = np.maximum(d_lower, 1e-9)

    cp_norm = longest_path_length(
        graph, weight=lambda name: graph.work(name) / work_scale)
    if cp_norm <= 0:
        raise SolverError("graph has no work")
    uniform_d = np.maximum(works / cp_norm, d_lower)

    def objective(d: np.ndarray) -> float:
        return float(np.sum(works ** alpha * d ** (1.0 - alpha)))

    def makespan_of(d: np.ndarray) -> float:
        return compute_makespan(graph, d)

    warm_d = uniform_d
    stage = "uniform-scaling-warm-start"
    if warm_start == "forest":
        forest_d = _forest_warm_start(problem, idx, works, d_lower)
        if forest_d is not None:
            overshoot = makespan_of(forest_d)
            if overshoot > 1.0:
                forest_d = np.maximum(forest_d / overshoot, d_lower)
            if (makespan_of(forest_d) <= 1.0 + 1e-9
                    and objective(forest_d) < objective(uniform_d)):
                warm_d = forest_d
                stage = "forest-warm-start"

    x0 = _interior_start(idx, warm_d, d_lower)
    if x0 is None:
        # no interior: the deadline equals the fastest possible makespan,
        # so the all-out point is the unique feasible (hence optimal) one
        durations = d_lower * deadline
        speeds = {name: works_raw[i] / durations[i]
                  for i, name in enumerate(idx.names)}
        return make_solution(
            problem, SpeedAssignment(speeds),
            solver="continuous-convex-sparse", optimal=True,
            metadata={"stage": "speed-cap-saturated", "iterations": 0},
        )

    esrc, edst = (prune_redundant_edges(idx) if prune
                  else (idx.edge_src, idx.edge_dst))
    model = declare_continuous_program(n, esrc, edst, d_lower,
                                       works=works, alpha=alpha)
    # pass only the options the chosen backend declares (cvxpy-family
    # backends have no iteration/tolerance knobs)
    options = {name: value
               for name, value in (("max_iterations", max_iterations),
                                   ("tolerance", tolerance))
               if entry.accepts(name)}
    result = BACKENDS.solve(model, backend=backend, options=options,
                            hints={"x0": x0})
    x = result.x
    diagnostics = result.metadata

    best_d = np.clip(x[:n], d_lower, 1.0)
    overshoot = makespan_of(best_d)
    converged = bool(diagnostics.get("converged", True))
    ipm_stage = "ipm" if converged else "ipm-iteration-cap"
    if overshoot > 1.0:
        best_d = np.maximum(best_d / overshoot, d_lower)
        ipm_stage += "-scale-repair"
    if makespan_of(best_d) <= 1.0 + 1e-9 and objective(best_d) <= objective(warm_d):
        stage = ipm_stage
    else:
        best_d = warm_d  # repaired point is worse (or infeasible): keep warm

    durations = best_d * deadline
    speeds = {name: works_raw[i] / durations[i]
              for i, name in enumerate(idx.names)}
    if math.isfinite(s_max):
        worst = max(speeds.values()) / s_max
        if worst > 1.0 + 1e-6:
            raise SolverError(
                f"convex-sparse produced speeds exceeding s_max by "
                f"{worst - 1.0:.2%} (stage {stage})"
            )
    assignment = SpeedAssignment(speeds)
    metadata: dict[str, Any] = {
        "stage": stage,
        "iterations": int(diagnostics.get("iterations", 0)),
        "converged": converged,
        "duality_gap": diagnostics.get("duality_gap", 0.0),
        "n_constraints": int(diagnostics.get("n_constraints",
                                             model.materialize().g_matrix.shape[0])),
        "n_edges_pruned": int(idx.n_edges - len(esrc)),
        "backend": diagnostics.get("backend", backend),
        "build_seconds": diagnostics.get("build_seconds"),
        "solve_seconds": diagnostics.get("solve_seconds"),
        "model_fingerprint": diagnostics.get("model_fingerprint"),
        "objective": float(assignment.energy(graph, problem.power)),
    }
    return make_solution(problem, assignment, solver="continuous-convex-sparse",
                         optimal=True, metadata=metadata)
