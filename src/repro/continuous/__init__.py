"""Solvers for the Continuous energy model.

The paper's results implemented here:

* **Theorem 1** — closed-form optimal speeds for fork (and, by symmetry,
  join) graphs, including the ``s_max``-saturated branch
  (:mod:`repro.continuous.closed_forms`);
* **Theorem 2** — polynomial algorithms for trees and series-parallel
  graphs via equivalent-load composition
  (:mod:`repro.continuous.series_parallel`);
* the general case — ``MinEnergy(G, D)`` is a geometric/convex program;
  :mod:`repro.continuous.general` solves it numerically (SLSQP over
  durations and completion times);
* lower bounds used by every other model's evaluation
  (:mod:`repro.continuous.bounds`).

:func:`solve_continuous` dispatches to the best applicable method.
"""

from repro.continuous.closed_forms import (
    solve_single_task,
    solve_chain,
    solve_fork,
    solve_join,
    fork_optimal_speeds,
)
from repro.continuous.series_parallel import (
    equivalent_load,
    solve_series_parallel,
    sp_equivalent_load,
)
from repro.continuous.tree import solve_tree, is_tree
from repro.continuous.general import solve_general_convex
from repro.continuous.bounds import (
    continuous_lower_bound,
    load_lower_bound,
    critical_path_lower_bound,
)
from repro.continuous.solve import solve_continuous

__all__ = [
    "solve_single_task",
    "solve_chain",
    "solve_fork",
    "solve_join",
    "fork_optimal_speeds",
    "equivalent_load",
    "sp_equivalent_load",
    "solve_series_parallel",
    "solve_tree",
    "is_tree",
    "solve_general_convex",
    "continuous_lower_bound",
    "load_lower_bound",
    "critical_path_lower_bound",
    "solve_continuous",
]
