"""Lightweight ASCII/CSV table formatting for the experiment harness.

The benchmark drivers print the rows a paper table or figure series would
contain; this module renders them without requiring any plotting dependency
(the environment is offline).
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence
from repro.utils.errors import InvalidParameterError, UnknownColumnError


def format_float(value: Any, *, digits: int = 4) -> str:
    """Format a value for table output.

    Floats are rendered with ``digits`` significant digits; other values use
    ``str``.  ``None`` renders as ``"-"`` so that missing cells stay aligned.
    """
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{digits}g}"
    return str(value)


@dataclass
class Table:
    """A simple column-aligned table.

    Parameters
    ----------
    columns:
        Column headers, in display order.
    title:
        Optional title printed above the table.
    """

    columns: Sequence[str]
    title: str = ""
    rows: list[list[Any]] = field(default_factory=list)

    def add_row(self, *values: Any, **named: Any) -> None:
        """Append a row.

        Either positional values (one per column, in order) or keyword values
        (keyed by column name) may be given, not both.
        """
        if values and named:
            raise InvalidParameterError("pass either positional or named cell values, not both")
        if named:
            missing = [c for c in self.columns if c not in named]
            if missing:
                raise InvalidParameterError(f"missing cells for columns: {missing}")
            row = [named[c] for c in self.columns]
        else:
            if len(values) != len(self.columns):
                raise InvalidParameterError(
                    f"expected {len(self.columns)} cells, got {len(values)}"
                )
            row = list(values)
        self.rows.append(row)

    def to_ascii(self, *, digits: int = 4) -> str:
        """Render the table as aligned ASCII text."""
        rendered = [[format_float(v, digits=digits) for v in row] for row in self.rows]
        headers = [str(c) for c in self.columns]
        widths = [len(h) for h in headers]
        for row in rendered:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        out = io.StringIO()
        if self.title:
            out.write(self.title + "\n")
        sep = "  "
        out.write(sep.join(h.ljust(widths[i]) for i, h in enumerate(headers)) + "\n")
        out.write(sep.join("-" * w for w in widths) + "\n")
        for row in rendered:
            out.write(sep.join(cell.ljust(widths[i]) for i, cell in enumerate(row)) + "\n")
        return out.getvalue()

    def to_csv(self) -> str:
        """Render the table as CSV text (no quoting of commas in cells)."""
        lines = [",".join(str(c) for c in self.columns)]
        for row in self.rows:
            lines.append(",".join(format_float(v, digits=10) for v in row))
        return "\n".join(lines) + "\n"

    def column(self, name: str) -> list[Any]:
        """Return the values of column ``name`` across all rows."""
        try:
            idx = list(self.columns).index(name)
        except ValueError as exc:
            raise UnknownColumnError(f"no column named {name!r}") from exc
        return [row[idx] for row in self.rows]

    def __len__(self) -> int:
        return len(self.rows)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.to_ascii()


def ascii_series_plot(
    xs: Sequence[float],
    series: dict[str, Sequence[float]],
    *,
    width: int = 60,
    title: str = "",
) -> str:
    """Render one or more (x, y) series as a crude ASCII chart.

    Used by the experiment drivers to show the *shape* of a figure (who wins,
    where curves cross) without a plotting library.  Each series is drawn as
    its own row of normalised bars.
    """
    out = io.StringIO()
    if title:
        out.write(title + "\n")
    all_values: list[float] = [v for ys in series.values() for v in ys]
    if not all_values:
        return out.getvalue()
    vmax = max(all_values)
    vmin = min(all_values)
    span = vmax - vmin if vmax > vmin else 1.0
    out.write("x: " + " ".join(f"{x:g}" for x in xs) + "\n")
    for name, ys in series.items():
        out.write(f"{name}\n")
        for x, y in zip(xs, ys):
            bar = int(round((y - vmin) / span * width))
            out.write(f"  {x:>8g} | {'#' * bar} {y:.4g}\n")
    return out.getvalue()
