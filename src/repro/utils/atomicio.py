"""Atomic file writes: temp file in the target directory + ``os.replace``.

The single blessed way to persist a file in the durable paths (job store,
caches, shard dumps): write the full content to a same-directory temp file
and :func:`os.replace` it over the target, so a reader can never observe a
torn or empty file and a crashed writer leaves the previous version
intact.  The static analyser (``repro lint``, rule ``atomic-writes``)
flags bare ``open(..., "w")``/``write_text`` calls in those paths that
bypass this helper.
"""

from __future__ import annotations

import os
from pathlib import Path


def atomic_write_text(path: "str | os.PathLike[str]", text: str, *,
                      encoding: str = "utf-8") -> Path:
    """Atomically replace ``path`` with ``text``; returns the target path.

    The temp file lives next to the target (``os.replace`` must not cross
    filesystems) and is unlinked on failure, so an interrupted write never
    leaves debris behind or a half-written target visible.
    """
    target = Path(path)
    tmp = target.with_name(f"{target.name}.tmp.{os.getpid()}")
    try:
        tmp.write_text(text, encoding=encoding)
        os.replace(tmp, target)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    return target


def atomic_write_bytes(path: "str | os.PathLike[str]", data: bytes) -> Path:
    """Atomically replace ``path`` with ``data``; returns the target path."""
    target = Path(path)
    tmp = target.with_name(f"{target.name}.tmp.{os.getpid()}")
    try:
        tmp.write_bytes(data)
        os.replace(tmp, target)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    return target
