"""Numeric helpers: tolerant comparisons, cubes, clamping.

The optimisation problems solved by this library involve cube roots and sums
of cubes whose optimal values are irrational (see Theorem 1 of the paper),
so every feasibility or optimality check must be performed with explicit
tolerances.  Centralising the tolerance policy here keeps the solvers and
the validators consistent.
"""

from __future__ import annotations

import math
from repro.utils.errors import InvalidParameterError

#: Default absolute tolerance used by feasibility and optimality checks.
DEFAULT_ABS_TOL: float = 1e-9

#: Default relative tolerance used by feasibility and optimality checks.
DEFAULT_REL_TOL: float = 1e-7


def is_close(
    a: float,
    b: float,
    *,
    rel_tol: float = DEFAULT_REL_TOL,
    abs_tol: float = DEFAULT_ABS_TOL,
) -> bool:
    """Return ``True`` when ``a`` and ``b`` are equal up to the tolerances."""
    return math.isclose(a, b, rel_tol=rel_tol, abs_tol=abs_tol)


def leq_with_tol(
    a: float,
    b: float,
    *,
    rel_tol: float = DEFAULT_REL_TOL,
    abs_tol: float = DEFAULT_ABS_TOL,
) -> bool:
    """Return ``True`` when ``a <= b`` up to the tolerances.

    This is the comparison used for deadline and precedence feasibility:
    ``a`` may exceed ``b`` by at most ``abs_tol + rel_tol * |b|``.
    """
    return a <= b + abs_tol + rel_tol * abs(b)


def geq_with_tol(
    a: float,
    b: float,
    *,
    rel_tol: float = DEFAULT_REL_TOL,
    abs_tol: float = DEFAULT_ABS_TOL,
) -> bool:
    """Return ``True`` when ``a >= b`` up to the tolerances."""
    return leq_with_tol(b, a, rel_tol=rel_tol, abs_tol=abs_tol)


def clamp(value: float, lower: float, upper: float) -> float:
    """Clamp ``value`` to the closed interval ``[lower, upper]``.

    Raises
    ------
    ValueError
        If ``lower > upper``.
    """
    if lower > upper:
        raise InvalidParameterError(f"clamp interval is empty: [{lower}, {upper}]")
    return max(lower, min(upper, value))


def cube(x: float) -> float:
    """Return ``x ** 3`` (kept as a named helper for readability)."""
    return x * x * x


def cube_root(x: float) -> float:
    """Return the real cube root of a non-negative number.

    ``x ** (1/3)`` loses accuracy for very large or very small values;
    :func:`math.pow` with a guard is sufficient for the magnitudes used in
    the library (task weights and speeds are O(1)..O(1e6)).

    Raises
    ------
    ValueError
        If ``x`` is negative.  The quantities we take cube roots of (sums of
        cubes of non-negative weights) are always non-negative; a negative
        argument indicates a programming error upstream.
    """
    if x < 0:
        raise InvalidParameterError(f"cube_root expects a non-negative argument, got {x}")
    if x == 0.0:
        return 0.0
    return math.exp(math.log(x) / 3.0)


def safe_div(numerator: float, denominator: float, *, default: float = math.inf) -> float:
    """Return ``numerator / denominator`` or ``default`` when dividing by zero."""
    if denominator == 0.0:
        return default
    return numerator / denominator
