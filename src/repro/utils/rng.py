"""Seeded random-number helpers.

Every stochastic component of the library (graph generators, workload
ensembles, randomised heuristics) takes either an integer seed or an already
constructed :class:`numpy.random.Generator`.  These helpers normalise the two
forms and let an experiment driver deterministically derive independent
sub-streams for its repetitions.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np
from repro.utils.errors import InvalidParameterError

RngLike = int | np.random.Generator | None


def make_rng(seed: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` (non-deterministic), an integer seed, or an existing
        generator which is returned unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: RngLike, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent generators from a single seed.

    Uses :class:`numpy.random.SeedSequence` spawning so that the streams are
    statistically independent and reproducible from the parent seed.
    """
    if count < 0:
        raise InvalidParameterError("count must be non-negative")
    if isinstance(seed, np.random.Generator):
        # Derive children from the generator's bit-generator seed sequence.
        seq = seed.bit_generator.seed_seq  # type: ignore[attr-defined]
    else:
        seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]


def choice_without_replacement(
    rng: np.random.Generator, items: Sequence, size: int
) -> list:
    """Sample ``size`` distinct items from ``items`` (order preserved in result)."""
    if size > len(items):
        raise InvalidParameterError("cannot sample more items than available")
    idx = rng.choice(len(items), size=size, replace=False)
    return [items[i] for i in sorted(int(i) for i in idx)]


def random_partition(
    rng: np.random.Generator, total: int, parts: int
) -> list[int]:
    """Split ``total`` items into ``parts`` non-negative integer bucket sizes."""
    if parts <= 0:
        raise InvalidParameterError("parts must be positive")
    if total < 0:
        raise InvalidParameterError("total must be non-negative")
    cuts = np.sort(rng.integers(0, total + 1, size=parts - 1))
    sizes = np.diff(np.concatenate(([0], cuts, [total])))
    return [int(s) for s in sizes]


def shuffled(rng: np.random.Generator, items: Iterable) -> list:
    """Return a new shuffled list of ``items``."""
    out = list(items)
    rng.shuffle(out)
    return out
