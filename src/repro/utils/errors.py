"""Exception hierarchy for the library.

All exceptions raised by the library derive from :class:`ReproError` so that
callers can catch every library-specific failure with a single ``except``
clause while still distinguishing the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by the library."""


class InvalidGraphError(ReproError):
    """The task graph or execution graph is malformed.

    Raised for cycles, dangling edges, non-positive task costs, duplicated
    task identifiers, or an execution graph whose processor lists do not
    partition the task set.
    """


class NotSeriesParallelError(InvalidGraphError):
    """Raised when a graph cannot be decomposed into series/parallel blocks."""


class InvalidModelError(ReproError):
    """An energy model was constructed with inconsistent parameters.

    Examples: an empty mode set in the Discrete model, ``s_min > s_max`` in
    the Incremental model, a non-positive speed increment, or a negative
    power exponent.
    """


class InfeasibleProblemError(ReproError):
    """The ``MinEnergy(G, D)`` instance admits no feasible speed assignment.

    This happens when even running every task at the maximum admissible
    speed cannot meet the deadline ``D`` (i.e. the critical path of the
    execution graph at maximum speed exceeds ``D``).
    """


class InvalidSolutionError(ReproError):
    """A speed assignment violates the constraints of its problem.

    Raised by the validation layer when a solution misses the deadline,
    breaks a precedence constraint, uses an inadmissible speed for its
    energy model, or executes a task at a non-positive speed.
    """


class SolverError(ReproError):
    """A numerical solver failed to converge or returned garbage.

    The message carries the backend name and the diagnostic returned by the
    underlying routine so that experiment logs remain actionable.
    """


class UnknownSolverError(InvalidModelError):
    """No registered solver backend matches the requested (model, method).

    Raised by :class:`repro.core.registry.SolverRegistry` when ``solve`` is
    called with a ``method`` that no backend of the problem's energy model
    declared (or with a model no package registered for — hence the
    :class:`InvalidModelError` parentage, which pre-registry callers catch).
    The message lists the methods that *are* registered so that a typo is a
    one-line fix.
    """


class InvalidOptionError(ReproError):
    """A solver option has the wrong type or an out-of-range value.

    Raised by the option validation of a registered backend, e.g. passing a
    string where an integer threshold is expected, or an LP backend name
    outside the declared choices.
    """


class UnknownOptionError(InvalidOptionError):
    """A solver option name is not declared by the selected backend.

    This replaces the pre-registry behaviour of silently swallowing
    misspelled ``**kwargs``: every option must appear in the backend's
    declared schema.  The message lists the valid option names.
    """


class UnknownBackendError(SolverError, InvalidOptionError):
    """No registered modeling backend matches the requested name.

    Raised by :class:`repro.modeling.backends.BackendRegistry` when a solve
    names a backend nobody registered, or one that does not consume the
    model's kind (an LP backend asked to run a convex program).  The message
    lists the backends that *are* registered and available.  The dual
    parentage keeps both historical contracts: direct solver calls catch
    backend failures as :class:`SolverError`, while registry-dispatched
    calls see a bad ``backend=`` option as an :class:`InvalidOptionError`.
    """


class BackendUnavailableError(SolverError):
    """A registered optional backend is not usable in this environment.

    Raised when resolving a probe-gated backend (``cvxpy``/``ecos``/``scs``)
    whose import probe failed — the package is simply not installed.  The
    message carries the probe's reason so ``repro backends`` and the skip
    messages of the parity suite can show exactly what is missing.
    """


class SchemaVersionError(ReproError):
    """A persisted document carries an unsupported ``schema_version``.

    Raised by the loaders of job records, shard dumps and wire envelopes
    when the stored version is newer than (or unintelligible to) this
    build, instead of failing obscurely mid-merge or mid-attach.  The
    message names the document, the found version and the supported one.
    """


class TransportError(ReproError):
    """A client transport failed to reach or understand its backend.

    Raised by the :mod:`repro.api` transports for connection failures,
    non-JSON responses, and server-side errors that do not map to a more
    specific library exception.
    """


class TransientTransportError(TransportError):
    """A transport failure that is safe and sensible to retry.

    Connection resets, refused connections, socket timeouts, truncated or
    garbled response bodies: the request may simply be re-issued (for
    idempotent verbs) and the operation usually succeeds on the next
    attempt.  The retry layer (:class:`repro.reliability.RetryPolicy`)
    treats exactly this class as retryable; every other
    :class:`TransportError` is terminal.

    ``maybe_executed`` records whether the failed request might have
    reached the backend before dying: ``True`` (the default) means a
    non-idempotent verb (job submission) must not be blindly retried,
    ``False`` (connection refused, client-side injected faults, explicit
    server-side load shedding) means the backend provably did not act and
    any verb may retry.
    """

    #: Whether the failed request may have been executed server-side.
    maybe_executed = True


class OverloadedError(TransientTransportError):
    """The server shed this request because its admission queue is full.

    Returned as a typed 503 body with a ``Retry-After`` header by an
    overloaded ``repro serve``; the client's retry policy honours
    ``retry_after`` (seconds) as the minimum backoff before the next
    attempt.  The request was rejected *before* any work happened, so
    retrying is always safe (``maybe_executed`` is ``False``).
    """

    maybe_executed = False

    def __init__(self, message: str, *, retry_after: "float | None" = None
                 ) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class ServerShutdownError(TransientTransportError):
    """The server is draining (SIGTERM) and refused or truncated the work.

    New requests during a graceful drain get it as a typed 503 body, and
    live ``/v1/jobs/<id>/events`` streams receive it as an in-band error
    line instead of a silently truncated stream.  It is transient — a
    drained server is usually being restarted — and pre-execution
    (``maybe_executed`` is ``False``), so retrying against the restarted
    server (or a peer) is safe.
    """

    maybe_executed = False

    def __init__(self, message: str, *, retry_after: "float | None" = None
                 ) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class InjectedFaultError(TransientTransportError):
    """A deterministic fault injected by an armed failpoint.

    Raised by :mod:`repro.reliability.failpoints` at the instrumented
    sites (``http.request``, ``jobstore.write``, ...) so the chaos suite
    can prove the retry/lease machinery masks transient failures without
    changing results.  Injected faults fire *before* the guarded effect
    executes, so ``maybe_executed`` is ``False`` and retries are safe.
    """

    maybe_executed = False


class CircuitOpenError(TransportError):
    """The client's circuit breaker is open: the backend looks dead.

    Raised by :class:`repro.api.HTTPTransport` *without touching the
    network* once enough consecutive connection failures have been
    recorded — a fleet of clients fails fast instead of each burning its
    full retry budget against a dead server.  Deliberately **not** a
    :class:`TransientTransportError`: the retry policy does not spin on
    it; the breaker itself re-probes after its cooldown.
    """


class DeadlineExceededError(ReproError):
    """A request's propagated deadline expired before it could complete.

    Deadlines travel client -> server in the ``X-Repro-Deadline`` header
    (seconds of budget remaining at send time); the server answers 504
    with this typed body when the budget is gone — before solving when
    the request arrives late, or mid-wait when the micro-batcher cannot
    serve it in time.  Not retryable: the caller's budget is spent.
    """


class UnknownJobError(TransportError):
    """No job with the requested id exists on the queried backend.

    The disk job store raises it for missing record files, the HTTP server
    returns it as a 404 with a typed error body, and the client transports
    re-raise it — so ``repro status <typo>`` fails identically against
    every transport.
    """


class AuthError(TransportError):
    """A request to a token-protected server failed authentication.

    Raised by the HTTP transport when ``repro serve --token`` (or
    ``REPRO_TOKEN``) is active and the request carried no or a wrong
    bearer token; the server returns it as a 401 with a typed error body.
    ``/v1/healthz`` is exempt so load balancers can probe without
    credentials.
    """


class JobStateError(TransportError):
    """A job operation is illegal in the job's current lifecycle state.

    Examples: transitioning a terminal (``done``/``cancelled``/``failed``)
    record, or fetching the results of a job that has not finished (the
    HTTP server's 409).
    """


class ShardError(ReproError):
    """A shard specification is malformed.

    Raised for out-of-range shard indices, a non-positive shard count, an
    unknown partitioning strategy, or an unparsable ``I/N`` spelling.
    """


class MergeError(ReproError):
    """A set of shard dumps cannot be merged into one sweep table.

    Base class of the specific merge failures below; also raised directly
    for malformed dump files, mismatched columns, inconsistent shard counts
    or mixed partitioning strategies.
    """


class FingerprintMismatchError(MergeError):
    """Shard dumps carry different grid fingerprints.

    The dumps were produced from different sweep grids (different axes,
    base seed, model or solver method) and merging them would silently mix
    incomparable rows.  The message lists each dump's fingerprint.
    """


class ShardGapError(MergeError):
    """The merged shard dumps do not cover the full sweep grid.

    One or more grid coordinates have no row in any dump — a shard leg is
    missing, was truncated, or was produced with a different partitioning.
    The message lists the uncovered coordinates.
    """


class ShardOverlapError(MergeError):
    """Shard dumps contain duplicate or foreign rows.

    A grid coordinate appears in more than one dump (the same shard was
    uploaded twice, or legs were partitioned inconsistently), or a dump
    contains rows whose coordinates are not part of the declared grid.
    """


class InvalidParameterError(ReproError, ValueError):
    """A caller-supplied parameter is out of range or malformed.

    The typed spelling of the library's parameter-validation failures
    (negative retry counts, empty worker ids, misaligned sequence
    lengths, ...).  Also a :class:`ValueError`, so callers validating
    inputs the stdlib way keep working.
    """


class InvalidArgumentTypeError(ReproError, TypeError):
    """A caller passed an argument of the wrong kind (unknown keyword,
    wrong container shape).  Also a :class:`TypeError` for stdlib-style
    handling."""


class ShutdownError(ReproError, RuntimeError):
    """An operation was attempted on a component that is already shut
    down (a closed :class:`~repro.service.SolverService` or
    micro-batcher).  Also a :class:`RuntimeError` for stdlib-style
    handling."""


class UnknownColumnError(ReproError, KeyError):
    """A table column name does not exist.  Also a :class:`KeyError` for
    stdlib-style handling."""


class PollTimeoutError(TransportError, TimeoutError):
    """A bounded wait for a job elapsed before the job finished.

    Raised by the polling paths (``client.wait``, ``JobHandle.results``)
    when their ``timeout`` budget runs out; the job itself keeps running.
    Also a :class:`TimeoutError` for stdlib-style handling.
    """


class FailpointSpecError(ReproError):
    """A failpoint arming spec could not be parsed.

    Raised by :func:`repro.reliability.failpoints.arm_spec` (and thus by
    ``REPRO_FAILPOINTS`` parsing) for unknown sites, unknown modes or
    malformed parameters.
    """


class WorkerCrashLoopError(TransportError):
    """A fleet worker's claim loop struck out.

    Raised by :class:`repro.fleet.FleetWorker` after ``max_strikes``
    consecutive claim-loop failures against a broken job store, so a
    supervisor sees a crash-looping worker instead of a silent drain.
    """
