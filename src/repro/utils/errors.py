"""Exception hierarchy for the library.

All exceptions raised by the library derive from :class:`ReproError` so that
callers can catch every library-specific failure with a single ``except``
clause while still distinguishing the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by the library."""


class InvalidGraphError(ReproError):
    """The task graph or execution graph is malformed.

    Raised for cycles, dangling edges, non-positive task costs, duplicated
    task identifiers, or an execution graph whose processor lists do not
    partition the task set.
    """


class InvalidModelError(ReproError):
    """An energy model was constructed with inconsistent parameters.

    Examples: an empty mode set in the Discrete model, ``s_min > s_max`` in
    the Incremental model, a non-positive speed increment, or a negative
    power exponent.
    """


class InfeasibleProblemError(ReproError):
    """The ``MinEnergy(G, D)`` instance admits no feasible speed assignment.

    This happens when even running every task at the maximum admissible
    speed cannot meet the deadline ``D`` (i.e. the critical path of the
    execution graph at maximum speed exceeds ``D``).
    """


class InvalidSolutionError(ReproError):
    """A speed assignment violates the constraints of its problem.

    Raised by the validation layer when a solution misses the deadline,
    breaks a precedence constraint, uses an inadmissible speed for its
    energy model, or executes a task at a non-positive speed.
    """


class SolverError(ReproError):
    """A numerical solver failed to converge or returned garbage.

    The message carries the backend name and the diagnostic returned by the
    underlying routine so that experiment logs remain actionable.
    """
