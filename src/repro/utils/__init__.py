"""Shared utilities for the energy-reclaiming scheduling library.

This subpackage contains infrastructure that every other subpackage relies
on: error types, numeric tolerances and comparisons, seeded random-number
helpers, and lightweight table formatting used by the experiment harness.
"""

from repro.utils.errors import (
    ReproError,
    InfeasibleProblemError,
    InvalidGraphError,
    InvalidModelError,
    InvalidSolutionError,
    SolverError,
)
from repro.utils.numerics import (
    DEFAULT_ABS_TOL,
    DEFAULT_REL_TOL,
    is_close,
    leq_with_tol,
    geq_with_tol,
    clamp,
    cube,
    cube_root,
    safe_div,
)
from repro.utils.rng import make_rng, spawn_rngs
from repro.utils.tables import Table, format_float

__all__ = [
    "ReproError",
    "InfeasibleProblemError",
    "InvalidGraphError",
    "InvalidModelError",
    "InvalidSolutionError",
    "SolverError",
    "DEFAULT_ABS_TOL",
    "DEFAULT_REL_TOL",
    "is_close",
    "leq_with_tol",
    "geq_with_tol",
    "clamp",
    "cube",
    "cube_root",
    "safe_div",
    "make_rng",
    "spawn_rngs",
    "Table",
    "format_float",
]
