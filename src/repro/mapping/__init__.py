"""Mapping / allocation substrate.

The paper assumes the mapping of the task graph onto the processors is
*given* ("say by an ordered list of tasks to execute on each processor").
This subpackage produces such mappings — list scheduling with critical-path
(bottom-level) priorities, round-robin and load-balancing partitioners —
and turns a mapping into the *execution graph* 𝒢 of the paper: the original
precedence edges augmented with an edge between consecutive tasks of the
same processor.
"""

from repro.mapping.execution_graph import ExecutionGraph, Mapping
from repro.mapping.list_scheduling import (
    list_schedule,
    bottom_levels,
    top_levels,
    round_robin_mapping,
    load_balance_mapping,
    single_processor_mapping,
    one_task_per_processor,
)

__all__ = [
    "ExecutionGraph",
    "Mapping",
    "list_schedule",
    "bottom_levels",
    "top_levels",
    "round_robin_mapping",
    "load_balance_mapping",
    "single_processor_mapping",
    "one_task_per_processor",
]
