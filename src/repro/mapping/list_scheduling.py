"""Producers of the "given" mapping the paper assumes.

The paper studies speed selection *after* the allocation has been fixed; to
evaluate the algorithms we therefore need realistic allocations.  This
module implements the classical producers:

* :func:`list_schedule` — priority-list scheduling onto ``p`` identical
  processors using bottom-level (critical-path) priorities, the standard
  makespan-oriented heuristic (a HEFT specialisation for identical
  processors and zero communication costs);
* :func:`round_robin_mapping` — tasks dealt to processors in topological
  order (a deliberately mediocre allocation, useful as a stress case);
* :func:`load_balance_mapping` — greedy work balancing ignoring precedence
  (models "pre-allocated for affinity/security reasons");
* :func:`single_processor_mapping` / :func:`one_task_per_processor` —
  degenerate extremes (a chain execution graph / the unchanged task graph).

All return an :class:`repro.mapping.execution_graph.ExecutionGraph`.
"""

from __future__ import annotations

import heapq

from repro.graphs.analysis import topological_order
from repro.graphs.taskgraph import TaskGraph
from repro.mapping.execution_graph import ExecutionGraph, Mapping
from repro.utils.errors import InvalidGraphError


def bottom_levels(graph: TaskGraph) -> dict[str, float]:
    """Bottom level of every task: longest work-weighted path starting at it."""
    order = topological_order(graph)
    bl: dict[str, float] = {}
    for n in reversed(order):
        succ = graph.successors(n)
        bl[n] = graph.work(n) + max((bl[s] for s in succ), default=0.0)
    return bl


def top_levels(graph: TaskGraph) -> dict[str, float]:
    """Top level of every task: longest work-weighted path ending just before it."""
    order = topological_order(graph)
    tl: dict[str, float] = {}
    for n in order:
        preds = graph.predecessors(n)
        tl[n] = max((tl[p] + graph.work(p) for p in preds), default=0.0)
    return tl


def list_schedule(graph: TaskGraph, n_processors: int, *,
                  reference_speed: float = 1.0) -> ExecutionGraph:
    """Bottom-level priority list scheduling onto identical processors.

    Tasks become ready when all predecessors have been scheduled; among the
    ready tasks the one with the largest bottom level is placed on the
    processor that becomes idle first.  Execution times use
    ``work / reference_speed`` (the mapping, not the speeds, is what we
    keep — the speed scaling is exactly what the paper's algorithms decide
    afterwards).

    Returns the resulting :class:`ExecutionGraph`.
    """
    if n_processors < 1:
        raise InvalidGraphError("need at least one processor")
    if reference_speed <= 0:
        raise InvalidGraphError("reference_speed must be strictly positive")
    graph.validate()
    bl = bottom_levels(graph)
    indeg = {n: graph.in_degree(n) for n in graph.task_names()}
    # ready heap: (-bottom_level, name) for deterministic largest-first order
    ready = [(-bl[n], n) for n in graph.task_names() if indeg[n] == 0]
    heapq.heapify(ready)
    # processor heap: (available_time, processor_index)
    processors = [(0.0, p) for p in range(n_processors)]
    heapq.heapify(processors)
    finish_time: dict[str, float] = {}
    lists: Mapping = {p: [] for p in range(n_processors)}
    scheduled = 0
    pending_successor_release: dict[str, float] = {}

    while ready:
        _prio, task = heapq.heappop(ready)
        # earliest start: predecessors' finish times
        pred_ready = max((finish_time[p] for p in graph.predecessors(task)), default=0.0)
        avail, proc = heapq.heappop(processors)
        start = max(avail, pred_ready)
        end = start + graph.work(task) / reference_speed
        finish_time[task] = end
        lists[proc].append(task)
        heapq.heappush(processors, (end, proc))
        scheduled += 1
        for succ in graph.successors(task):
            indeg[succ] -= 1
            if indeg[succ] == 0:
                heapq.heappush(ready, (-bl[succ], succ))
        pending_successor_release[task] = end

    if scheduled != graph.n_tasks:
        raise InvalidGraphError("list scheduling did not schedule every task (cycle?)")
    lists = {p: tasks for p, tasks in lists.items() if tasks}
    if not lists:
        lists = {0: []}
    return ExecutionGraph(task_graph=graph, processor_lists=lists)


def round_robin_mapping(graph: TaskGraph, n_processors: int) -> ExecutionGraph:
    """Deal tasks to processors in topological order, round-robin."""
    if n_processors < 1:
        raise InvalidGraphError("need at least one processor")
    order = topological_order(graph)
    lists: Mapping = {p: [] for p in range(n_processors)}
    for i, task in enumerate(order):
        lists[i % n_processors].append(task)
    lists = {p: tasks for p, tasks in lists.items() if tasks}
    return ExecutionGraph(task_graph=graph, processor_lists=lists)


def load_balance_mapping(graph: TaskGraph, n_processors: int) -> ExecutionGraph:
    """Greedy work balancing: each task goes to the least-loaded processor.

    Tasks are visited in topological order (so the per-processor order stays
    compatible with the precedences); the processor with the smallest total
    assigned work receives the next task.  This models allocations chosen
    for load or affinity reasons rather than makespan.
    """
    if n_processors < 1:
        raise InvalidGraphError("need at least one processor")
    order = topological_order(graph)
    loads = [(0.0, p) for p in range(n_processors)]
    heapq.heapify(loads)
    lists: Mapping = {p: [] for p in range(n_processors)}
    for task in order:
        load, proc = heapq.heappop(loads)
        lists[proc].append(task)
        heapq.heappush(loads, (load + graph.work(task), proc))
    lists = {p: tasks for p, tasks in lists.items() if tasks}
    return ExecutionGraph(task_graph=graph, processor_lists=lists)


def single_processor_mapping(graph: TaskGraph) -> ExecutionGraph:
    """Everything on one processor, in topological order (a chain)."""
    order = topological_order(graph)
    return ExecutionGraph(task_graph=graph, processor_lists={0: order})


def one_task_per_processor(graph: TaskGraph) -> ExecutionGraph:
    """One task per processor: the execution graph equals the task graph."""
    return ExecutionGraph.trivial(graph)
