"""Execution graphs: a task graph plus a fixed processor mapping.

Given a mapping (an ordered list of tasks per processor), the *execution
graph* 𝒢 = (V, ℰ) of the paper augments the application edges ``E`` with an
edge between every pair of tasks executed consecutively on the same
processor.  All solvers operate on this combined graph: the mapping itself
is never revisited (that is the paper's central assumption).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.graphs.analysis import topological_order
from repro.graphs.taskgraph import TaskGraph
from repro.utils.errors import InvalidGraphError

#: A mapping is an ordered list of task names per processor index.
Mapping = dict[int, list[str]]


@dataclass
class ExecutionGraph:
    """A task graph together with an ordered per-processor task list.

    Parameters
    ----------
    task_graph:
        The application DAG ``G``.
    processor_lists:
        For each processor (keyed by an integer id), the ordered list of
        tasks it executes.  Every task must appear on exactly one processor.

    Raises
    ------
    InvalidGraphError
        If the lists do not partition the task set, or if the induced
        execution graph contains a cycle (i.e. the per-processor orders are
        incompatible with the precedence constraints).
    """

    task_graph: TaskGraph
    processor_lists: Mapping
    _combined: TaskGraph | None = field(default=None, init=False, repr=False)

    def __post_init__(self) -> None:
        self.task_graph.validate()
        seen: dict[str, int] = {}
        for proc, tasks in self.processor_lists.items():
            for t in tasks:
                if t not in self.task_graph:
                    raise InvalidGraphError(
                        f"processor {proc} lists unknown task {t!r}"
                    )
                if t in seen:
                    raise InvalidGraphError(
                        f"task {t!r} appears on processors {seen[t]} and {proc}"
                    )
                seen[t] = proc
        missing = set(self.task_graph.task_names()) - set(seen)
        if missing:
            raise InvalidGraphError(
                f"tasks not mapped to any processor: {sorted(missing)}"
            )
        combined = self._build_combined()
        if not combined.is_dag():
            raise InvalidGraphError(
                "the per-processor orders are incompatible with the precedence "
                "constraints (the execution graph contains a cycle)"
            )
        self._combined = combined

    # ------------------------------------------------------------------ #
    @property
    def n_processors(self) -> int:
        """Number of processors used by the mapping."""
        return len(self.processor_lists)

    def processor_of(self, task: str) -> int:
        """Processor executing ``task``."""
        for proc, tasks in self.processor_lists.items():
            if task in tasks:
                return proc
        raise InvalidGraphError(f"task {task!r} is not mapped")

    def processor_work(self) -> dict[int, float]:
        """Total work assigned to each processor."""
        return {
            proc: sum(self.task_graph.work(t) for t in tasks)
            for proc, tasks in self.processor_lists.items()
        }

    def _build_combined(self) -> TaskGraph:
        combined = self.task_graph.copy(name=f"{self.task_graph.name}-exec")
        for tasks in self.processor_lists.values():
            for a, b in zip(tasks, tasks[1:]):
                if not combined.has_edge(a, b):
                    combined.add_edge(a, b)
        return combined

    def combined_graph(self) -> TaskGraph:
        """The execution graph 𝒢 (application edges plus processor edges)."""
        assert self._combined is not None
        return self._combined

    def processor_edges(self) -> list[tuple[str, str]]:
        """The edges added by the mapping (consecutive same-processor tasks)."""
        out: list[tuple[str, str]] = []
        for tasks in self.processor_lists.values():
            for a, b in zip(tasks, tasks[1:]):
                if not self.task_graph.has_edge(a, b):
                    out.append((a, b))
        return out

    # ------------------------------------------------------------------ #
    @classmethod
    def from_processor_assignment(cls, task_graph: TaskGraph,
                                  assignment: dict[str, int],
                                  *, order: Sequence[str] | None = None) -> "ExecutionGraph":
        """Build an execution graph from a ``task -> processor`` assignment.

        Tasks of each processor are ordered by the given global ``order``
        (a topological order of the task graph by default), which guarantees
        the execution graph is acyclic.
        """
        missing = set(task_graph.task_names()) - set(assignment)
        if missing:
            raise InvalidGraphError(f"assignment is missing tasks: {sorted(missing)}")
        if order is None:
            order = topological_order(task_graph)
        position = {t: i for i, t in enumerate(order)}
        lists: Mapping = {}
        for t in sorted(assignment, key=lambda t: position[t]):
            lists.setdefault(assignment[t], []).append(t)
        return cls(task_graph=task_graph, processor_lists=lists)

    @classmethod
    def trivial(cls, task_graph: TaskGraph) -> "ExecutionGraph":
        """One task per processor: the execution graph equals the task graph."""
        lists: Mapping = {i: [t] for i, t in enumerate(task_graph.task_names())}
        return cls(task_graph=task_graph, processor_lists=lists)

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            f"ExecutionGraph(graph={self.task_graph.name!r}, "
            f"processors={self.n_processors}, tasks={self.task_graph.n_tasks})"
        )
