"""Core task-graph data structures.

The paper's application model is a directed acyclic graph ``G = (V, E)``
whose vertices are tasks ``T_1 .. T_n`` with strictly positive costs
``w_i`` (the amount of work; at speed ``s`` the task runs for ``w_i / s``
time units).  :class:`TaskGraph` is the single container used throughout the
library for both the application graph ``G`` and the execution graph 𝒢
obtained after mapping (the latter simply carries extra "processor" edges
and is represented by :class:`repro.mapping.execution_graph.ExecutionGraph`,
which wraps a ``TaskGraph``).

The implementation deliberately avoids depending on :mod:`networkx` for the
core container (adjacency is kept in plain dictionaries) so that the hot
paths of the solvers work on simple, predictable structures; conversion
helpers to/from networkx are provided for interoperability and for reusing
its generators in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

import networkx as nx

from repro.utils.errors import InvalidGraphError


@dataclass(frozen=True)
class Task:
    """A single task of the application graph.

    Attributes
    ----------
    name:
        Unique identifier within its graph.
    work:
        Cost ``w_i`` of the task, in work units (strictly positive).  At
        speed ``s`` the execution time is ``work / s`` and the consumed
        dynamic energy is ``s**3 * (work / s) = work * s**2`` under the cubic
        power law.
    """

    name: str
    work: float

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise InvalidGraphError(f"task name must be a non-empty string, got {self.name!r}")
        if not (self.work > 0) or not (self.work < float("inf")):
            raise InvalidGraphError(
                f"task {self.name!r} must have a finite, strictly positive work, got {self.work}"
            )


class TaskGraph:
    """A directed acyclic graph of :class:`Task` objects.

    The class maintains predecessor and successor adjacency maps and checks
    acyclicity lazily (on :meth:`validate` and on the analysis functions that
    need a topological order).

    Parameters
    ----------
    tasks:
        Iterable of :class:`Task` (or ``(name, work)`` pairs).
    edges:
        Iterable of ``(source_name, target_name)`` precedence pairs meaning
        *source must complete before target starts*.
    name:
        Optional display name of the graph.
    """

    def __init__(
        self,
        tasks: Iterable[Task | tuple[str, float]] = (),
        edges: Iterable[tuple[str, str]] = (),
        *,
        name: str = "taskgraph",
    ) -> None:
        self.name = name
        self._tasks: dict[str, Task] = {}
        self._succ: dict[str, set[str]] = {}
        self._pred: dict[str, set[str]] = {}
        for t in tasks:
            if isinstance(t, tuple):
                t = Task(t[0], float(t[1]))
            self.add_task(t)
        for u, v in edges:
            self.add_edge(u, v)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add_task(self, task: Task | str, work: float | None = None) -> Task:
        """Add a task; returns the stored :class:`Task`.

        Accepts either a :class:`Task` instance or a ``name`` plus ``work``.
        """
        if isinstance(task, str):
            if work is None:
                raise InvalidGraphError("work must be provided when adding a task by name")
            task = Task(task, float(work))
        if task.name in self._tasks:
            raise InvalidGraphError(f"duplicate task name {task.name!r}")
        self._tasks[task.name] = task
        self._succ[task.name] = set()
        self._pred[task.name] = set()
        return task

    def add_edge(self, source: str, target: str) -> None:
        """Add the precedence edge ``source -> target``."""
        if source not in self._tasks:
            raise InvalidGraphError(f"unknown source task {source!r}")
        if target not in self._tasks:
            raise InvalidGraphError(f"unknown target task {target!r}")
        if source == target:
            raise InvalidGraphError(f"self-loop on task {source!r}")
        self._succ[source].add(target)
        self._pred[target].add(source)

    def remove_edge(self, source: str, target: str) -> None:
        """Remove the precedence edge ``source -> target`` (must exist)."""
        try:
            self._succ[source].remove(target)
            self._pred[target].remove(source)
        except KeyError as exc:
            raise InvalidGraphError(f"edge {source!r} -> {target!r} does not exist") from exc

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @property
    def n_tasks(self) -> int:
        """Number of tasks."""
        return len(self._tasks)

    @property
    def n_edges(self) -> int:
        """Number of precedence edges."""
        return sum(len(s) for s in self._succ.values())

    def tasks(self) -> list[Task]:
        """All tasks, in insertion order."""
        return list(self._tasks.values())

    def task_names(self) -> list[str]:
        """All task names, in insertion order."""
        return list(self._tasks.keys())

    def task(self, name: str) -> Task:
        """Return the task with the given name."""
        try:
            return self._tasks[name]
        except KeyError as exc:
            raise InvalidGraphError(f"unknown task {name!r}") from exc

    def work(self, name: str) -> float:
        """Return the work ``w_i`` of a task."""
        return self.task(name).work

    def works(self) -> dict[str, float]:
        """Mapping of task name to work."""
        return {name: t.work for name, t in self._tasks.items()}

    def total_work(self) -> float:
        """Sum of all task works."""
        return sum(t.work for t in self._tasks.values())

    def __contains__(self, name: str) -> bool:
        return name in self._tasks

    def __iter__(self) -> Iterator[str]:
        return iter(self._tasks)

    def __len__(self) -> int:
        return len(self._tasks)

    def has_edge(self, source: str, target: str) -> bool:
        """Whether the precedence edge ``source -> target`` exists."""
        return target in self._succ.get(source, set())

    def edges(self) -> list[tuple[str, str]]:
        """All edges as ``(source, target)`` pairs (deterministic order)."""
        out: list[tuple[str, str]] = []
        for u in self._tasks:
            for v in sorted(self._succ[u]):
                out.append((u, v))
        return out

    def successors(self, name: str) -> list[str]:
        """Immediate successors of a task (sorted for determinism)."""
        if name not in self._tasks:
            raise InvalidGraphError(f"unknown task {name!r}")
        return sorted(self._succ[name])

    def predecessors(self, name: str) -> list[str]:
        """Immediate predecessors of a task (sorted for determinism)."""
        if name not in self._tasks:
            raise InvalidGraphError(f"unknown task {name!r}")
        return sorted(self._pred[name])

    def sources(self) -> list[str]:
        """Tasks with no predecessor, in insertion order."""
        return [n for n in self._tasks if not self._pred[n]]

    def sinks(self) -> list[str]:
        """Tasks with no successor, in insertion order."""
        return [n for n in self._tasks if not self._succ[n]]

    def in_degree(self, name: str) -> int:
        """Number of immediate predecessors."""
        return len(self._pred[name])

    def out_degree(self, name: str) -> int:
        """Number of immediate successors."""
        return len(self._succ[name])

    # ------------------------------------------------------------------ #
    # validation / transformation
    # ------------------------------------------------------------------ #
    def validate(self) -> None:
        """Raise :class:`InvalidGraphError` if the graph is not a DAG."""
        order = self._kahn_order()
        if len(order) != len(self._tasks):
            raise InvalidGraphError(
                f"graph {self.name!r} contains a cycle "
                f"({len(self._tasks) - len(order)} tasks unreachable in topological sort)"
            )

    def is_dag(self) -> bool:
        """Whether the graph is acyclic."""
        return len(self._kahn_order()) == len(self._tasks)

    def _kahn_order(self) -> list[str]:
        """Kahn's algorithm; returns a topological order of the acyclic part."""
        indeg = {n: len(self._pred[n]) for n in self._tasks}
        ready = [n for n in self._tasks if indeg[n] == 0]
        order: list[str] = []
        while ready:
            # Pop from the end (stack order) -- deterministic given insertion
            # order, and avoids O(n) pops from the front.
            n = ready.pop()
            order.append(n)
            for m in sorted(self._succ[n]):
                indeg[m] -= 1
                if indeg[m] == 0:
                    ready.append(m)
        return order

    def copy(self, *, name: str | None = None) -> "TaskGraph":
        """Deep copy of the graph (tasks are immutable, so shared)."""
        g = TaskGraph(name=name or self.name)
        for t in self._tasks.values():
            g.add_task(t)
        for u, v in self.edges():
            g.add_edge(u, v)
        return g

    def with_scaled_work(self, factor: float) -> "TaskGraph":
        """Return a copy whose task works are multiplied by ``factor``."""
        if factor <= 0:
            raise InvalidGraphError("scaling factor must be strictly positive")
        g = TaskGraph(name=self.name)
        for t in self._tasks.values():
            g.add_task(Task(t.name, t.work * factor))
        for u, v in self.edges():
            g.add_edge(u, v)
        return g

    def subgraph(self, names: Iterable[str], *, name: str | None = None) -> "TaskGraph":
        """Induced subgraph on the given task names."""
        keep = set(names)
        unknown = keep - set(self._tasks)
        if unknown:
            raise InvalidGraphError(f"unknown tasks in subgraph request: {sorted(unknown)}")
        g = TaskGraph(name=name or f"{self.name}-sub")
        for n in self._tasks:
            if n in keep:
                g.add_task(self._tasks[n])
        for u, v in self.edges():
            if u in keep and v in keep:
                g.add_edge(u, v)
        return g

    # ------------------------------------------------------------------ #
    # interoperability
    # ------------------------------------------------------------------ #
    def to_networkx(self) -> nx.DiGraph:
        """Convert to a :class:`networkx.DiGraph` with ``work`` node attributes."""
        g = nx.DiGraph(name=self.name)
        for t in self._tasks.values():
            g.add_node(t.name, work=t.work)
        g.add_edges_from(self.edges())
        return g

    @classmethod
    def from_networkx(cls, g: nx.DiGraph, *, name: str | None = None,
                      default_work: float = 1.0) -> "TaskGraph":
        """Build a :class:`TaskGraph` from a networkx DiGraph.

        Node attribute ``work`` is used when present, otherwise
        ``default_work``.  Node identifiers are converted to strings.
        """
        tg = cls(name=name or (g.name or "taskgraph"))
        for node, data in g.nodes(data=True):
            tg.add_task(Task(str(node), float(data.get("work", default_work))))
        for u, v in g.edges():
            tg.add_edge(str(u), str(v))
        return tg

    @classmethod
    def from_works(cls, works: Mapping[str, float],
                   edges: Iterable[tuple[str, str]] = (),
                   *, name: str = "taskgraph") -> "TaskGraph":
        """Build a graph from a ``{name: work}`` mapping and an edge list."""
        return cls(tasks=[Task(n, float(w)) for n, w in works.items()],
                   edges=edges, name=name)

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            f"TaskGraph(name={self.name!r}, n_tasks={self.n_tasks}, "
            f"n_edges={self.n_edges})"
        )
