"""Core task-graph data structures.

The paper's application model is a directed acyclic graph ``G = (V, E)``
whose vertices are tasks ``T_1 .. T_n`` with strictly positive costs
``w_i`` (the amount of work; at speed ``s`` the task runs for ``w_i / s``
time units).  :class:`TaskGraph` is the single container used throughout the
library for both the application graph ``G`` and the execution graph 𝒢
obtained after mapping (the latter simply carries extra "processor" edges
and is represented by :class:`repro.mapping.execution_graph.ExecutionGraph`,
which wraps a ``TaskGraph``).

The implementation deliberately avoids depending on :mod:`networkx` for the
core container (adjacency is kept in plain dictionaries) so that the hot
paths of the solvers work on simple, predictable structures; conversion
helpers to/from networkx are provided for interoperability and for reusing
its generators in tests.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from functools import cached_property
from typing import Iterable, Iterator, Mapping

import networkx as nx
import numpy as np

from repro.utils.errors import InvalidGraphError


@dataclass(frozen=True)
class GraphIndex:
    """Immutable integer-indexed view of a :class:`TaskGraph`.

    Task ``i`` is the ``i``-th task in insertion order.  Adjacency is stored
    in CSR (compressed sparse row) form: the predecessors of task ``i`` are
    ``pred_idx[pred_ptr[i]:pred_ptr[i + 1]]`` and likewise for successors.
    The topological order and the 0-based level of every task are computed
    once and cached with the index; all arrays are read-only NumPy arrays so
    the view can be shared freely between solvers.

    The view is a snapshot: :meth:`TaskGraph.index` invalidates its cached
    instance whenever the graph mutates, so holders of a stale ``GraphIndex``
    keep a consistent (if outdated) picture rather than a corrupt one.
    """

    names: tuple[str, ...]
    index_of: Mapping[str, int]
    works: np.ndarray
    pred_ptr: np.ndarray
    pred_idx: np.ndarray
    succ_ptr: np.ndarray
    succ_idx: np.ndarray
    topo_order: np.ndarray
    level: np.ndarray
    #: nodes sorted by (level, index); ``level_ptr[L]:level_ptr[L+1]`` slices
    #: the nodes of level ``L``.
    order_by_level: np.ndarray
    level_ptr: np.ndarray
    #: edges sorted by the level of their target; ``edge_level_ptr[L]`` points
    #: at the first edge whose target sits at level ``L``.
    edge_src: np.ndarray
    edge_dst: np.ndarray
    edge_level_ptr: np.ndarray

    @property
    def n_tasks(self) -> int:
        return len(self.names)

    @property
    def n_edges(self) -> int:
        return int(self.succ_idx.shape[0])

    @property
    def n_levels(self) -> int:
        return int(self.level.max()) + 1 if len(self.names) else 0

    def predecessors_of(self, i: int) -> np.ndarray:
        """Predecessor indices of task ``i``."""
        return self.pred_idx[self.pred_ptr[i]:self.pred_ptr[i + 1]]

    def successors_of(self, i: int) -> np.ndarray:
        """Successor indices of task ``i``."""
        return self.succ_idx[self.succ_ptr[i]:self.succ_ptr[i + 1]]

    @cached_property
    def structure_hash(self) -> str:
        """Content hash of the graph structure and weights (hex SHA-256).

        Covers the task names (in index order), the work vector and the CSR
        successor arrays — i.e. exactly the data the solvers read — but not
        the display name, so two identically-shaped graphs hash equally.
        Because a :class:`GraphIndex` is an immutable snapshot invalidated on
        every mutation, the hash can be cached on the index and used as the
        graph component of a solve-result cache key (see
        :meth:`repro.core.problem.MinEnergyProblem.cache_key`).
        """
        digest = hashlib.sha256()
        digest.update(str(len(self.names)).encode("utf-8"))
        digest.update(b"\x00".join(name.encode("utf-8") for name in self.names))
        digest.update(self.works.tobytes())
        digest.update(self.succ_ptr.tobytes())
        digest.update(self.succ_idx.tobytes())
        return digest.hexdigest()

    @cached_property
    def topo_position(self) -> np.ndarray:
        """Position of every task in the topological order (its inverse)."""
        position = np.empty(self.n_tasks, dtype=np.int64)
        position[self.topo_order] = np.arange(self.n_tasks, dtype=np.int64)
        position.setflags(write=False)
        return position

    def asap_update(self, durations: np.ndarray, start: np.ndarray,
                    finish: np.ndarray, changed: int,
                    max_visits: int | None = None) -> list[int] | None:
        """Propagate one task's duration change through its descendant cone.

        Incrementally repairs ASAP ``start``/``finish`` arrays (as produced
        by :func:`repro.core.solution.asap_times` for ``durations``) **in
        place** after ``durations[changed]`` was modified, visiting only
        the affected cone: the changed task and those descendants whose
        times actually move.  Nodes are processed in topological order (a
        heap over cached topo positions), and propagation stops early on
        every branch where the recomputed times equal the stored ones — a
        mode flip near the sink of a 10k-task graph touches a handful of
        nodes instead of re-running the full O(n + m) pass.

        The recomputed values are bit-identical to a full
        :func:`~repro.core.solution.asap_times` recompute (the update
        performs the same max/add operations on the same operands), so the
        routine also *reverts* exactly: restoring ``durations[changed]``
        and calling it again reproduces the original arrays.  This is what
        lets the greedy reclamation loop probe a move in O(cone) and undo
        it at the same cost.

        Parameters
        ----------
        durations:
            Current duration vector (index order), already holding the new
            value at ``changed``.
        start, finish:
            Writable ASAP time arrays to repair in place; they must be
            consistent with the *previous* duration vector.
        changed:
            Index of the task whose duration changed (works for increases
            and decreases alike).
        max_visits:
            Optional cap on processed cone nodes.  When the cone exceeds
            it, the update aborts and returns ``None`` — the arrays are
            then *partially updated* and the caller must rebuild them with
            a full (vectorised) :func:`asap_times` pass, which for cones
            of that size costs about the same anyway.

        Returns
        -------
        list[int] | None
            Indices whose ``(start, finish)`` entries changed, in the
            order they were processed (empty when the change was a no-op);
            ``None`` when ``max_visits`` was exceeded.
        """
        import heapq

        pred_ptr = self.pred_ptr
        pred_idx = self.pred_idx
        succ_ptr = self.succ_ptr
        succ_idx = self.succ_idx
        position = self.topo_position
        heap: list[tuple[int, int]] = [(int(position[changed]), changed)]
        pending = {changed}
        touched: list[int] = []
        visits = 0
        while heap:
            _, u = heapq.heappop(heap)
            pending.discard(u)
            visits += 1
            if max_visits is not None and visits > max_visits:
                return None
            new_start = 0.0
            for p in pred_idx[pred_ptr[u]:pred_ptr[u + 1]]:
                fp = finish[p]
                if fp > new_start:
                    new_start = fp
            new_finish = new_start + durations[u]
            if new_start == start[u] and new_finish == finish[u]:
                continue
            start[u] = new_start
            finish[u] = new_finish
            touched.append(int(u))
            for v in succ_idx[succ_ptr[u]:succ_ptr[u + 1]]:
                if v not in pending:
                    pending.add(v)
                    heapq.heappush(heap, (int(position[v]), int(v)))
        return touched

    def vector_of(self, mapping: Mapping[str, float]) -> np.ndarray:
        """Dense float vector of a per-task mapping, in index order."""
        return np.fromiter((mapping[name] for name in self.names),
                           dtype=float, count=len(self.names))

    def mapping_of(self, vector: np.ndarray) -> dict[str, float]:
        """Per-task dict view of a dense vector, in index order."""
        return {name: float(vector[i]) for i, name in enumerate(self.names)}


def _build_index(graph: "TaskGraph") -> GraphIndex:
    """Construct the CSR index, topological order and levels of a graph."""
    names = tuple(graph._tasks)
    n = len(names)
    index_of = {name: i for i, name in enumerate(names)}
    works = np.fromiter((t.work for t in graph._tasks.values()),
                        dtype=float, count=n)

    pred_ptr = np.zeros(n + 1, dtype=np.int64)
    succ_ptr = np.zeros(n + 1, dtype=np.int64)
    for i, name in enumerate(names):
        pred_ptr[i + 1] = pred_ptr[i] + len(graph._pred[name])
        succ_ptr[i + 1] = succ_ptr[i] + len(graph._succ[name])
    pred_idx = np.empty(pred_ptr[-1], dtype=np.int64)
    succ_idx = np.empty(succ_ptr[-1], dtype=np.int64)
    for i, name in enumerate(names):
        preds = sorted(index_of[p] for p in graph._pred[name])
        succs = sorted(index_of[s] for s in graph._succ[name])
        pred_idx[pred_ptr[i]:pred_ptr[i + 1]] = preds
        succ_idx[succ_ptr[i]:succ_ptr[i + 1]] = succs

    # Kahn topological order (FIFO over insertion order) and levels in one
    # pass; a cycle leaves the order short, which consumers detect via -1
    # levels -- but we raise here so every cached index is a valid DAG view.
    indeg = (pred_ptr[1:] - pred_ptr[:-1]).copy()
    order = np.empty(n, dtype=np.int64)
    level = np.zeros(n, dtype=np.int64)
    head = 0
    tail = 0
    for i in range(n):
        if indeg[i] == 0:
            order[tail] = i
            tail += 1
    while head < tail:
        u = order[head]
        head += 1
        for v in succ_idx[succ_ptr[u]:succ_ptr[u + 1]]:
            indeg[v] -= 1
            lv = level[u] + 1
            if lv > level[v]:
                level[v] = lv
            if indeg[v] == 0:
                order[tail] = v
                tail += 1
    if tail != n:
        raise InvalidGraphError(f"graph {graph.name!r} contains a cycle")

    n_levels = int(level.max()) + 1 if n else 0
    order_by_level = np.argsort(level, kind="stable").astype(np.int64)
    level_counts = np.bincount(level, minlength=max(n_levels, 1))
    level_ptr = np.zeros(n_levels + 1, dtype=np.int64)
    np.cumsum(level_counts[:n_levels], out=level_ptr[1:])

    m = int(succ_ptr[-1])
    edge_src = np.repeat(np.arange(n, dtype=np.int64),
                         succ_ptr[1:] - succ_ptr[:-1])
    edge_dst = succ_idx.copy()
    by_dst_level = np.argsort(level[edge_dst], kind="stable")
    edge_src = edge_src[by_dst_level]
    edge_dst = edge_dst[by_dst_level]
    edge_level_ptr = np.zeros(n_levels + 1, dtype=np.int64)
    if m:
        edge_counts = np.bincount(level[edge_dst], minlength=n_levels)
        np.cumsum(edge_counts, out=edge_level_ptr[1:])

    arrays = (works, pred_ptr, pred_idx, succ_ptr, succ_idx, order, level,
              order_by_level, level_ptr, edge_src, edge_dst, edge_level_ptr)
    for arr in arrays:
        arr.setflags(write=False)
    return GraphIndex(
        names=names, index_of=index_of, works=works,
        pred_ptr=pred_ptr, pred_idx=pred_idx,
        succ_ptr=succ_ptr, succ_idx=succ_idx,
        topo_order=order, level=level,
        order_by_level=order_by_level, level_ptr=level_ptr,
        edge_src=edge_src, edge_dst=edge_dst, edge_level_ptr=edge_level_ptr,
    )


@dataclass(frozen=True)
class Task:
    """A single task of the application graph.

    Attributes
    ----------
    name:
        Unique identifier within its graph.
    work:
        Cost ``w_i`` of the task, in work units (strictly positive).  At
        speed ``s`` the execution time is ``work / s`` and the consumed
        dynamic energy is ``s**3 * (work / s) = work * s**2`` under the cubic
        power law.
    """

    name: str
    work: float

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise InvalidGraphError(f"task name must be a non-empty string, got {self.name!r}")
        if not (self.work > 0) or not (self.work < float("inf")):
            raise InvalidGraphError(
                f"task {self.name!r} must have a finite, strictly positive work, got {self.work}"
            )


class TaskGraph:
    """A directed acyclic graph of :class:`Task` objects.

    The class maintains predecessor and successor adjacency maps and checks
    acyclicity lazily (on :meth:`validate` and on the analysis functions that
    need a topological order).

    Parameters
    ----------
    tasks:
        Iterable of :class:`Task` (or ``(name, work)`` pairs).
    edges:
        Iterable of ``(source_name, target_name)`` precedence pairs meaning
        *source must complete before target starts*.
    name:
        Optional display name of the graph.
    """

    def __init__(
        self,
        tasks: Iterable[Task | tuple[str, float]] = (),
        edges: Iterable[tuple[str, str]] = (),
        *,
        name: str = "taskgraph",
    ) -> None:
        self.name = name
        self._tasks: dict[str, Task] = {}
        self._succ: dict[str, set[str]] = {}
        self._pred: dict[str, set[str]] = {}
        self._index: GraphIndex | None = None
        for t in tasks:
            if isinstance(t, tuple):
                t = Task(t[0], float(t[1]))
            self.add_task(t)
        for u, v in edges:
            self.add_edge(u, v)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add_task(self, task: Task | str, work: float | None = None) -> Task:
        """Add a task; returns the stored :class:`Task`.

        Accepts either a :class:`Task` instance or a ``name`` plus ``work``.
        """
        if isinstance(task, str):
            if work is None:
                raise InvalidGraphError("work must be provided when adding a task by name")
            task = Task(task, float(work))
        if task.name in self._tasks:
            raise InvalidGraphError(f"duplicate task name {task.name!r}")
        self._tasks[task.name] = task
        self._succ[task.name] = set()
        self._pred[task.name] = set()
        self._index = None
        return task

    def add_edge(self, source: str, target: str) -> None:
        """Add the precedence edge ``source -> target``."""
        if source not in self._tasks:
            raise InvalidGraphError(f"unknown source task {source!r}")
        if target not in self._tasks:
            raise InvalidGraphError(f"unknown target task {target!r}")
        if source == target:
            raise InvalidGraphError(f"self-loop on task {source!r}")
        self._succ[source].add(target)
        self._pred[target].add(source)
        self._index = None

    def remove_edge(self, source: str, target: str) -> None:
        """Remove the precedence edge ``source -> target`` (must exist)."""
        try:
            self._succ[source].remove(target)
            self._pred[target].remove(source)
        except KeyError as exc:
            raise InvalidGraphError(f"edge {source!r} -> {target!r} does not exist") from exc
        self._index = None

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @property
    def n_tasks(self) -> int:
        """Number of tasks."""
        return len(self._tasks)

    @property
    def n_edges(self) -> int:
        """Number of precedence edges."""
        return sum(len(s) for s in self._succ.values())

    def tasks(self) -> list[Task]:
        """All tasks, in insertion order."""
        return list(self._tasks.values())

    def task_names(self) -> list[str]:
        """All task names, in insertion order."""
        return list(self._tasks.keys())

    def task(self, name: str) -> Task:
        """Return the task with the given name."""
        try:
            return self._tasks[name]
        except KeyError as exc:
            raise InvalidGraphError(f"unknown task {name!r}") from exc

    def work(self, name: str) -> float:
        """Return the work ``w_i`` of a task."""
        return self.task(name).work

    def works(self) -> dict[str, float]:
        """Mapping of task name to work."""
        return {name: t.work for name, t in self._tasks.items()}

    def total_work(self) -> float:
        """Sum of all task works."""
        return sum(t.work for t in self._tasks.values())

    def __contains__(self, name: str) -> bool:
        return name in self._tasks

    def __iter__(self) -> Iterator[str]:
        return iter(self._tasks)

    def __len__(self) -> int:
        return len(self._tasks)

    def has_edge(self, source: str, target: str) -> bool:
        """Whether the precedence edge ``source -> target`` exists."""
        return target in self._succ.get(source, set())

    def edges(self) -> list[tuple[str, str]]:
        """All edges as ``(source, target)`` pairs (deterministic order)."""
        out: list[tuple[str, str]] = []
        for u in self._tasks:
            for v in sorted(self._succ[u]):
                out.append((u, v))
        return out

    def successors(self, name: str) -> list[str]:
        """Immediate successors of a task (sorted for determinism)."""
        if name not in self._tasks:
            raise InvalidGraphError(f"unknown task {name!r}")
        return sorted(self._succ[name])

    def predecessors(self, name: str) -> list[str]:
        """Immediate predecessors of a task (sorted for determinism)."""
        if name not in self._tasks:
            raise InvalidGraphError(f"unknown task {name!r}")
        return sorted(self._pred[name])

    def sources(self) -> list[str]:
        """Tasks with no predecessor, in insertion order."""
        return [n for n in self._tasks if not self._pred[n]]

    def sinks(self) -> list[str]:
        """Tasks with no successor, in insertion order."""
        return [n for n in self._tasks if not self._succ[n]]

    def in_degree(self, name: str) -> int:
        """Number of immediate predecessors."""
        return len(self._pred[name])

    def out_degree(self, name: str) -> int:
        """Number of immediate successors."""
        return len(self._succ[name])

    # ------------------------------------------------------------------ #
    # integer indexing
    # ------------------------------------------------------------------ #
    def index(self) -> GraphIndex:
        """Cached integer-indexed CSR view of the graph.

        The view (name↔index arrays, CSR predecessor/successor lists, cached
        topological order and levels) is built on first use and invalidated
        by every mutation (:meth:`add_task`, :meth:`add_edge`,
        :meth:`remove_edge`).  All hot solver paths operate on this view
        instead of the per-task dictionaries.

        Raises
        ------
        InvalidGraphError
            If the graph contains a cycle (a cached index always describes a
            valid DAG).
        """
        if self._index is None:
            self._index = _build_index(self)
        return self._index

    def structure_hash(self) -> str:
        """Content hash of the structure and weights (see :class:`GraphIndex`).

        Mutating the graph invalidates the cached index and therefore yields
        a fresh hash on the next call.  Hashing a graph that has not been
        indexed yet builds the index (O(n + m), the same view every solver
        needs anyway), so the cost is paid at most once per graph version.
        """
        return self.index().structure_hash

    # ------------------------------------------------------------------ #
    # validation / transformation
    # ------------------------------------------------------------------ #
    def validate(self) -> None:
        """Raise :class:`InvalidGraphError` if the graph is not a DAG."""
        order = self._kahn_order()
        if len(order) != len(self._tasks):
            raise InvalidGraphError(
                f"graph {self.name!r} contains a cycle "
                f"({len(self._tasks) - len(order)} tasks unreachable in topological sort)"
            )

    def is_dag(self) -> bool:
        """Whether the graph is acyclic."""
        return len(self._kahn_order()) == len(self._tasks)

    def _kahn_order(self) -> list[str]:
        """Kahn's algorithm; returns a topological order of the acyclic part."""
        indeg = {n: len(self._pred[n]) for n in self._tasks}
        ready = [n for n in self._tasks if indeg[n] == 0]
        order: list[str] = []
        while ready:
            # Pop from the end (stack order) -- deterministic given insertion
            # order, and avoids O(n) pops from the front.
            n = ready.pop()
            order.append(n)
            for m in sorted(self._succ[n]):
                indeg[m] -= 1
                if indeg[m] == 0:
                    ready.append(m)
        return order

    def copy(self, *, name: str | None = None) -> "TaskGraph":
        """Deep copy of the graph (tasks are immutable, so shared)."""
        g = TaskGraph(name=name or self.name)
        for t in self._tasks.values():
            g.add_task(t)
        for u, v in self.edges():
            g.add_edge(u, v)
        return g

    def with_scaled_work(self, factor: float) -> "TaskGraph":
        """Return a copy whose task works are multiplied by ``factor``."""
        if factor <= 0:
            raise InvalidGraphError("scaling factor must be strictly positive")
        g = TaskGraph(name=self.name)
        for t in self._tasks.values():
            g.add_task(Task(t.name, t.work * factor))
        for u, v in self.edges():
            g.add_edge(u, v)
        return g

    def subgraph(self, names: Iterable[str], *, name: str | None = None) -> "TaskGraph":
        """Induced subgraph on the given task names."""
        keep = set(names)
        unknown = keep - set(self._tasks)
        if unknown:
            raise InvalidGraphError(f"unknown tasks in subgraph request: {sorted(unknown)}")
        g = TaskGraph(name=name or f"{self.name}-sub")
        for n in self._tasks:
            if n in keep:
                g.add_task(self._tasks[n])
        for u, v in self.edges():
            if u in keep and v in keep:
                g.add_edge(u, v)
        return g

    # ------------------------------------------------------------------ #
    # interoperability
    # ------------------------------------------------------------------ #
    def to_networkx(self) -> nx.DiGraph:
        """Convert to a :class:`networkx.DiGraph` with ``work`` node attributes."""
        g = nx.DiGraph(name=self.name)
        for t in self._tasks.values():
            g.add_node(t.name, work=t.work)
        g.add_edges_from(self.edges())
        return g

    @classmethod
    def from_networkx(cls, g: nx.DiGraph, *, name: str | None = None,
                      default_work: float = 1.0) -> "TaskGraph":
        """Build a :class:`TaskGraph` from a networkx DiGraph.

        Node attribute ``work`` is used when present, otherwise
        ``default_work``.  Node identifiers are converted to strings.
        """
        tg = cls(name=name or (g.name or "taskgraph"))
        for node, data in g.nodes(data=True):
            tg.add_task(Task(str(node), float(data.get("work", default_work))))
        for u, v in g.edges():
            tg.add_edge(str(u), str(v))
        return tg

    @classmethod
    def from_works(cls, works: Mapping[str, float],
                   edges: Iterable[tuple[str, str]] = (),
                   *, name: str = "taskgraph") -> "TaskGraph":
        """Build a graph from a ``{name: work}`` mapping and an edge list."""
        return cls(tasks=[Task(n, float(w)) for n, w in works.items()],
                   edges=edges, name=name)

    def __getstate__(self) -> dict:
        """Pickle without the cached index (rebuilt lazily on first use).

        Keeps payloads lean when problems are shipped to worker processes by
        :func:`repro.batch.solve_many`.
        """
        state = self.__dict__.copy()
        state["_index"] = None
        return state

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            f"TaskGraph(name={self.name!r}, n_tasks={self.n_tasks}, "
            f"n_edges={self.n_edges})"
        )
