"""Serialisation of task graphs (JSON dictionaries and Graphviz DOT).

The experiment harness stores generated workloads as JSON so that runs are
reproducible and shareable; the DOT export is a debugging convenience for
inspecting small graphs.
"""

from __future__ import annotations

import json
from typing import Any

from repro.graphs.taskgraph import Task, TaskGraph
from repro.utils.errors import InvalidGraphError


def graph_to_dict(graph: TaskGraph) -> dict[str, Any]:
    """Serialise a graph to a plain dictionary.

    The format is ``{"name": ..., "tasks": {name: work, ...},
    "edges": [[u, v], ...]}``.
    """
    return {
        "name": graph.name,
        "tasks": {t.name: t.work for t in graph.tasks()},
        "edges": [list(e) for e in graph.edges()],
    }


def graph_from_dict(data: dict[str, Any]) -> TaskGraph:
    """Deserialise a graph previously produced by :func:`graph_to_dict`."""
    if "tasks" not in data:
        raise InvalidGraphError("graph dictionary is missing the 'tasks' key")
    graph = TaskGraph(name=str(data.get("name", "taskgraph")))
    for name, work in data["tasks"].items():
        graph.add_task(Task(str(name), float(work)))
    for edge in data.get("edges", []):
        if len(edge) != 2:
            raise InvalidGraphError(f"malformed edge entry: {edge!r}")
        graph.add_edge(str(edge[0]), str(edge[1]))
    graph.validate()
    return graph


def graph_to_json(graph: TaskGraph, *, indent: int | None = 2) -> str:
    """Serialise a graph to a JSON string."""
    return json.dumps(graph_to_dict(graph), indent=indent, sort_keys=True)


def graph_from_json(text: str) -> TaskGraph:
    """Deserialise a graph from a JSON string."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise InvalidGraphError(f"invalid JSON: {exc}") from exc
    return graph_from_dict(data)


def graph_to_dot(graph: TaskGraph, *, label_work: bool = True) -> str:
    """Render the graph as Graphviz DOT text.

    Parameters
    ----------
    label_work:
        When true (default), node labels include the task work.
    """
    lines = [f'digraph "{graph.name}" {{', "  rankdir=LR;"]
    for t in graph.tasks():
        if label_work:
            label = f"{t.name}\\nw={t.work:g}"
        else:
            label = t.name
        lines.append(f'  "{t.name}" [label="{label}"];')
    for u, v in graph.edges():
        lines.append(f'  "{u}" -> "{v}";')
    lines.append("}")
    return "\n".join(lines) + "\n"
