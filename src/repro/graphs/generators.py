"""Synthetic task-graph generators.

The paper motivates the problem with pre-allocated legacy applications; no
public traces ship with it, so the evaluation harness (like the companion
research report) relies on synthetic graph families.  Each generator below
produces one of the structural classes the algorithms are sensitive to:

* ``chain``            — a single sequential dependence chain,
* ``fork`` / ``join``  — the graphs of Theorem 1 (one source fanning out /
                          one sink fanning in),
* ``fork_join``        — a source, ``n`` parallel tasks, a sink,
* ``random_tree``      — out-trees (and in-trees via ``reverse``) covered by
                          Theorem 2,
* ``random_series_parallel`` — nested series/parallel compositions covered
                          by Theorem 2,
* ``layered_dag``      — random layered DAGs (the classic workload of
                          scheduling simulation studies),
* ``erdos_dag``        — a DAG obtained by orienting an Erdős–Rényi graph
                          along a random permutation,
* ``diamond``          — a 2-D pipeline / wavefront dependency structure.

Task works are drawn from a configurable distribution (uniform by default)
so the weight heterogeneity the closed forms depend on is exercised.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.graphs.taskgraph import Task, TaskGraph
from repro.utils.errors import InvalidGraphError
from repro.utils.rng import RngLike, make_rng

WorkSampler = Callable[[np.random.Generator], float]


def uniform_works(low: float = 1.0, high: float = 10.0) -> WorkSampler:
    """Return a sampler drawing works uniformly from ``[low, high]``."""
    if not (0 < low <= high):
        raise InvalidGraphError("uniform work bounds must satisfy 0 < low <= high")
    return lambda rng: float(rng.uniform(low, high))


def lognormal_works(mean: float = 1.0, sigma: float = 0.5) -> WorkSampler:
    """Return a sampler drawing works from a log-normal distribution."""
    if sigma < 0:
        raise InvalidGraphError("sigma must be non-negative")
    return lambda rng: float(np.exp(rng.normal(np.log(mean), sigma)))


def constant_works(value: float = 1.0) -> WorkSampler:
    """Return a sampler producing the constant work ``value``."""
    if value <= 0:
        raise InvalidGraphError("constant work must be strictly positive")
    return lambda rng: value


def _sample_works(rng: np.random.Generator, count: int,
                  sampler: WorkSampler | None) -> list[float]:
    sampler = sampler or uniform_works()
    return [sampler(rng) for _ in range(count)]


# --------------------------------------------------------------------------- #
# deterministic structures
# --------------------------------------------------------------------------- #
def chain(n: int, *, works: list[float] | None = None, seed: RngLike = None,
          work_sampler: WorkSampler | None = None, name: str = "chain") -> TaskGraph:
    """A chain ``T1 -> T2 -> ... -> Tn``."""
    if n < 1:
        raise InvalidGraphError("a chain needs at least one task")
    rng = make_rng(seed)
    w = works if works is not None else _sample_works(rng, n, work_sampler)
    if len(w) != n:
        raise InvalidGraphError(f"expected {n} works, got {len(w)}")
    g = TaskGraph(name=name)
    for i in range(n):
        g.add_task(Task(f"T{i + 1}", float(w[i])))
    for i in range(1, n):
        g.add_edge(f"T{i}", f"T{i + 1}")
    return g


def fork(n: int, *, source_work: float | None = None,
         works: list[float] | None = None, seed: RngLike = None,
         work_sampler: WorkSampler | None = None, name: str = "fork") -> TaskGraph:
    """A fork graph: source ``T0`` preceding ``n`` independent tasks.

    This is the graph of Theorem 1 of the paper; the closed-form optimal
    speeds under the Continuous model live in
    :func:`repro.continuous.fork.solve_fork`.
    """
    if n < 1:
        raise InvalidGraphError("a fork needs at least one leaf task")
    rng = make_rng(seed)
    leaf_works = works if works is not None else _sample_works(rng, n, work_sampler)
    if len(leaf_works) != n:
        raise InvalidGraphError(f"expected {n} leaf works, got {len(leaf_works)}")
    if source_work is None:
        source_work = _sample_works(rng, 1, work_sampler)[0]
    g = TaskGraph(name=name)
    g.add_task(Task("T0", float(source_work)))
    for i in range(n):
        g.add_task(Task(f"T{i + 1}", float(leaf_works[i])))
        g.add_edge("T0", f"T{i + 1}")
    return g


def join(n: int, *, sink_work: float | None = None,
         works: list[float] | None = None, seed: RngLike = None,
         work_sampler: WorkSampler | None = None, name: str = "join") -> TaskGraph:
    """A join graph: ``n`` independent tasks all preceding a sink ``T0``.

    By symmetry (time reversal) the optimal Continuous speeds are the same
    as for the fork with identical weights.
    """
    g = fork(n, source_work=sink_work, works=works, seed=seed,
             work_sampler=work_sampler, name=name)
    reversed_g = TaskGraph(name=name)
    for t in g.tasks():
        reversed_g.add_task(t)
    for u, v in g.edges():
        reversed_g.add_edge(v, u)
    return reversed_g


def fork_join(n: int, *, source_work: float | None = None,
              sink_work: float | None = None, works: list[float] | None = None,
              seed: RngLike = None, work_sampler: WorkSampler | None = None,
              name: str = "fork-join") -> TaskGraph:
    """Source, ``n`` parallel tasks, sink — the basic bulk-synchronous kernel."""
    if n < 1:
        raise InvalidGraphError("a fork-join needs at least one middle task")
    rng = make_rng(seed)
    mid = works if works is not None else _sample_works(rng, n, work_sampler)
    if len(mid) != n:
        raise InvalidGraphError(f"expected {n} middle works, got {len(mid)}")
    if source_work is None:
        source_work = _sample_works(rng, 1, work_sampler)[0]
    if sink_work is None:
        sink_work = _sample_works(rng, 1, work_sampler)[0]
    g = TaskGraph(name=name)
    g.add_task(Task("src", float(source_work)))
    g.add_task(Task("snk", float(sink_work)))
    for i in range(n):
        tname = f"T{i + 1}"
        g.add_task(Task(tname, float(mid[i])))
        g.add_edge("src", tname)
        g.add_edge(tname, "snk")
    return g


def diamond(rows: int, cols: int, *, seed: RngLike = None,
            work_sampler: WorkSampler | None = None,
            name: str = "diamond") -> TaskGraph:
    """A 2-D wavefront: task ``(i, j)`` depends on ``(i-1, j)`` and ``(i, j-1)``.

    This is the dependence structure of dynamic-programming sweeps and
    stencil pipelines; it is neither a tree nor series-parallel, so it
    exercises the general convex solver.
    """
    if rows < 1 or cols < 1:
        raise InvalidGraphError("diamond dimensions must be positive")
    rng = make_rng(seed)
    g = TaskGraph(name=name)
    sampler = work_sampler or uniform_works()
    for i in range(rows):
        for j in range(cols):
            g.add_task(Task(f"T{i}_{j}", sampler(rng)))
    for i in range(rows):
        for j in range(cols):
            if i + 1 < rows:
                g.add_edge(f"T{i}_{j}", f"T{i + 1}_{j}")
            if j + 1 < cols:
                g.add_edge(f"T{i}_{j}", f"T{i}_{j + 1}")
    return g


# --------------------------------------------------------------------------- #
# random structures
# --------------------------------------------------------------------------- #
def random_tree(n: int, *, seed: RngLike = None, max_children: int = 4,
                work_sampler: WorkSampler | None = None,
                direction: str = "out", name: str = "tree") -> TaskGraph:
    """A random rooted tree with ``n`` tasks.

    Parameters
    ----------
    direction:
        ``"out"`` for an out-tree (edges point away from the root, the
        structure Theorem 2 covers), ``"in"`` for an in-tree (edges point
        towards the root).
    max_children:
        Upper bound on the number of children attached to any node.
    """
    if n < 1:
        raise InvalidGraphError("a tree needs at least one task")
    if direction not in ("out", "in"):
        raise InvalidGraphError(f"direction must be 'out' or 'in', got {direction!r}")
    if max_children < 1:
        raise InvalidGraphError("max_children must be at least 1")
    rng = make_rng(seed)
    sampler = work_sampler or uniform_works()
    g = TaskGraph(name=name)
    g.add_task(Task("T1", sampler(rng)))
    # attach each new node to a uniformly random node that still has
    # capacity; the swap-remove list keeps the draw uniform over exactly
    # those nodes while staying O(1) per attachment (the previous
    # rebuild-the-candidate-list loop was O(n²) and took minutes at 10k)
    available = [0]
    child_count = [0] * n
    for i in range(1, n):
        k = int(rng.integers(0, len(available)))
        parent = available[k]
        child_count[parent] += 1
        if child_count[parent] >= max_children:
            available[k] = available[-1]
            available.pop()
        available.append(i)
        g.add_task(Task(f"T{i + 1}", sampler(rng)))
        if direction == "out":
            g.add_edge(f"T{parent + 1}", f"T{i + 1}")
        else:
            g.add_edge(f"T{i + 1}", f"T{parent + 1}")
    return g


def random_series_parallel(n: int, *, seed: RngLike = None,
                           series_probability: float = 0.5,
                           work_sampler: WorkSampler | None = None,
                           name: str = "series-parallel") -> TaskGraph:
    """A random (vertex) series-parallel task graph with ``n`` tasks.

    The graph is built by recursively splitting the task budget: a budget of
    one task yields a leaf; otherwise the budget is split in two and the
    sub-graphs are composed either in series (every sink of the first
    precedes every source of the second) or in parallel (disjoint union).
    The result is series-parallel by construction and is recognised by
    :func:`repro.graphs.sp_decomposition.is_series_parallel`.
    """
    if n < 1:
        raise InvalidGraphError("need at least one task")
    if not (0.0 <= series_probability <= 1.0):
        raise InvalidGraphError("series_probability must be in [0, 1]")
    rng = make_rng(seed)
    sampler = work_sampler or uniform_works()
    g = TaskGraph(name=name)
    counter = {"next": 1}

    def build(budget: int) -> tuple[list[str], list[str]]:
        """Build a sub-graph with ``budget`` tasks; return (sources, sinks)."""
        if budget == 1:
            tname = f"T{counter['next']}"
            counter["next"] += 1
            g.add_task(Task(tname, sampler(rng)))
            return [tname], [tname]
        left_budget = int(rng.integers(1, budget))
        right_budget = budget - left_budget
        left_src, left_snk = build(left_budget)
        right_src, right_snk = build(right_budget)
        if rng.random() < series_probability:
            for u in left_snk:
                for v in right_src:
                    g.add_edge(u, v)
            return left_src, right_snk
        return left_src + right_src, left_snk + right_snk

    build(n)
    return g


def layered_dag(n: int, *, seed: RngLike = None, layers: int | None = None,
                edge_probability: float = 0.3,
                work_sampler: WorkSampler | None = None,
                name: str = "layered-dag") -> TaskGraph:
    """A random layered DAG with ``n`` tasks.

    Tasks are spread over ``layers`` consecutive layers; each task in layer
    ``k > 1`` receives at least one predecessor from layer ``k - 1`` and,
    independently with probability ``edge_probability``, additional edges
    from every task of layer ``k - 1``.  This is the standard synthetic
    workload of DAG-scheduling simulation studies and is in general neither
    a tree nor series-parallel.
    """
    if n < 1:
        raise InvalidGraphError("need at least one task")
    if not (0.0 <= edge_probability <= 1.0):
        raise InvalidGraphError("edge_probability must be in [0, 1]")
    rng = make_rng(seed)
    sampler = work_sampler or uniform_works()
    if layers is None:
        layers = max(1, int(round(np.sqrt(n))))
    layers = min(layers, n)
    # distribute n tasks over the layers, at least one per layer
    sizes = [1] * layers
    for _ in range(n - layers):
        sizes[int(rng.integers(0, layers))] += 1
    g = TaskGraph(name=name)
    layer_tasks: list[list[str]] = []
    tid = 1
    for size in sizes:
        current: list[str] = []
        for _ in range(size):
            tname = f"T{tid}"
            tid += 1
            g.add_task(Task(tname, sampler(rng)))
            current.append(tname)
        layer_tasks.append(current)
    for k in range(1, layers):
        prev = layer_tasks[k - 1]
        for v in layer_tasks[k]:
            # ensure connectivity to the previous layer
            forced = prev[int(rng.integers(0, len(prev)))]
            g.add_edge(forced, v)
            for u in prev:
                if u != forced and rng.random() < edge_probability:
                    g.add_edge(u, v)
    return g


def erdos_dag(n: int, *, seed: RngLike = None, edge_probability: float = 0.15,
              work_sampler: WorkSampler | None = None,
              name: str = "erdos-dag") -> TaskGraph:
    """A random DAG obtained by orienting an Erdős–Rényi graph.

    Every pair ``(i, j)`` with ``i < j`` in a random permutation receives an
    edge independently with probability ``edge_probability``; edges always
    point from the earlier to the later task in the permutation, so the
    result is acyclic.
    """
    if n < 1:
        raise InvalidGraphError("need at least one task")
    if not (0.0 <= edge_probability <= 1.0):
        raise InvalidGraphError("edge_probability must be in [0, 1]")
    rng = make_rng(seed)
    sampler = work_sampler or uniform_works()
    g = TaskGraph(name=name)
    names = [f"T{i + 1}" for i in range(n)]
    for tname in names:
        g.add_task(Task(tname, sampler(rng)))
    perm = list(rng.permutation(n))
    for a in range(n):
        for b in range(a + 1, n):
            if rng.random() < edge_probability:
                g.add_edge(names[perm[a]], names[perm[b]])
    return g


#: Registry of graph-class constructors used by the experiment harness.
GRAPH_CLASSES: dict[str, Callable[..., TaskGraph]] = {
    "chain": chain,
    "fork": fork,
    "join": join,
    "fork_join": fork_join,
    "tree": random_tree,
    "series_parallel": random_series_parallel,
    "layered": layered_dag,
    "erdos": erdos_dag,
    "diamond": lambda n, **kw: diamond(max(1, int(np.sqrt(n))),
                                       max(1, int(np.ceil(n / max(1, int(np.sqrt(n)))))),
                                       **kw),
}
