"""Task-graph substrate.

This subpackage implements the application model of the paper: a directed
acyclic task graph ``G = (V, E)`` with per-task costs ``w_i``, plus the
analysis routines (topological orders, critical paths, transitive
reduction), synthetic generators for every graph family the evaluation
uses (chains, forks, joins, fork-joins, trees, series-parallel graphs,
layered and Erdős-style random DAGs), a series-parallel recogniser and
decomposition, and simple DOT/JSON serialisation.
"""

from repro.graphs.taskgraph import Task, TaskGraph
from repro.graphs.analysis import (
    topological_order,
    longest_path_length,
    critical_path,
    critical_path_tasks,
    transitive_reduction,
    transitive_closure_pairs,
    graph_depth,
    graph_width,
    ancestors,
    descendants,
)
from repro.graphs.sp_decomposition import (
    SPNode,
    SPLeaf,
    SPSeries,
    SPParallel,
    is_series_parallel,
    sp_decompose,
)
from repro.graphs import generators
from repro.graphs.io import (
    graph_to_dot,
    graph_to_dict,
    graph_from_dict,
    graph_to_json,
    graph_from_json,
)

__all__ = [
    "Task",
    "TaskGraph",
    "topological_order",
    "longest_path_length",
    "critical_path",
    "critical_path_tasks",
    "transitive_reduction",
    "transitive_closure_pairs",
    "graph_depth",
    "graph_width",
    "ancestors",
    "descendants",
    "SPNode",
    "SPLeaf",
    "SPSeries",
    "SPParallel",
    "is_series_parallel",
    "sp_decompose",
    "generators",
    "graph_to_dot",
    "graph_to_dict",
    "graph_from_dict",
    "graph_to_json",
    "graph_from_json",
]
