"""Series-parallel recognition and decomposition of task graphs.

Theorem 2 of the paper states that ``MinEnergy(G, D)`` is polynomial for
trees and series-parallel graphs under the Continuous model.  The algorithm
(see :mod:`repro.continuous.series_parallel`) works on a *decomposition
tree* whose leaves are tasks and whose internal nodes are series or parallel
compositions.  This module builds that tree.

Definition used here (task/vertex series-parallel, "SP-decomposable"):

* a single task is SP-decomposable;
* the *parallel composition* of SP-decomposable graphs (disjoint union,
  no cross edges) is SP-decomposable;
* the *series composition* ``A ; B`` of SP-decomposable graphs is
  SP-decomposable, where every task of ``A`` transitively precedes every
  task of ``B``.

The series criterion is slightly more permissive than "all sinks of ``A``
have a direct edge to all sources of ``B``": it only requires the pair to be
*time-separable* (``A x B`` contained in the transitive closure), which is
exactly the property the energy argument needs — in any feasible schedule
all of ``A`` finishes before any of ``B`` starts, so the deadline can be
split between the two blocks.  Every graph produced by
:func:`repro.graphs.generators.random_series_parallel`, every chain, every
fork/join, and every in/out-tree is SP-decomposable in this sense; wavefront
(diamond) graphs and general layered DAGs typically are not.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.graphs.analysis import descendants
from repro.graphs.taskgraph import TaskGraph
from repro.utils.errors import InvalidGraphError


class NotSeriesParallelError(InvalidGraphError):
    """Raised when a graph cannot be decomposed into series/parallel blocks."""


@dataclass
class SPNode:
    """Base class of decomposition-tree nodes."""

    def leaves(self) -> list[str]:
        """Names of the tasks below this node (in deterministic order)."""
        raise NotImplementedError

    def size(self) -> int:
        """Number of task leaves below this node."""
        return len(self.leaves())


@dataclass
class SPLeaf(SPNode):
    """A single task."""

    task: str
    work: float

    def leaves(self) -> list[str]:
        return [self.task]


@dataclass
class SPSeries(SPNode):
    """A series composition: children execute strictly one after another."""

    children: list[SPNode] = field(default_factory=list)

    def leaves(self) -> list[str]:
        out: list[str] = []
        for c in self.children:
            out.extend(c.leaves())
        return out


@dataclass
class SPParallel(SPNode):
    """A parallel composition: children execute independently within the same window."""

    children: list[SPNode] = field(default_factory=list)

    def leaves(self) -> list[str]:
        out: list[str] = []
        for c in self.children:
            out.extend(c.leaves())
        return out


def _weak_components(graph: TaskGraph, nodes: list[str]) -> list[list[str]]:
    """Weakly connected components of the sub-poset induced by ``nodes``."""
    node_set = set(nodes)
    seen: set[str] = set()
    components: list[list[str]] = []
    for start in nodes:
        if start in seen:
            continue
        comp: list[str] = []
        stack = [start]
        seen.add(start)
        while stack:
            u = stack.pop()
            comp.append(u)
            for v in graph.successors(u) + graph.predecessors(u):
                if v in node_set and v not in seen:
                    seen.add(v)
                    stack.append(v)
        components.append(sorted(comp))
    return components


def _series_blocks(
    nodes: list[str], closure: dict[str, set[str]]
) -> list[list[str]] | None:
    """Split ``nodes`` into the finest chain of series blocks, or ``None``.

    A valid boundary after position ``k`` (in an order sorted by descendant
    count within the block) requires every task of the prefix to transitively
    precede every task of the suffix.  All valid boundaries are found, which
    yields the finest ordinal-sum decomposition; ``None`` is returned when no
    boundary exists (the block is series-irreducible).
    """
    node_set = set(nodes)
    n = len(nodes)
    if n < 2:
        return None
    # descendant counts restricted to this block
    desc_in = {u: len(closure[u] & node_set) for u in nodes}
    # Sort so that potential "earlier" tasks (more in-block descendants) come
    # first; ties broken by name for determinism.
    ordered = sorted(nodes, key=lambda u: (-desc_in[u], u))
    blocks: list[list[str]] = []
    current: list[str] = []
    remaining = set(nodes)
    for idx, u in enumerate(ordered):
        current.append(u)
        remaining.discard(u)
        if not remaining:
            blocks.append(current)
            current = []
            break
        # valid boundary iff every task of the prefix precedes every
        # remaining task
        if all(remaining <= (closure[v] & node_set) for v in current):
            blocks.append(current)
            current = []
    if current:
        # ordered exhausted without closing the final block -- cannot happen
        # because the last boundary (remaining empty) always closes it
        blocks.append(current)
    if len(blocks) < 2:
        return None
    return blocks


def sp_decompose(graph: TaskGraph) -> SPNode:
    """Decompose ``graph`` into a series-parallel tree.

    Returns
    -------
    SPNode
        The root of the decomposition tree.

    Raises
    ------
    NotSeriesParallelError
        If the graph is not SP-decomposable.
    InvalidGraphError
        If the graph is not a DAG.
    """
    graph.validate()
    if graph.n_tasks == 0:
        raise InvalidGraphError("cannot decompose an empty graph")
    closure = {u: descendants(graph, u) for u in graph.task_names()}

    def recurse(nodes: list[str]) -> SPNode:
        if len(nodes) == 1:
            name = nodes[0]
            return SPLeaf(task=name, work=graph.work(name))
        components = _weak_components(graph, nodes)
        if len(components) > 1:
            return SPParallel(children=[recurse(c) for c in components])
        blocks = _series_blocks(nodes, closure)
        if blocks is None:
            raise NotSeriesParallelError(
                f"graph {graph.name!r} is not series-parallel: block "
                f"{sorted(nodes)[:6]}{'...' if len(nodes) > 6 else ''} is "
                "connected but admits no series cut"
            )
        return SPSeries(children=[recurse(b) for b in blocks])

    return recurse(graph.task_names())


def is_series_parallel(graph: TaskGraph) -> bool:
    """Whether the graph is SP-decomposable (see module docstring)."""
    try:
        sp_decompose(graph)
    except NotSeriesParallelError:
        return False
    return True


def sp_tree_depth(node: SPNode) -> int:
    """Depth of a decomposition tree (a leaf has depth 1)."""
    if isinstance(node, SPLeaf):
        return 1
    children = node.children  # type: ignore[union-attr]
    return 1 + max(sp_tree_depth(c) for c in children)


def iter_leaves(node: SPNode) -> Iterable[SPLeaf]:
    """Iterate over the task leaves of a decomposition tree."""
    if isinstance(node, SPLeaf):
        yield node
        return
    for child in node.children:  # type: ignore[union-attr]
        yield from iter_leaves(child)
