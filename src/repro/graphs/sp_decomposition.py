"""Series-parallel recognition and decomposition of task graphs.

Theorem 2 of the paper states that ``MinEnergy(G, D)`` is polynomial for
trees and series-parallel graphs under the Continuous model.  The algorithm
(see :mod:`repro.continuous.series_parallel`) works on a *decomposition
tree* whose leaves are tasks and whose internal nodes are series or parallel
compositions.  This module builds that tree.

Definition used here (task/vertex series-parallel, "SP-decomposable"):

* a single task is SP-decomposable;
* the *parallel composition* of SP-decomposable graphs (disjoint union,
  no cross edges) is SP-decomposable;
* the *series composition* ``A ; B`` of SP-decomposable graphs is
  SP-decomposable, where every task of ``A`` transitively precedes every
  task of ``B``.

The series criterion is slightly more permissive than "all sinks of ``A``
have a direct edge to all sources of ``B``": it only requires the pair to be
*time-separable* (``A x B`` contained in the transitive closure), which is
exactly the property the energy argument needs — in any feasible schedule
all of ``A`` finishes before any of ``B`` starts, so the deadline can be
split between the two blocks.  Every graph produced by
:func:`repro.graphs.generators.random_series_parallel`, every chain, every
fork/join, and every in/out-tree is SP-decomposable in this sense; wavefront
(diamond) graphs and general layered DAGs typically are not.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.graphs.analysis import descendant_bitsets
from repro.graphs.taskgraph import TaskGraph
from repro.utils.errors import InvalidGraphError, NotSeriesParallelError

__all__ = ["NotSeriesParallelError", "SPNode", "SPLeaf", "SPSeries",
           "SPParallel", "is_series_parallel", "sp_decompose"]


@dataclass
class SPNode:
    """Base class of decomposition-tree nodes."""

    def leaves(self) -> list[str]:
        """Names of the tasks below this node (in deterministic order).

        Iterative pre-order walk — decomposition trees of deep caterpillar
        graphs can nest O(n) levels, which must not overflow the stack.
        """
        out: list[str] = []
        stack: list[SPNode] = [self]
        while stack:
            node = stack.pop()
            if isinstance(node, SPLeaf):
                out.append(node.task)
            else:
                stack.extend(reversed(node.children))  # type: ignore[union-attr]
        return out

    def size(self) -> int:
        """Number of task leaves below this node."""
        return len(self.leaves())


@dataclass
class SPLeaf(SPNode):
    """A single task."""

    task: str
    work: float


@dataclass
class SPSeries(SPNode):
    """A series composition: children execute strictly one after another."""

    children: list[SPNode] = field(default_factory=list)


@dataclass
class SPParallel(SPNode):
    """A parallel composition: children execute independently within the same window."""

    children: list[SPNode] = field(default_factory=list)


def _weak_components(graph: TaskGraph, nodes: list[str]) -> list[list[str]]:
    """Weakly connected components of the sub-poset induced by ``nodes``.

    Runs on the graph's CSR index (integer neighbour lists) so that
    repeated calls from the decomposition loop do not re-sort adjacency
    sets; the output keeps the historical order (components in first-seen
    order, members sorted by name).
    """
    idx = graph.index()
    index_of, names = idx.index_of, idx.names
    pred_ptr, pred_idx = idx.pred_ptr.tolist(), idx.pred_idx.tolist()
    succ_ptr, succ_idx = idx.succ_ptr.tolist(), idx.succ_idx.tolist()
    node_ids = [index_of[u] for u in nodes]
    in_set = set(node_ids)
    seen: set[int] = set()
    components: list[list[str]] = []
    for start in node_ids:
        if start in seen:
            continue
        comp: list[int] = []
        stack = [start]
        seen.add(start)
        while stack:
            u = stack.pop()
            comp.append(u)
            neighbours = (succ_idx[succ_ptr[u]:succ_ptr[u + 1]]
                          + pred_idx[pred_ptr[u]:pred_ptr[u + 1]])
            for v in neighbours:
                if v in in_set and v not in seen:
                    seen.add(v)
                    stack.append(v)
        components.append(sorted(names[i] for i in comp))
    return components


def _series_blocks(
    nodes: list[str], closure: np.ndarray, index_of, n_words: int
) -> list[list[str]] | None:
    """Split ``nodes`` into the finest chain of series blocks, or ``None``.

    A valid boundary after position ``k`` (in an order sorted by descendant
    count within the block) requires every task of the prefix to transitively
    precede every task of the suffix.  All valid boundaries are found, which
    yields the finest ordinal-sum decomposition; ``None`` is returned when no
    boundary exists (the block is series-irreducible).

    ``closure`` is the packed-bitset transitive closure from
    :func:`repro.graphs.analysis.descendant_bitsets`: the prefix test is a
    running word-wise AND of the prefix rows against the mask of remaining
    nodes, so each candidate boundary costs O(n / 64) instead of comparing
    Python sets.
    """
    n = len(nodes)
    if n < 2:
        return None
    rows_unsorted = closure[[index_of[u] for u in nodes]]
    word = np.right_shift([index_of[u] for u in nodes], 6)
    bit = np.uint64(1) << (np.array([index_of[u] for u in nodes],
                                    dtype=np.uint64) & np.uint64(63))
    block_mask = np.zeros(n_words, dtype=np.uint64)
    np.bitwise_or.at(block_mask, word, bit)
    # descendant counts restricted to this block, batched in one call
    desc_in = np.bitwise_count(rows_unsorted & block_mask).sum(axis=1)
    # Sort so that potential "earlier" tasks (more in-block descendants) come
    # first; ties broken by name for determinism.
    perm = sorted(range(n), key=lambda i: (-int(desc_in[i]), nodes[i]))
    ordered = [nodes[i] for i in perm]
    # A boundary after position j is valid iff every task of positions
    # 0..j transitively precedes every task of positions j+1.. — i.e. the
    # cumulative prefix AND of the descendant rows contains all remaining
    # nodes.  (Checking the cumulative prefix instead of only the nodes
    # since the previous boundary is equivalent: each earlier block passed
    # the same test against a superset of the remaining nodes.)  Since no
    # node is its own strict descendant, the prefix AND restricted to the
    # block never contains prefix nodes, so containment reduces to a
    # popcount: exactly ``n - 1 - j`` in-block bits must survive.
    rows_sorted = rows_unsorted[perm]
    prefix_and = np.bitwise_and.accumulate(rows_sorted, axis=0)
    in_block = np.bitwise_count(prefix_and & block_mask).sum(axis=1)
    valid = in_block[:-1] == np.arange(n - 1, 0, -1)
    blocks: list[list[str]] = []
    start = 0
    for j in range(n - 1):
        if valid[j]:
            blocks.append(ordered[start:j + 1])
            start = j + 1
    blocks.append(ordered[start:])
    if len(blocks) < 2:
        return None
    return blocks


def sp_decompose(graph: TaskGraph) -> SPNode:
    """Decompose ``graph`` into a series-parallel tree.

    The decomposition is iterative (an explicit work stack instead of
    recursion) and queries the transitive closure through packed bitsets, so
    deep chains and caterpillar graphs neither overflow the interpreter
    stack nor materialise quadratic Python sets.

    Returns
    -------
    SPNode
        The root of the decomposition tree.

    Raises
    ------
    NotSeriesParallelError
        If the graph is not SP-decomposable.
    InvalidGraphError
        If the graph is not a DAG.
    """
    graph.validate()
    if graph.n_tasks == 0:
        raise InvalidGraphError("cannot decompose an empty graph")
    closure = descendant_bitsets(graph)
    index_of = graph.index().index_of
    n_words = closure.shape[1]

    root_holder: list[SPNode | None] = [None]
    # each entry: (nodes, container list, slot to fill)
    stack: list[tuple[list[str], list, int]] = [(graph.task_names(), root_holder, 0)]
    while stack:
        nodes, container, slot = stack.pop()
        if len(nodes) == 1:
            name = nodes[0]
            container[slot] = SPLeaf(task=name, work=graph.work(name))
            continue
        components = _weak_components(graph, nodes)
        if len(components) > 1:
            parent: SPNode = SPParallel(children=[None] * len(components))  # type: ignore[list-item]
            groups = components
        else:
            blocks = _series_blocks(nodes, closure, index_of, n_words)
            if blocks is None:
                raise NotSeriesParallelError(
                    f"graph {graph.name!r} is not series-parallel: block "
                    f"{sorted(nodes)[:6]}{'...' if len(nodes) > 6 else ''} is "
                    "connected but admits no series cut"
                )
            parent = SPSeries(children=[None] * len(blocks))  # type: ignore[list-item]
            groups = blocks
        container[slot] = parent
        for i, group in enumerate(groups):
            stack.append((group, parent.children, i))  # type: ignore[union-attr]
    assert root_holder[0] is not None
    return root_holder[0]


def is_series_parallel(graph: TaskGraph) -> bool:
    """Whether the graph is SP-decomposable (see module docstring)."""
    try:
        sp_decompose(graph)
    except NotSeriesParallelError:
        return False
    return True


def sp_tree_depth(node: SPNode) -> int:
    """Depth of a decomposition tree (a leaf has depth 1)."""
    best = 0
    stack: list[tuple[SPNode, int]] = [(node, 1)]
    while stack:
        current, depth = stack.pop()
        if isinstance(current, SPLeaf):
            best = max(best, depth)
        else:
            for child in current.children:  # type: ignore[union-attr]
                stack.append((child, depth + 1))
    return best


def iter_leaves(node: SPNode) -> Iterable[SPLeaf]:
    """Iterate over the task leaves of a decomposition tree (pre-order)."""
    stack: list[SPNode] = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, SPLeaf):
            yield current
        else:
            stack.extend(reversed(current.children))  # type: ignore[union-attr]
