"""Structural analysis of task graphs.

These routines provide the graph-theoretic primitives the solvers rely on:

* topological orders (used by every propagation pass),
* weighted longest paths / critical paths (the minimum-makespan lower bound
  used by feasibility checks and by the Continuous lower bounds),
* transitive reduction and closure (used when building execution graphs and
  the NP-hardness gadgets),
* depth / width statistics (used by the workload generators and reporting).

All functions accept a :class:`repro.graphs.taskgraph.TaskGraph` and treat
task *work* as the vertex weight.  Edge weights are not used: the paper's
model has no communication costs.
"""

from __future__ import annotations

from typing import Callable, Mapping

import numpy as np

from repro.graphs.taskgraph import TaskGraph
from repro.utils.errors import InvalidGraphError


def topological_order(graph: TaskGraph) -> list[str]:
    """Return a topological order of the tasks.

    The order comes from the graph's cached integer index
    (:meth:`repro.graphs.taskgraph.TaskGraph.index`), so repeated calls on an
    unmodified graph cost one list comprehension.

    Raises
    ------
    InvalidGraphError
        If the graph contains a cycle.
    """
    idx = graph.index()
    names = idx.names
    return [names[i] for i in idx.topo_order]


def longest_path_length(
    graph: TaskGraph,
    weight: Callable[[str], float] | Mapping[str, float] | None = None,
) -> float:
    """Length of the longest (vertex-weighted) path.

    Parameters
    ----------
    graph:
        The task graph.
    weight:
        Either a callable mapping a task name to its weight, a mapping, or
        ``None`` to use the task work.  The weight of a path is the sum of
        the weights of its vertices (both endpoints included).

    Returns
    -------
    float
        0.0 for the empty graph.
    """
    if graph.n_tasks == 0:
        return 0.0
    idx = graph.index()
    if weight is None:
        weights = idx.works
    elif callable(weight):
        weights = np.fromiter((weight(n) for n in idx.names),
                              dtype=float, count=idx.n_tasks)
    else:
        mapping = dict(weight)
        missing = set(idx.names) - set(mapping)
        if missing:
            raise InvalidGraphError(f"weight mapping is missing tasks: {sorted(missing)}")
        weights = idx.vector_of(mapping)
    best = np.zeros(idx.n_tasks)
    pred_ptr, pred_idx = idx.pred_ptr, idx.pred_idx
    for u in idx.topo_order:
        lo, hi = pred_ptr[u], pred_ptr[u + 1]
        incoming = best[pred_idx[lo:hi]].max() if hi > lo else 0.0
        best[u] = incoming + weights[u]
    return float(best.max())


def critical_path(
    graph: TaskGraph,
    weight: Callable[[str], float] | Mapping[str, float] | None = None,
) -> tuple[float, list[str]]:
    """Return ``(length, tasks)`` of a maximum-weight path.

    Ties are broken deterministically (lexicographically smallest
    predecessor is preferred when reconstructing the path).
    """
    getter = _weight_getter(graph, weight)
    order = topological_order(graph)
    best: dict[str, float] = {}
    parent: dict[str, str | None] = {}
    for n in order:
        preds = graph.predecessors(n)
        if preds:
            # max by value; ties broken by name for determinism
            p_best = max(preds, key=lambda p: (best[p], p))
            # prefer lexicographically smallest among equal-valued parents
            candidates = [p for p in preds if best[p] == best[p_best]]
            p_best = min(candidates)
            best[n] = best[p_best] + getter(n)
            parent[n] = p_best
        else:
            best[n] = getter(n)
            parent[n] = None
    if not best:
        return 0.0, []
    end = max(best, key=lambda n: (best[n], n))
    end = min([n for n in best if best[n] == best[end]])
    path: list[str] = []
    cur: str | None = end
    while cur is not None:
        path.append(cur)
        cur = parent[cur]
    path.reverse()
    return best[end], path


def critical_path_tasks(graph: TaskGraph) -> list[str]:
    """Convenience wrapper returning only the tasks of a critical path."""
    return critical_path(graph)[1]


def ancestors(graph: TaskGraph, name: str) -> set[str]:
    """All tasks that must complete before ``name`` can start."""
    seen: set[str] = set()
    stack = list(graph.predecessors(name))
    while stack:
        n = stack.pop()
        if n in seen:
            continue
        seen.add(n)
        stack.extend(graph.predecessors(n))
    return seen


def descendants(graph: TaskGraph, name: str) -> set[str]:
    """All tasks that can only start after ``name`` completes."""
    seen: set[str] = set()
    stack = list(graph.successors(name))
    while stack:
        n = stack.pop()
        if n in seen:
            continue
        seen.add(n)
        stack.extend(graph.successors(n))
    return seen


def transitive_closure_pairs(graph: TaskGraph) -> set[tuple[str, str]]:
    """All ordered pairs ``(u, v)`` such that ``u`` precedes ``v`` transitively."""
    pairs: set[tuple[str, str]] = set()
    for n in graph.task_names():
        for d in descendants(graph, n):
            pairs.add((n, d))
    return pairs


def transitive_reduction(graph: TaskGraph) -> TaskGraph:
    """Return a copy of the graph with all transitively implied edges removed.

    An edge ``u -> v`` is redundant when there is another path from ``u`` to
    ``v`` of length at least two.  The reduction of a DAG is unique.
    """
    graph.validate()
    reduced = graph.copy(name=f"{graph.name}-tr")
    for u, v in graph.edges():
        # Is v reachable from u without using the direct edge?
        reduced.remove_edge(u, v)
        if v not in descendants(reduced, u):
            reduced.add_edge(u, v)
    return reduced


def graph_depth(graph: TaskGraph) -> int:
    """Number of tasks on a longest path counted by hops (unit weights)."""
    if graph.n_tasks == 0:
        return 0
    return graph.index().n_levels


def graph_width(graph: TaskGraph) -> int:
    """Maximum number of tasks at the same depth level (antichain proxy).

    The *level* of a task is the number of tasks on the longest hop-path
    ending at it.  The width reported here is the size of the largest level,
    which is a cheap, deterministic proxy for the maximum antichain used by
    the workload generators and the reporting layer.
    """
    if graph.n_tasks == 0:
        return 0
    return int(np.bincount(graph.index().level).max())


def levels(graph: TaskGraph) -> dict[str, int]:
    """Return the (1-based) level of every task.

    The level of a task is ``1 +`` the maximum level of its predecessors.
    """
    idx = graph.index()
    return {name: int(idx.level[i]) + 1 for i, name in enumerate(idx.names)}


def descendant_bitsets(graph: TaskGraph) -> np.ndarray:
    """Transitive-closure rows as packed uint64 bitsets.

    Row ``i`` has bit ``j`` set (word ``j // 64``, bit ``j % 64``) exactly
    when task ``j`` is a strict descendant of task ``i`` in the graph's
    integer index.  Computed in one reverse-topological pass with word-wise
    ORs, so a 10k-task chain costs a few million word operations and ~12 MB
    instead of the quadratic per-node Python sets of :func:`descendants`.
    """
    idx = graph.index()
    n = idx.n_tasks
    n_words = (n + 63) // 64 if n else 1
    closure = np.zeros((n, n_words), dtype=np.uint64)
    succ_ptr, succ_idx = idx.succ_ptr, idx.succ_idx
    for u in idx.topo_order[::-1]:
        row = closure[u]
        for v in succ_idx[succ_ptr[u]:succ_ptr[u + 1]]:
            np.bitwise_or(row, closure[v], out=row)
            row[v >> 6] |= np.uint64(1) << np.uint64(v & 63)
    return closure


def _weight_getter(
    graph: TaskGraph,
    weight: Callable[[str], float] | Mapping[str, float] | None,
) -> Callable[[str], float]:
    """Normalise the three accepted weight specifications into a callable."""
    if weight is None:
        return lambda n: graph.work(n)
    if callable(weight):
        return weight
    mapping = dict(weight)
    missing = set(graph.task_names()) - set(mapping)
    if missing:
        raise InvalidGraphError(f"weight mapping is missing tasks: {sorted(missing)}")
    return lambda n: mapping[n]
