"""Structural analysis of task graphs.

These routines provide the graph-theoretic primitives the solvers rely on:

* topological orders (used by every propagation pass),
* weighted longest paths / critical paths (the minimum-makespan lower bound
  used by feasibility checks and by the Continuous lower bounds),
* transitive reduction and closure (used when building execution graphs and
  the NP-hardness gadgets),
* depth / width statistics (used by the workload generators and reporting).

All functions accept a :class:`repro.graphs.taskgraph.TaskGraph` and treat
task *work* as the vertex weight.  Edge weights are not used: the paper's
model has no communication costs.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Mapping

from repro.graphs.taskgraph import TaskGraph
from repro.utils.errors import InvalidGraphError


def topological_order(graph: TaskGraph) -> list[str]:
    """Return a topological order of the tasks.

    Raises
    ------
    InvalidGraphError
        If the graph contains a cycle.
    """
    indeg = {n: graph.in_degree(n) for n in graph.task_names()}
    ready = deque(n for n in graph.task_names() if indeg[n] == 0)
    order: list[str] = []
    while ready:
        n = ready.popleft()
        order.append(n)
        for m in graph.successors(n):
            indeg[m] -= 1
            if indeg[m] == 0:
                ready.append(m)
    if len(order) != graph.n_tasks:
        raise InvalidGraphError(f"graph {graph.name!r} contains a cycle")
    return order


def longest_path_length(
    graph: TaskGraph,
    weight: Callable[[str], float] | Mapping[str, float] | None = None,
) -> float:
    """Length of the longest (vertex-weighted) path.

    Parameters
    ----------
    graph:
        The task graph.
    weight:
        Either a callable mapping a task name to its weight, a mapping, or
        ``None`` to use the task work.  The weight of a path is the sum of
        the weights of its vertices (both endpoints included).

    Returns
    -------
    float
        0.0 for the empty graph.
    """
    getter = _weight_getter(graph, weight)
    order = topological_order(graph)
    best: dict[str, float] = {}
    overall = 0.0
    for n in order:
        preds = graph.predecessors(n)
        incoming = max((best[p] for p in preds), default=0.0)
        best[n] = incoming + getter(n)
        overall = max(overall, best[n])
    return overall


def critical_path(
    graph: TaskGraph,
    weight: Callable[[str], float] | Mapping[str, float] | None = None,
) -> tuple[float, list[str]]:
    """Return ``(length, tasks)`` of a maximum-weight path.

    Ties are broken deterministically (lexicographically smallest
    predecessor is preferred when reconstructing the path).
    """
    getter = _weight_getter(graph, weight)
    order = topological_order(graph)
    best: dict[str, float] = {}
    parent: dict[str, str | None] = {}
    for n in order:
        preds = graph.predecessors(n)
        if preds:
            # max by value; ties broken by name for determinism
            p_best = max(preds, key=lambda p: (best[p], p))
            # prefer lexicographically smallest among equal-valued parents
            candidates = [p for p in preds if best[p] == best[p_best]]
            p_best = min(candidates)
            best[n] = best[p_best] + getter(n)
            parent[n] = p_best
        else:
            best[n] = getter(n)
            parent[n] = None
    if not best:
        return 0.0, []
    end = max(best, key=lambda n: (best[n], n))
    end = min([n for n in best if best[n] == best[end]])
    path: list[str] = []
    cur: str | None = end
    while cur is not None:
        path.append(cur)
        cur = parent[cur]
    path.reverse()
    return best[end], path


def critical_path_tasks(graph: TaskGraph) -> list[str]:
    """Convenience wrapper returning only the tasks of a critical path."""
    return critical_path(graph)[1]


def ancestors(graph: TaskGraph, name: str) -> set[str]:
    """All tasks that must complete before ``name`` can start."""
    seen: set[str] = set()
    stack = list(graph.predecessors(name))
    while stack:
        n = stack.pop()
        if n in seen:
            continue
        seen.add(n)
        stack.extend(graph.predecessors(n))
    return seen


def descendants(graph: TaskGraph, name: str) -> set[str]:
    """All tasks that can only start after ``name`` completes."""
    seen: set[str] = set()
    stack = list(graph.successors(name))
    while stack:
        n = stack.pop()
        if n in seen:
            continue
        seen.add(n)
        stack.extend(graph.successors(n))
    return seen


def transitive_closure_pairs(graph: TaskGraph) -> set[tuple[str, str]]:
    """All ordered pairs ``(u, v)`` such that ``u`` precedes ``v`` transitively."""
    pairs: set[tuple[str, str]] = set()
    for n in graph.task_names():
        for d in descendants(graph, n):
            pairs.add((n, d))
    return pairs


def transitive_reduction(graph: TaskGraph) -> TaskGraph:
    """Return a copy of the graph with all transitively implied edges removed.

    An edge ``u -> v`` is redundant when there is another path from ``u`` to
    ``v`` of length at least two.  The reduction of a DAG is unique.
    """
    graph.validate()
    reduced = graph.copy(name=f"{graph.name}-tr")
    for u, v in graph.edges():
        # Is v reachable from u without using the direct edge?
        reduced.remove_edge(u, v)
        if v not in descendants(reduced, u):
            reduced.add_edge(u, v)
    return reduced


def graph_depth(graph: TaskGraph) -> int:
    """Number of tasks on a longest path counted by hops (unit weights)."""
    if graph.n_tasks == 0:
        return 0
    return int(round(longest_path_length(graph, weight=lambda _n: 1.0)))


def graph_width(graph: TaskGraph) -> int:
    """Maximum number of tasks at the same depth level (antichain proxy).

    The *level* of a task is the number of tasks on the longest hop-path
    ending at it.  The width reported here is the size of the largest level,
    which is a cheap, deterministic proxy for the maximum antichain used by
    the workload generators and the reporting layer.
    """
    if graph.n_tasks == 0:
        return 0
    order = topological_order(graph)
    level: dict[str, int] = {}
    for n in order:
        preds = graph.predecessors(n)
        level[n] = 1 + max((level[p] for p in preds), default=0)
    counts: dict[int, int] = {}
    for lvl in level.values():
        counts[lvl] = counts.get(lvl, 0) + 1
    return max(counts.values())


def levels(graph: TaskGraph) -> dict[str, int]:
    """Return the (1-based) level of every task.

    The level of a task is ``1 +`` the maximum level of its predecessors.
    """
    order = topological_order(graph)
    level: dict[str, int] = {}
    for n in order:
        preds = graph.predecessors(n)
        level[n] = 1 + max((level[p] for p in preds), default=0)
    return level


def _weight_getter(
    graph: TaskGraph,
    weight: Callable[[str], float] | Mapping[str, float] | None,
) -> Callable[[str], float]:
    """Normalise the three accepted weight specifications into a callable."""
    if weight is None:
        return lambda n: graph.work(n)
    if callable(weight):
        return weight
    mapping = dict(weight)
    missing = set(graph.task_names()) - set(mapping)
    if missing:
        raise InvalidGraphError(f"weight mapping is missing tasks: {sorted(missing)}")
    return lambda n: mapping[n]
