"""Struct-of-arrays batch solver for small Continuous instances.

The closed-form/tree/series-parallel solvers of Theorem 1/2 cost
microseconds of arithmetic per instance, but the scalar pipeline wraps each
one in graph construction, registry dispatch and (in the service) a process
pool hop — at the many-small-graphs shape the per-instance overhead
dominates by orders of magnitude.  This module removes it: ``solve_batch``
packs B instances into flat NumPy arrays (concatenated node works with
per-instance offset vectors and a level-sorted child CSR) and solves *all of
them at once* with one segment-reduced bottom-up equivalent-load pass and
one top-down window pass.  No per-instance Python dispatch, no pickling, no
pool hop.

Unified computation forest
--------------------------
Every vectorizable instance lowers to a forest of *combine nodes* carrying a
work amount and a child list.  Two combine kinds cover all shapes:

- **P-combine** (``load = work + (sum load_c ** alpha) ** (1/alpha)``):
  tree nodes (Theorem 2's out/in-tree recursion, fork/join/chain/single are
  the degenerate cases) and SP parallel compositions (with ``work = 0``);
- **S-combine** (``load = work + sum load_c``): SP series compositions
  (``work = 0``).

The kind collapses into per-node exponent arrays (``1/alpha`` vs ``1``), so
the two passes run branch-free over the whole batch.  The top-down pass
splits each node's window among its children (Theorem 2's proportional
rule), and every task's optimal speed is ``load / window`` — exactly the
scalar solvers' numbers modulo floating-point reassociation (equal well
within 1e-9).

Instances the vector core cannot express — non-tree/non-SP DAGs, discrete
models, instances whose uncapped speeds violate a finite ``s_max`` (the
scalar path then switches to the saturated closed forms or the convex
program), or anything above ``VECTORIZE_MAX_TASKS`` — silently fall back to
the scalar :func:`repro.solve.solve`, with the same per-instance error
capture as :func:`repro.batch.solve_many`.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.batch.engine import BatchResult, _WorkItem, _solve_one
from repro.core.models import ContinuousModel
from repro.core.problem import MinEnergyProblem
from repro.graphs.sp_decomposition import (
    NotSeriesParallelError,
    SPLeaf,
    SPParallel,
    sp_decompose,
)
from repro.graphs.taskgraph import TaskGraph
from repro.utils.errors import InvalidGraphError
from repro.utils.numerics import DEFAULT_ABS_TOL, DEFAULT_REL_TOL

#: Instances above this task count go to the scalar path: the vector win is
#: per-instance overhead amortisation, which stops mattering for graphs
#: whose solve itself is no longer trivial.
VECTORIZE_MAX_TASKS = 256

#: Solver labels recorded on vector-solved rows (the batch twins of
#: ``continuous-tree`` / ``continuous-series-parallel``).
TREE_BATCH_SOLVER = "continuous-tree-batch"
SP_BATCH_SOLVER = "continuous-sp-batch"


# --------------------------------------------------------------------------- #
# instance specs
# --------------------------------------------------------------------------- #
@dataclass
class InstanceSpec:
    """One solve instance in array form (the wire-to-vector fast path).

    A spec is the minimal data the packed solver needs: the work vector in
    task order, the edge list as index pairs, and the scalar parameters.
    Specs built straight from a decoded request dict skip ``TaskGraph``
    construction entirely; the full problem object is only materialised
    lazily (``materialise``) when the instance has to take the scalar
    fallback path.
    """

    works: np.ndarray
    task_names: Sequence[str]
    edges_src: np.ndarray
    edges_dst: np.ndarray
    deadline: float
    alpha: float = 3.0
    s_max: float = math.inf
    name: str = ""
    graph_name: str = ""
    #: original ``graph_to_dict`` payload, kept for lazy problem rebuild
    graph_data: dict[str, Any] | None = None
    #: set when the spec was derived from an existing problem object
    problem: MinEnergyProblem | None = None

    @property
    def n_tasks(self) -> int:
        return int(self.works.shape[0])

    @property
    def display_name(self) -> str:
        if self.name:
            return self.name
        return f"MinEnergy({self.graph_name}, D={self.deadline:g})"

    def materialise(self) -> MinEnergyProblem:
        """The full problem object (built on demand for fallback/validation)."""
        if self.problem is None:
            from repro.core.power import CUBIC, PowerLaw
            from repro.graphs.io import graph_from_dict

            if self.graph_data is None:  # pragma: no cover - spec invariant
                raise InvalidGraphError(
                    "instance spec carries neither a problem nor graph data")
            graph = graph_from_dict(self.graph_data)
            power = CUBIC if self.alpha == 3.0 else PowerLaw(alpha=self.alpha)
            self.problem = MinEnergyProblem(
                graph=graph, deadline=self.deadline,
                model=ContinuousModel(s_max=self.s_max), power=power,
                name=self.name)
        return self.problem


def spec_from_problem(problem: MinEnergyProblem) -> InstanceSpec:
    """Lower a (Continuous-model) problem to an :class:`InstanceSpec`.

    The caller is responsible for eligibility checks; the returned spec
    keeps a reference to the problem so the scalar fallback never rebuilds
    anything.
    """
    idx = problem.graph.index()
    model = problem.model
    s_max = model.s_max if isinstance(model, ContinuousModel) else math.inf
    return InstanceSpec(
        works=idx.works, task_names=idx.names,
        edges_src=idx.edge_src, edges_dst=idx.edge_dst,
        deadline=problem.deadline, alpha=problem.power.alpha, s_max=s_max,
        name=problem.name, graph_name=problem.graph.name, problem=problem)


def spec_from_graph_dict(data: dict[str, Any], *, deadline: float,
                         alpha: float = 3.0, s_max: float = math.inf,
                         name: str = "") -> InstanceSpec:
    """Lower a ``graph_to_dict`` payload straight to a spec (no TaskGraph).

    Only the structure needed for packing is extracted; semantic validation
    (positive works, acyclicity, ...) happens implicitly — instances that
    fail the vector path's structural checks are rebuilt as real problems,
    which re-raise the library's usual typed errors.
    """
    try:
        tasks = data["tasks"]
        works = np.fromiter(tasks.values(), dtype=np.float64, count=len(tasks))
    except (TypeError, KeyError, AttributeError, ValueError) as exc:
        raise InvalidGraphError(f"malformed graph payload: {exc}") from exc
    index_of = {task: i for i, task in enumerate(tasks)}
    edges = data.get("edges") or ()
    try:
        src = np.fromiter((index_of[e[0]] for e in edges), dtype=np.int64,
                          count=len(edges))
        dst = np.fromiter((index_of[e[1]] for e in edges), dtype=np.int64,
                          count=len(edges))
    except (KeyError, IndexError, TypeError) as exc:
        raise InvalidGraphError(f"malformed edge list: {exc}") from exc
    return InstanceSpec(
        works=works, task_names=tuple(index_of), edges_src=src, edges_dst=dst,
        deadline=deadline, alpha=alpha, s_max=s_max, name=name,
        graph_name=str(data.get("name", "")), graph_data=data)


# --------------------------------------------------------------------------- #
# per-instance lowering of series-parallel graphs
# --------------------------------------------------------------------------- #
@dataclass
class _Plan:
    """Node arrays of one lowered instance (SP decomposition forest)."""

    works: np.ndarray          # per combine node
    is_p: np.ndarray           # bool: P-combine (alpha-norm) vs S-combine
    level: np.ndarray          # depth from the root of the combine tree
    child_ptr: np.ndarray      # CSR over local node ids
    child_idx: np.ndarray
    task_node: np.ndarray      # local node id of each task, in task order


def _sp_plan(graph: TaskGraph) -> _Plan:
    """Flatten ``sp_decompose(graph)`` into combine-node arrays.

    Leaves are P-combine nodes carrying the task work (they have no
    children, so the kind is irrelevant to the load pass but makes the
    top-down rule uniform); series/parallel compositions are zero-work
    S/P-combine nodes.  Raises :class:`NotSeriesParallelError` for non-SP
    graphs.
    """
    root = sp_decompose(graph)
    index_of = graph.index().index_of
    works: list[float] = []
    is_p: list[bool] = []
    level: list[int] = [0]
    children: list[list[int]] = []
    task_node = np.empty(graph.n_tasks, dtype=np.int64)

    # breadth-first walk; ids are queue positions, so they come out grouped
    # by depth and node 0 is the combine root
    queue: list[Any] = [root]
    head = 0
    while head < len(queue):
        node = queue[head]
        my_id = head
        head += 1
        if isinstance(node, SPLeaf):
            works.append(node.work)
            is_p.append(True)
            children.append([])
            task_node[index_of[node.task]] = my_id
            continue
        works.append(0.0)
        is_p.append(isinstance(node, SPParallel))
        if not node.children:  # pragma: no cover - decomposition invariant
            raise NotSeriesParallelError("empty composition in decomposition")
        kid_ids = []
        for child in node.children:
            kid_ids.append(len(queue))
            queue.append(child)
            level.append(level[my_id] + 1)
        children.append(kid_ids)

    counts = np.fromiter((len(c) for c in children), dtype=np.int64,
                         count=len(children))
    ptr = np.zeros(len(children) + 1, dtype=np.int64)
    np.cumsum(counts, out=ptr[1:])
    flat = np.fromiter((c for kids in children for c in kids),
                       dtype=np.int64, count=int(ptr[-1]))
    return _Plan(
        works=np.asarray(works, dtype=np.float64),
        is_p=np.asarray(is_p, dtype=bool),
        level=np.asarray(level, dtype=np.int64),
        child_ptr=ptr, child_idx=flat, task_node=task_node)


# --------------------------------------------------------------------------- #
# the packed solve
# --------------------------------------------------------------------------- #
@dataclass
class _VectorOutcome:
    """Per-instance outcome of the packed solve."""

    solved: bool
    solver: str = ""
    energy: float = 0.0
    equivalent_load: float = 0.0
    speeds: np.ndarray | None = None
    fallback_reason: str = ""


def _tree_orientation_masks(n: np.ndarray, m: np.ndarray,
                            indeg0: np.ndarray, indeg_over: np.ndarray,
                            outdeg0: np.ndarray, outdeg_over: np.ndarray
                            ) -> tuple[np.ndarray, np.ndarray]:
    """Per-instance (is_out_tree, is_in_tree) masks from degree statistics.

    Mirrors ``repro.continuous.tree._tree_orientation``: out-trees win when
    both orientations hold (single task / chain).  Acyclicity and
    connectivity are *not* decided here — the global BFS checks them by
    counting reached nodes.
    """
    tree_count = m == np.maximum(n - 1, 0)
    out = tree_count & (indeg_over == 0) & (indeg0 == 1)
    inn = tree_count & (outdeg_over == 0) & (outdeg0 == 1)
    return out, inn & ~out


def _segment_sums(values: np.ndarray, ptr_lo: np.ndarray,
                  ptr_hi: np.ndarray) -> np.ndarray:
    """Contiguous segment sums via cumulative sums (empty segments ok)."""
    csum = np.empty(values.shape[0] + 1, dtype=np.float64)
    csum[0] = 0.0
    np.cumsum(values, out=csum[1:])
    return csum[ptr_hi] - csum[ptr_lo]


def _csr_gather(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Flat source indices for gathering CSR rows ``[s, s+c)`` back to back."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    out_ptr = np.zeros(counts.shape[0], dtype=np.int64)
    np.cumsum(counts[:-1], out=out_ptr[1:])
    return (np.repeat(starts - out_ptr, counts)
            + np.arange(total, dtype=np.int64))


def _solve_vectorized(specs: Sequence[InstanceSpec],
                      keep_speeds: bool) -> list[_VectorOutcome]:
    """Solve all tree/SP-shaped specs at once; flag the rest for fallback.

    Returns one outcome per spec, aligned with the input.  The function
    never raises for a malformed instance — structural misfits come back
    with ``solved=False`` and a reason, and the caller routes them through
    the scalar path (which raises the library's usual typed errors).
    """
    B = len(specs)
    outcomes = [_VectorOutcome(solved=False, fallback_reason="not packed")
                for _ in range(B)]
    if B == 0:
        return outcomes

    n_inst = np.fromiter((s.n_tasks for s in specs), dtype=np.int64, count=B)
    m_inst = np.fromiter((s.edges_src.shape[0] for s in specs),
                         dtype=np.int64, count=B)
    deadlines = np.fromiter((s.deadline for s in specs), dtype=np.float64,
                            count=B)
    alphas = np.fromiter((s.alpha for s in specs), dtype=np.float64, count=B)

    # basic scalar eligibility (vectorized over instances)
    with np.errstate(invalid="ignore"):
        eligible = ((n_inst >= 1)
                    & np.isfinite(deadlines) & (deadlines > 0.0)
                    & np.isfinite(alphas) & (alphas > 1.0))

    node_off = np.zeros(B + 1, dtype=np.int64)
    np.cumsum(n_inst, out=node_off[1:])
    N = int(node_off[-1])
    if N == 0:
        return outcomes

    works_all = np.ascontiguousarray(
        np.concatenate([s.works for s in specs]), dtype=np.float64)
    with np.errstate(invalid="ignore"):
        bad_work = ~np.isfinite(works_all) | (works_all <= 0.0)
    if bad_work.any():
        # minimum.reduceat-style: any bad work disqualifies the instance
        bad_inst = np.add.reduceat(bad_work.astype(np.int64),
                                   node_off[:-1]) > 0
        eligible &= ~bad_inst

    # global edge arrays (instance-offset node ids)
    src_all = np.concatenate(
        [s.edges_src + node_off[i] for i, s in enumerate(specs)])
    dst_all = np.concatenate(
        [s.edges_dst + node_off[i] for i, s in enumerate(specs)])

    indeg = np.bincount(dst_all, minlength=N)
    outdeg = np.bincount(src_all, minlength=N)
    indeg0 = np.add.reduceat((indeg == 0).astype(np.int64), node_off[:-1])
    indeg_over = np.add.reduceat((indeg > 1).astype(np.int64), node_off[:-1])
    outdeg0 = np.add.reduceat((outdeg == 0).astype(np.int64), node_off[:-1])
    outdeg_over = np.add.reduceat((outdeg > 1).astype(np.int64), node_off[:-1])
    is_out, is_in = _tree_orientation_masks(
        n_inst, m_inst, indeg0, indeg_over, outdeg0, outdeg_over)
    is_out &= eligible
    is_in &= eligible
    is_tree_inst = is_out | is_in

    # non-tree eligible instances: try the series-parallel lowering
    # (per-instance Python — SP needs the recursive decomposition anyway)
    sp_plans: list[tuple[int, _Plan]] = []
    for i in np.flatnonzero(eligible & ~is_tree_inst):
        spec = specs[i]
        try:
            graph = spec.materialise().graph
            sp_plans.append((int(i), _sp_plan(graph)))
        except NotSeriesParallelError:
            outcomes[i].fallback_reason = "not tree or series-parallel"
        except Exception as exc:  # malformed graph: scalar path re-raises
            outcomes[i].fallback_reason = f"lowering failed: {exc}"
    for i in np.flatnonzero(~eligible):
        outcomes[i].fallback_reason = "failed vector eligibility checks"

    tree_ids = np.flatnonzero(is_tree_inst)
    if tree_ids.size == 0 and not sp_plans:
        return outcomes

    # ------------------------------------------------------------------ #
    # tree chunk: child CSR + roots, fully vectorized over the batch
    # ------------------------------------------------------------------ #
    # per-edge orientation: out-tree edges parent=src, in-tree parent=dst
    tree_node = np.repeat(is_tree_inst, n_inst)
    inst_of_node = np.repeat(np.arange(B, dtype=np.int64), n_inst)
    edge_inst = np.repeat(np.arange(B, dtype=np.int64), m_inst)
    tree_edge = is_tree_inst[edge_inst]
    out_edge = is_out[edge_inst] & tree_edge
    parent = np.where(out_edge, src_all, dst_all)[tree_edge]
    child = np.where(out_edge, dst_all, src_all)[tree_edge]

    t_counts = np.bincount(parent, minlength=N)
    t_ptr = np.zeros(N + 1, dtype=np.int64)
    np.cumsum(t_counts, out=t_ptr[1:])
    t_child = child[np.argsort(parent, kind="stable")]

    roots_mask = (((indeg == 0) & is_out[inst_of_node])
                  | ((outdeg == 0) & is_in[inst_of_node])) & tree_node
    roots = np.flatnonzero(roots_mask)  # one per tree instance, id order

    # simultaneous BFS from every root: depths + reachability check
    depth = np.full(N, -1, dtype=np.int64)
    depth[roots] = 0
    frontier = roots
    d = 0
    while frontier.size:
        starts = t_ptr[frontier]
        counts = t_counts[frontier]
        gather = _csr_gather(starts, counts)
        if gather.size == 0:
            break
        children = t_child[gather]
        d += 1
        depth[children] = d
        frontier = children

    unreached = (depth < 0) & tree_node
    if unreached.any():
        # fake trees (degree stats matched but a parent cycle hides nodes):
        # kick the whole instance to the scalar path, clamp depths so the
        # packed passes stay well-formed (their outputs are discarded)
        bad = np.unique(inst_of_node[np.flatnonzero(unreached)])
        is_out[bad] = False
        is_in[bad] = False
        is_tree_inst[bad] = False
        for i in bad:
            outcomes[i].fallback_reason = "cyclic or disconnected instance"
        np.maximum(depth, 0, out=depth)
        tree_ids = np.flatnonzero(is_tree_inst)
        if tree_ids.size == 0 and not sp_plans:
            return outcomes
    else:
        np.maximum(depth, 0, out=depth)

    # ------------------------------------------------------------------ #
    # merge tree chunk + SP plans into one node universe
    # ------------------------------------------------------------------ #
    sp_sizes = np.fromiter((p.works.shape[0] for _, p in sp_plans),
                           dtype=np.int64, count=len(sp_plans))
    sp_off = np.zeros(len(sp_plans) + 1, dtype=np.int64)
    np.cumsum(sp_sizes, out=sp_off[1:])
    total_nodes = N + int(sp_off[-1])

    g_works = np.concatenate(
        [works_all] + [p.works for _, p in sp_plans]) \
        if sp_plans else works_all
    g_is_p = np.concatenate(
        [np.ones(N, dtype=bool)] + [p.is_p for _, p in sp_plans]) \
        if sp_plans else np.ones(N, dtype=bool)
    g_level = np.concatenate(
        [depth] + [p.level for _, p in sp_plans]) if sp_plans else depth
    g_inst = np.concatenate(
        [inst_of_node]
        + [np.full(p.works.shape[0], i, dtype=np.int64)
           for i, p in sp_plans]) if sp_plans else inst_of_node
    g_counts = np.concatenate(
        [t_counts]
        + [np.diff(p.child_ptr) for _, p in sp_plans]) \
        if sp_plans else t_counts
    g_child = np.concatenate(
        [t_child]
        + [p.child_idx + N + sp_off[j]
           for j, (_, p) in enumerate(sp_plans)]) if sp_plans else t_child
    g_alpha = alphas[g_inst]

    # roots of the merged universe
    sp_roots = N + sp_off[:-1]  # each plan's node 0 is its combine root
    root_nodes = np.concatenate([roots[is_tree_inst[inst_of_node[roots]]],
                                 sp_roots]) if sp_plans else \
        roots[is_tree_inst[inst_of_node[roots]]]

    # level-sort all nodes (stable keeps instance-major order within levels)
    order = np.argsort(g_level, kind="stable")
    pos = np.empty(total_nodes, dtype=np.int64)
    pos[order] = np.arange(total_nodes, dtype=np.int64)

    work_s = g_works[order]
    is_p_s = g_is_p[order]
    alpha_s = g_alpha[order]
    counts_s = g_counts[order]
    lev_s = g_level[order]
    ptr_s = np.zeros(total_nodes + 1, dtype=np.int64)
    np.cumsum(counts_s, out=ptr_s[1:])

    # children gathered into the sorted CSR, remapped to sorted positions
    g_ptr = np.zeros(total_nodes + 1, dtype=np.int64)
    np.cumsum(g_counts, out=g_ptr[1:])
    child_s = pos[g_child[_csr_gather(g_ptr[order], counts_s)]]

    # per-child combine exponent (parent kind folded into an array)
    child_exp = np.repeat(np.where(is_p_s, alpha_s, 1.0), counts_s)
    #: in the top-down split, S-combine children take a share proportional
    #: to their own load; P-combine children all get the full remainder
    child_takes_load = np.repeat(~is_p_s, counts_s)
    inv_exp = np.where(is_p_s, 1.0 / alpha_s, 1.0)

    n_levels = int(lev_s[-1]) + 1 if total_nodes else 0
    level_ptr = np.zeros(n_levels + 1, dtype=np.int64)
    np.cumsum(np.bincount(lev_s, minlength=n_levels), out=level_ptr[1:])

    # ------------------------------------------------------------------ #
    # bottom-up equivalent loads (Theorem 2), one sweep per level
    # ------------------------------------------------------------------ #
    loads = work_s.copy()
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        for lvl in range(n_levels - 1, -1, -1):
            p0, p1 = int(level_ptr[lvl]), int(level_ptr[lvl + 1])
            c0, c1 = int(ptr_s[p0]), int(ptr_s[p1])
            if c0 == c1:
                continue
            powered = loads[child_s[c0:c1]] ** child_exp[c0:c1]
            seg = _segment_sums(powered, ptr_s[p0:p1] - c0,
                                ptr_s[p0 + 1:p1 + 1] - c0)
            np.power(seg, inv_exp[p0:p1], out=seg)
            loads[p0:p1] = work_s[p0:p1] + seg

        # --------------------------------------------------------------- #
        # top-down windows: root gets the deadline, children split it
        # --------------------------------------------------------------- #
        win = np.zeros(total_nodes, dtype=np.float64)
        win[pos[root_nodes]] = deadlines[g_inst[root_nodes]]
        for lvl in range(n_levels - 1):
            p0, p1 = int(level_ptr[lvl]), int(level_ptr[lvl + 1])
            c0, c1 = int(ptr_s[p0]), int(ptr_s[p1])
            if c0 == c1:
                continue
            seg_loads = loads[p0:p1]
            factor = win[p0:p1] / seg_loads
            factor = np.where(is_p_s[p0:p1],
                              factor * (seg_loads - work_s[p0:p1]), factor)
            rep = np.repeat(factor, counts_s[p0:p1])
            kids = child_s[c0:c1]
            win[kids] = rep * np.where(child_takes_load[c0:c1],
                                       loads[kids], 1.0)

        # ------------------------------------------------------------------ #
        # extract per-task speeds, energies, cap checks
        # ------------------------------------------------------------------ #
        # tree-chunk node ids coincide with instance-major task indices, so
        # pos[:N] maps every task to its sorted position directly
        task_pos = pos[:N]
        speeds_nodes = loads / np.where(win > 0.0, win, np.nan)

    # per-instance root node id (tree chunk); SP roots are each plan's node 0
    root_of = np.full(B, -1, dtype=np.int64)
    root_of[inst_of_node[roots]] = roots

    solver_of = {int(i): TREE_BATCH_SOLVER for i in tree_ids}
    solver_of.update({i: SP_BATCH_SOLVER for i, _ in sp_plans})
    plan_of = {i: j for j, (i, _p) in enumerate(sp_plans)}

    abs_tol, rel_tol = DEFAULT_ABS_TOL, DEFAULT_REL_TOL
    for i in sorted(solver_of):
        spec = specs[i]
        if i in plan_of:
            j = plan_of[i]
            positions = pos[sp_plans[j][1].task_node + N + sp_off[j]]
            root_pos = pos[N + sp_off[j]]
        else:
            positions = task_pos[node_off[i]:node_off[i + 1]]
            root_pos = pos[root_of[i]]
        speeds = speeds_nodes[positions]
        if not np.all(np.isfinite(speeds)):
            outcomes[i].fallback_reason = "degenerate windows"
            continue
        cap = spec.s_max
        if math.isfinite(cap):
            if float(speeds.max(initial=0.0)) > cap + abs_tol + rel_tol * cap:
                # the uncapped Theorem 2 solution violates s_max: the scalar
                # dispatcher handles this (saturated closed form / convex)
                outcomes[i].fallback_reason = "s_max violated"
                continue
        energy = float(np.dot(spec.works, speeds ** (spec.alpha - 1.0)))
        outcomes[i] = _VectorOutcome(
            solved=True, solver=solver_of[i], energy=energy,
            equivalent_load=float(loads[root_pos]),
            speeds=np.ascontiguousarray(speeds) if keep_speeds else None)
    return outcomes


# --------------------------------------------------------------------------- #
# public batch API
# --------------------------------------------------------------------------- #
def _spec_eligible(item: MinEnergyProblem | InstanceSpec, *,
                   method: str | None, exact: bool | None,
                   options: dict[str, Any] | None,
                   max_tasks: int) -> InstanceSpec | None:
    """Lower ``item`` to a spec when the vector core may solve it."""
    if method not in (None, "auto") or exact is not None or options:
        return None
    if isinstance(item, InstanceSpec):
        return item if item.n_tasks <= max_tasks else None
    if not isinstance(item.model, ContinuousModel):
        return None
    if item.n_tasks > max_tasks:
        return None
    return spec_from_problem(item)


def solve_batch(items: Sequence[MinEnergyProblem | InstanceSpec], *,
                method: str | None = None, exact: bool | None = None,
                options: dict[str, Any] | None = None,
                keep_speeds: bool = False, validate: bool = False,
                max_tasks: int = VECTORIZE_MAX_TASKS) -> list[BatchResult]:
    """Solve a batch of instances, vectorizing every eligible one.

    ``items`` mixes :class:`MinEnergyProblem` objects and
    :class:`InstanceSpec` fast-path entries.  Small Continuous instances
    with automatic dispatch go through the packed struct-of-arrays solver;
    everything else (explicit methods/options, discrete models, non-tree/SP
    shapes, capped instances the uncapped closed form would violate, large
    graphs) takes the scalar path with :func:`repro.batch.solve_many`-style
    per-instance error capture.  Results come back in input order.
    """
    started = time.perf_counter()
    opts = dict(options or {})
    specs: list[InstanceSpec | None] = []
    for item in items:
        try:
            specs.append(_spec_eligible(item, method=method, exact=exact,
                                        options=opts or None,
                                        max_tasks=max_tasks))
        except Exception:
            specs.append(None)

    vec_indices = [i for i, s in enumerate(specs) if s is not None]
    vec_specs = [specs[i] for i in vec_indices]
    outcomes = _solve_vectorized(vec_specs, keep_speeds or validate) \
        if vec_specs else []

    results: list[BatchResult | None] = [None] * len(items)
    n_vectorized = 0
    for local, i in enumerate(vec_indices):
        outcome = outcomes[local]
        if not outcome.solved:
            continue
        n_vectorized += 1
        spec = vec_specs[local]
        assert spec is not None
        speeds_dict = None
        if keep_speeds and outcome.speeds is not None:
            speeds_dict = {name: float(s) for name, s
                           in zip(spec.task_names, outcome.speeds)}
        result = BatchResult(
            index=i, name=spec.display_name, ok=True,
            n_tasks=spec.n_tasks, energy=outcome.energy,
            makespan=spec.deadline,  # optimal windows exhaust the deadline
            solver=outcome.solver, optimal=True, lower_bound=None,
            seconds=0.0, speeds=speeds_dict,
            metadata={"cache_hit": False, "vectorized": True,
                      "equivalent_load": outcome.equivalent_load})
        if validate:
            result = _validated(result, spec, outcome)
        results[i] = result

    # scalar fallback for everything the vector core declined
    elapsed_vec = time.perf_counter() - started
    for i, item in enumerate(items):
        if results[i] is not None:
            continue
        problem: MinEnergyProblem | None = None
        try:
            problem = item if isinstance(item, MinEnergyProblem) \
                else item.materialise()
        except Exception as exc:
            name = item.display_name if isinstance(item, InstanceSpec) else ""
            results[i] = BatchResult(
                index=i, name=name, ok=False,
                n_tasks=item.n_tasks if isinstance(item, InstanceSpec) else 0,
                error=str(exc) or type(exc).__name__,
                error_type=type(exc).__name__,
                metadata={"cache_hit": False})
            continue
        result, _env = _solve_one(_WorkItem(
            index=i, problem=problem, method=method, exact=exact,
            validate=validate, keep_speeds=keep_speeds, options=opts,
            seed=None, want_envelope=False))
        results[i] = result

    # amortize the single packed solve across its instances
    if n_vectorized:
        share = elapsed_vec / n_vectorized
        for i in vec_indices:
            result = results[i]
            if result is not None and result.metadata.get("vectorized"):
                result.seconds = share
    return [r for r in results if r is not None]


def _validated(result: BatchResult, spec: InstanceSpec,
               outcome: _VectorOutcome) -> BatchResult:
    """Re-check a vector-solved instance with the full validation pipeline."""
    from repro.core.solution import SpeedAssignment, make_solution
    from repro.core.validation import check_solution

    try:
        problem = spec.materialise()
        assignment = SpeedAssignment(speeds={
            name: float(s) for name, s
            in zip(spec.task_names, outcome.speeds)})
        solution = make_solution(problem, assignment, solver=outcome.solver,
                                 optimal=True,
                                 metadata=dict(result.metadata))
        check_solution(solution)
        # trust the validated pipeline's energy/makespan readings
        result.energy = solution.energy
        result.makespan = solution.makespan
    except Exception as exc:
        return BatchResult(
            index=result.index, name=result.name, ok=False,
            n_tasks=result.n_tasks, error=str(exc) or type(exc).__name__,
            error_type=type(exc).__name__, metadata={"cache_hit": False})
    return result
