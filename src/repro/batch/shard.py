"""Deterministic partitioning of sweep grids across machines.

A sharded sweep splits one :func:`repro.batch.sweep` grid over ``N``
independent workers (CI legs, cluster nodes) with **no coordinator in the
hot path**: every leg re-derives the *full* grid from the sweep's base seed,
computes the same partition, and solves only its own slice.  Because the
partition is a pure function of the grid and the :class:`ShardSpec`, the
union of the ``N`` slices is exactly the unsharded grid — pairwise disjoint,
bit-identical coordinates — and the per-shard row dumps can later be
reassembled by :mod:`repro.batch.merge`.

Two strategies are provided:

``round-robin``
    Position ``i`` of the grid goes to shard ``i % count``.  Predictable and
    load-agnostic; fine for homogeneous grids.

``cost-weighted`` (the default)
    Instances are weighted with per-``(graph_class, n_tasks)`` timing priors
    (calibrated against the BENCH baselines: the structured classes solve in
    O(n), layered DAGs pay the convex solver's superlinear cost) and packed
    greedily onto the currently lightest shard (LPT).  Shards then finish in
    near-equal wall time even when the grid mixes a 10,000-task chain with
    32-task layered DAGs.

Every sharded sweep is stamped with a :func:`grid_fingerprint` — a SHA-256
over the full grid coordinates and the sweep parameters — so the merge
layer can refuse to combine dumps that were not produced from the same
grid.
"""

from __future__ import annotations

import hashlib
import heapq
import json
import math
import re
from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Sequence

from repro.utils.errors import ShardError

#: Recognised partitioning strategies, in documentation order.
SHARD_STRATEGIES = ("cost-weighted", "round-robin")

_SHARD_RE = re.compile(r"^\s*(\d+)\s*/\s*(\d+)\s*$")

#: Timing priors per (model, graph_class): ``seconds ~ coeff * (n/100)**exp``.
#: Only the *relative* magnitudes matter for balancing.  The structured
#: continuous classes ride the O(n) Theorem-2 solvers; layered (and unknown)
#: DAGs pay the superlinear convex/LP/heuristic cost of their model.
_COST_PRIORS: dict[str, dict[str | None, tuple[float, float]]] = {
    "continuous": {
        "chain": (0.004, 1.0),
        "fork": (0.004, 1.0),
        "tree": (0.006, 1.0),
        "series_parallel": (0.010, 1.1),
        "layered": (0.9, 2.4),
        None: (0.9, 2.4),
    },
    "vdd": {None: (0.08, 1.8)},
    "discrete": {None: (0.15, 2.0)},
    "incremental": {None: (0.12, 2.0)},
}


def estimate_cost(graph_class: str, n_tasks: int, *, model: str = "continuous",
                  priors: Mapping[str, tuple[float, float]] | None = None) -> float:
    """Estimated solve seconds for one ``(graph_class, n_tasks)`` cell.

    ``priors`` overrides or extends the built-in table for this call: a
    mapping of graph class to ``(coeff, exponent)`` pairs (key ``None``
    sets the fallback for unknown classes).  The absolute scale is
    irrelevant to :func:`assign_shards` — only ratios drive the packing.
    """
    table = dict(_COST_PRIORS.get(model, _COST_PRIORS["continuous"]))
    if priors:
        table.update(priors)
    coeff, exponent = table.get(graph_class, table.get(None, (1.0, 2.0)))
    return float(coeff) * (max(int(n_tasks), 1) / 100.0) ** float(exponent)


def priors_from_rows(rows: Any, *, model: str = "continuous",
                     min_seconds: float = 1e-6
                     ) -> dict[str | None, tuple[float, float]]:
    """Fit per-graph-class timing priors from measured sweep/BENCH rows.

    The cost-weighted partitioner ships static priors calibrated once
    against the BENCH baselines; as solver performance shifts (a sparse
    backend lands, a cap is lifted) those drift and shard balance decays.
    This closes the loop: feed the measured ``seconds`` of a previous run
    back in and get a priors mapping for
    :func:`estimate_cost`/:func:`assign_shards`/``sweep(priors=...)``
    (and the ``repro sweep --priors-from dump.json`` CLI hook).

    ``rows`` may be anything row-shaped that carries ``graph_class``,
    ``n_tasks`` and ``seconds`` columns: a sweep :class:`~repro.utils.
    tables.Table`, a :class:`~repro.batch.merge.ShardDump`, or an iterable
    of dicts (e.g. parsed ``BENCH_*.json`` rows).  Rows that failed
    (``ok`` falsy), were served from the result cache (``cache_hit``
    truthy — their ``seconds`` measure a lookup, not a solve) or ran
    faster than ``min_seconds`` are ignored.

    For every graph class the model ``seconds ~ coeff * (n/100)**exp`` is
    fitted log-linearly over the per-size median timings; classes measured
    at a single size keep the built-in exponent of ``model`` and only
    recalibrate the coefficient.  The ``None`` key (the fallback for
    classes the partitioner has no entry for) is fitted over all rows
    pooled.  Classes with no usable rows are simply absent — the built-in
    table still covers them.
    """
    if hasattr(rows, "columns") and hasattr(rows, "rows"):
        columns = list(rows.columns)
        dict_rows: Iterable[Mapping[str, Any]] = (
            dict(zip(columns, row)) for row in rows.rows)
    else:
        dict_rows = rows

    samples: dict[str | None, dict[int, list[float]]] = {}
    for row in dict_rows:
        if not row.get("ok", True) or row.get("cache_hit"):
            continue
        try:
            graph_class = str(row["graph_class"])
            n_tasks = int(row["n_tasks"])
            seconds = float(row["seconds"])
        except (KeyError, TypeError, ValueError):
            continue
        if n_tasks < 1 or not (seconds >= min_seconds):
            continue
        for key in (graph_class, None):
            samples.setdefault(key, {}).setdefault(n_tasks, []).append(seconds)

    fallback_table = _COST_PRIORS.get(model, _COST_PRIORS["continuous"])
    priors: dict[str | None, tuple[float, float]] = {}
    for key, by_size in samples.items():
        # per-size median in log space tames repetition noise and outliers
        points = []
        for n_tasks, secs in sorted(by_size.items()):
            logs = sorted(math.log(s) for s in secs)
            mid = len(logs) // 2
            median = (logs[mid] if len(logs) % 2
                      else 0.5 * (logs[mid - 1] + logs[mid]))
            points.append((math.log(n_tasks / 100.0), median))
        if len(points) >= 2:
            mean_x = sum(x for x, _ in points) / len(points)
            mean_y = sum(y for _, y in points) / len(points)
            var_x = sum((x - mean_x) ** 2 for x, _ in points)
            if var_x > 0:
                exponent = (sum((x - mean_x) * (y - mean_y)
                                for x, y in points) / var_x)
            else:
                exponent = fallback_table.get(key, fallback_table.get(None, (1.0, 2.0)))[1]
            # a measured exponent outside this band is noise, not physics
            exponent = min(max(exponent, 0.25), 4.0)
            coeff = math.exp(mean_y - exponent * mean_x)
        else:
            exponent = float(fallback_table.get(
                key, fallback_table.get(None, (1.0, 2.0)))[1])
            x, y = points[0]
            coeff = math.exp(y - exponent * x)
        priors[key] = (coeff, exponent)
    return priors


def assign_shards(coords: Sequence[tuple], count: int, *,
                  strategy: str = "cost-weighted", model: str = "continuous",
                  priors: Mapping[str, tuple[float, float]] | None = None,
                  ) -> list[int]:
    """Assign every grid coordinate to a shard; returns one index per coord.

    The assignment is a pure function of ``(coords, count, strategy,
    model, priors)`` — no RNG, no wall clock — so any process that derives
    the same grid derives the same partition.  Coordinates are the tuples
    of :func:`repro.batch.sweep.build_sweep_problems`:
    ``(graph_class, n_tasks, slack, alpha, instance_seed)``.
    """
    if count < 1:
        raise ShardError(f"shard count must be >= 1, got {count}")
    if strategy == "round-robin":
        return [i % count for i in range(len(coords))]
    if strategy == "cost-weighted":
        costs = [estimate_cost(c[0], c[1], model=model, priors=priors)
                 for c in coords]
        # LPT: heaviest instance first onto the lightest shard; ties break on
        # grid position and then on the lowest shard index, so the packing is
        # stable across processes and platforms
        order = sorted(range(len(coords)), key=lambda i: (-costs[i], i))
        heap: list[tuple[float, int]] = [(0.0, s) for s in range(count)]
        assignment = [0] * len(coords)
        for i in order:
            load, shard = heapq.heappop(heap)
            assignment[i] = shard
            heapq.heappush(heap, (load + costs[i], shard))
        return assignment
    raise ShardError(
        f"unknown shard strategy {strategy!r}; choose one of "
        f"{', '.join(SHARD_STRATEGIES)}"
    )


@dataclass(frozen=True)
class ShardSpec:
    """One shard of an ``N``-way deterministic grid partition.

    ``index`` is 0-based internally; the human-facing ``I/N`` spelling used
    by ``repro sweep --shard I/N`` is 1-based (``1/3`` is the first of three
    shards).  ``strategy`` selects the partitioning (see the module
    docstring); all legs of one sharded sweep must use the same strategy or
    the merge will report gaps/overlaps.
    """

    index: int
    count: int
    strategy: str = "cost-weighted"

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ShardError(f"shard count must be >= 1, got {self.count}")
        if not (0 <= self.index < self.count):
            raise ShardError(
                f"shard index must be in [0, {self.count}), got {self.index}"
            )
        if self.strategy not in SHARD_STRATEGIES:
            raise ShardError(
                f"unknown shard strategy {self.strategy!r}; choose one of "
                f"{', '.join(SHARD_STRATEGIES)}"
            )

    @classmethod
    def parse(cls, text: "str | ShardSpec", *,
              strategy: str = "cost-weighted") -> "ShardSpec":
        """Parse the 1-based CLI spelling ``I/N`` (``1/3`` .. ``3/3``)."""
        if isinstance(text, ShardSpec):
            return text
        match = _SHARD_RE.match(str(text))
        if not match:
            raise ShardError(
                f"could not parse shard {text!r}; expected I/N, e.g. 1/3"
            )
        one_based, count = int(match.group(1)), int(match.group(2))
        if count < 1:
            raise ShardError(f"shard count must be >= 1, got {text!r}")
        if not (1 <= one_based <= count):
            raise ShardError(
                f"shard {text!r} out of range: indices are 1-based, expected "
                f"1/{count} .. {count}/{count}"
            )
        return cls(index=one_based - 1, count=count, strategy=strategy)

    @property
    def spelling(self) -> str:
        """The 1-based ``I/N`` CLI spelling of this shard."""
        return f"{self.index + 1}/{self.count}"

    def select(self, coords: Sequence[tuple], *, model: str = "continuous",
               priors: Mapping[str, tuple[float, float]] | None = None,
               ) -> list[int]:
        """Positions of ``coords`` belonging to this shard, in grid order."""
        assignment = assign_shards(coords, self.count, strategy=self.strategy,
                                   model=model, priors=priors)
        return [i for i, shard in enumerate(assignment) if shard == self.index]


def grid_fingerprint(coords: Sequence[tuple],
                     params: Mapping[str, Any] | None = None) -> str:
    """Stable fingerprint of a sweep grid (coordinates + sweep parameters).

    A SHA-256 (truncated to 16 hex chars) over the canonical JSON of the
    *full* grid coordinates and the parameters that shape the results
    (model, mode count, speed cap, solver method, ...).  Two sweeps agree on
    their fingerprint exactly when their shards can be merged into one
    coherent table; the merge layer enforces this.
    """
    payload = {
        "grid": [list(coord) for coord in coords],
        "params": {str(k): v for k, v in (params or {}).items()},
    }
    blob = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]
