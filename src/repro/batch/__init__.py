"""Batch solving: process-pool fan-out and parameter-grid sweeps.

This subsystem turns the single-instance solvers into a throughput engine:
:func:`solve_many` maps :func:`repro.solve.solve` over many instances with
per-instance error capture (serially or across worker processes), and
:func:`sweep` expands deadline/alpha/graph-size grids into instances and
returns one table row per solve.  It is the layer the scalability
experiments (E7/E10), the ``repro sweep`` CLI subcommand and the
:class:`repro.service.SolverService` job front-end build on; pass a
:class:`repro.cache.ResultCache` to any of them and repeated instances are
answered from the content-addressed cache instead of the pool.

Quickstart
----------
Solve a grid of chains and trees over two deadline slacks on 4 workers::

    from repro.batch import sweep

    table = sweep(
        graph_classes=("chain", "tree"),
        sizes=(100, 1000),
        slacks=(1.2, 2.0),
        model="continuous",
        repetitions=3,
        seed=7,
        workers=4,
    )
    print(table.to_ascii())      # or table.to_csv()

Fan out hand-built problems and inspect failures::

    from repro.batch import solve_many, failed

    results = solve_many(problems, workers=8, chunk=4)
    for r in failed(results):
        print(f"{r.name}: {r.error_type}: {r.error}")

Every result is a :class:`~repro.batch.engine.BatchResult` with the energy,
makespan, solver name and wall-clock seconds of its instance; a failing
instance (infeasible deadline, solver blow-up) is captured as ``ok=False``
instead of aborting the batch.

From the command line::

    python -m repro sweep --classes chain,tree --sizes 100,1000 \\
        --slacks 1.2,2.0 --workers 4 --csv

Sharded sweeps split one grid across machines with no coordinator: every
leg re-derives the full grid from the base seed and solves only its
deterministic slice (:class:`~repro.batch.shard.ShardSpec`), writes a
fingerprinted JSON dump, and :func:`~repro.batch.merge.merge_shard_dumps`
reassembles the dumps into the exact unsharded table — refusing mismatched
grids, gaps and overlaps::

    shard = sweep(sizes=(100, 1000), shard="2/3", seed=7)   # leg 2 of 3
    merged = merge_shard_dumps(["s1.json", "s2.json", "s3.json"])
"""

from repro.batch.engine import BatchResult, failed, solve_many, summarize
from repro.batch.vectorized import (
    VECTORIZE_MAX_TASKS,
    InstanceSpec,
    solve_batch,
    spec_from_graph_dict,
    spec_from_problem,
)
from repro.batch.merge import (
    ShardDump,
    dump_payload,
    load_shard_dump,
    merge_report,
    merge_shard_dumps,
    rows_signature,
    write_shard_dump,
)
from repro.batch.shard import (
    SHARD_STRATEGIES,
    ShardSpec,
    assign_shards,
    estimate_cost,
    priors_from_rows,
    grid_fingerprint,
)
from repro.batch.sweep import (
    COORD_COLUMNS,
    SWEEP_COLUMNS,
    SweepPlan,
    build_sweep_coords,
    build_sweep_problems,
    grid_identity,
    plan_sweep,
    sweep,
    sweep_cache_stats,
    sweep_failures,
    sweep_table,
)

__all__ = [
    "BatchResult",
    "COORD_COLUMNS",
    "InstanceSpec",
    "SHARD_STRATEGIES",
    "SWEEP_COLUMNS",
    "ShardDump",
    "ShardSpec",
    "SweepPlan",
    "VECTORIZE_MAX_TASKS",
    "assign_shards",
    "priors_from_rows",
    "build_sweep_coords",
    "build_sweep_problems",
    "dump_payload",
    "estimate_cost",
    "failed",
    "grid_fingerprint",
    "grid_identity",
    "load_shard_dump",
    "merge_report",
    "merge_shard_dumps",
    "plan_sweep",
    "rows_signature",
    "solve_batch",
    "solve_many",
    "spec_from_graph_dict",
    "spec_from_problem",
    "summarize",
    "sweep",
    "sweep_cache_stats",
    "sweep_failures",
    "sweep_table",
]
