"""Merging per-shard sweep dumps back into the canonical full-grid table.

The counterpart of :mod:`repro.batch.shard`: each leg of a sharded sweep
writes a JSON *shard dump* (its rows plus a header carrying the grid
fingerprint, the shard identity and the full-grid coordinates), and this
module reassembles ``N`` such dumps into the exact table the unsharded
sweep would have produced — same coordinates, same results, canonical grid
order.

Merging is deliberately paranoid; each check raises a dedicated
:class:`~repro.utils.errors.MergeError` subclass so a CI merge job fails
loudly and precisely:

- **fingerprints** must agree across dumps
  (:class:`~repro.utils.errors.FingerprintMismatchError`: the dumps came
  from different grids, seeds, models or solver methods);
- **coverage** must be exact — every grid coordinate appears in exactly one
  dump (:class:`~repro.utils.errors.ShardGapError` for uncovered
  coordinates, :class:`~repro.utils.errors.ShardOverlapError` for
  duplicated or foreign rows);
- **shape** must be consistent — same columns, same shard count, same
  partitioning strategy, no duplicated shard index
  (:class:`~repro.utils.errors.MergeError`).

Cache awareness comes for free: shard legs that share a result-cache
directory (``repro sweep --shard I/N --cache-dir X``) populate one
content-addressed store, so re-running the merged grid against that store
is served entirely warm — the merge itself never re-solves anything.
"""

from __future__ import annotations

import json
import os
from collections import Counter, deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Sequence

from repro.utils.atomicio import atomic_write_text
from repro.utils.errors import (
    FingerprintMismatchError,
    MergeError,
    ShardGapError,
    ShardOverlapError,
)
from repro.utils.tables import Table
from repro.batch.sweep import COORD_COLUMNS

#: ``kind`` marker of a shard-dump JSON document.
SHARD_DUMP_KIND = "repro-sweep-shard"

#: Dump format version, bumped on incompatible schema changes.  Written as
#: ``schema_version`` (the repo-wide field name; the original ``version``
#: key is kept for readers of older dumps) and validated on load.
SHARD_DUMP_VERSION = 1


@dataclass
class ShardDump:
    """One shard's row dump plus the header identifying its grid."""

    fingerprint: str
    shard_index: int
    shard_count: int
    strategy: str
    columns: list[str]
    rows: list[list[Any]]
    grid: list[tuple]
    params: dict[str, Any] = field(default_factory=dict)
    title: str = ""
    path: str = "<memory>"

    @classmethod
    def from_payload(cls, payload: Any, *, path: str = "<memory>") -> "ShardDump":
        """Validate a parsed JSON document into a :class:`ShardDump`."""
        if not isinstance(payload, dict):
            raise MergeError(f"{path}: not a shard dump (expected a JSON object)")
        if payload.get("kind") != SHARD_DUMP_KIND:
            raise MergeError(
                f"{path}: not a shard dump (kind={payload.get('kind')!r}, "
                f"expected {SHARD_DUMP_KIND!r})"
            )
        from repro.api.protocol import check_schema_version

        versioned = dict(payload)
        versioned.setdefault("schema_version", versioned.get("version", 1))
        check_schema_version(versioned, what=f"{path} (shard dump)",
                             supported=SHARD_DUMP_VERSION)
        missing = [k for k in ("fingerprint", "shard_index", "shard_count",
                               "strategy", "columns", "rows", "grid")
                   if k not in payload]
        if missing:
            raise MergeError(f"{path}: shard dump is missing {missing}")
        try:
            dump = cls(
                fingerprint=str(payload["fingerprint"]),
                shard_index=int(payload["shard_index"]),
                shard_count=int(payload["shard_count"]),
                strategy=str(payload["strategy"]),
                columns=[str(c) for c in payload["columns"]],
                rows=[list(r) for r in payload["rows"]],
                grid=[tuple(c) for c in payload["grid"]],
                params=dict(payload.get("params") or {}),
                title=str(payload.get("title", "")),
                path=path,
            )
        except (TypeError, ValueError) as exc:
            raise MergeError(f"{path}: malformed shard dump: {exc}") from exc
        if not 0 <= dump.shard_index < max(dump.shard_count, 1):
            raise MergeError(
                f"{path}: shard_index {dump.shard_index} out of range for "
                f"shard_count {dump.shard_count}"
            )
        n_cols = len(dump.columns)
        bad = [i for i, row in enumerate(dump.rows) if len(row) != n_cols]
        if bad:
            raise MergeError(
                f"{path}: rows {bad[:5]} do not match the {n_cols}-column header"
            )
        return dump

    @property
    def spelling(self) -> str:
        """1-based ``I/N`` spelling of this dump's shard."""
        return f"{self.shard_index + 1}/{self.shard_count}"


def dump_payload(table: Table) -> dict[str, Any]:
    """Shard-dump JSON document for a table produced by :func:`repro.batch.sweep`.

    Requires the table's ``manifest`` attribute (set by ``sweep()``) — the
    full-grid coordinates, fingerprint and parameters that make the dump
    self-contained and mergeable.
    """
    manifest = getattr(table, "manifest", None)
    if not isinstance(manifest, dict):
        raise MergeError(
            "table has no sweep manifest; only tables returned by "
            "repro.batch.sweep(...) can be dumped as shards"
        )
    return {
        "kind": SHARD_DUMP_KIND,
        "version": SHARD_DUMP_VERSION,
        "schema_version": SHARD_DUMP_VERSION,
        "title": table.title,
        "columns": list(table.columns),
        "rows": [list(row) for row in table.rows],
        **manifest,
    }


def write_shard_dump(path: "str | os.PathLike", table: Table) -> Path:
    """Write a sweep table (and its manifest) as a shard-dump JSON file."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    # a concurrently-running merge must never read a half-written shard
    atomic_write_text(target,
                      json.dumps(dump_payload(table), indent=2, default=repr)
                      + "\n")
    return target


def load_shard_dump(path: "str | os.PathLike") -> ShardDump:
    """Read and validate one shard-dump JSON file."""
    p = Path(path)
    try:
        payload = json.loads(p.read_text(encoding="utf-8"))
    except OSError as exc:
        raise MergeError(f"{p}: cannot read shard dump: {exc}") from exc
    except ValueError as exc:
        raise MergeError(f"{p}: corrupt shard dump (invalid JSON): {exc}") from exc
    return ShardDump.from_payload(payload, path=str(p))


def _coord_of(row: Sequence[Any], coord_slots: Sequence[int]) -> tuple:
    return tuple(row[i] for i in coord_slots)


def merge_shard_dumps(dumps: Iterable["ShardDump | str | os.PathLike"], *,
                      title: str = "merged sweep") -> Table:
    """Reassemble shard dumps into the canonical full-grid sweep table.

    Accepts :class:`ShardDump` objects or paths (mixed freely).  Rows come
    back in grid order — the exact order the unsharded sweep emits — with
    each row keeping the ``shard_index`` of the leg that produced it, so
    provenance survives the merge.  See the module docstring for the
    validation performed and the errors raised.
    """
    loaded = [d if isinstance(d, ShardDump) else load_shard_dump(d)
              for d in dumps]
    if not loaded:
        raise MergeError("no shard dumps to merge")
    loaded.sort(key=lambda d: (d.shard_index, d.path))
    first = loaded[0]

    fingerprints = {d.fingerprint for d in loaded}
    if len(fingerprints) > 1:
        detail = ", ".join(f"{d.path}={d.fingerprint}" for d in loaded)
        raise FingerprintMismatchError(
            f"shard dumps disagree on the grid fingerprint ({detail}); they "
            "were produced from different grids, seeds, models or methods"
        )
    for d in loaded[1:]:
        if d.columns != first.columns:
            raise MergeError(
                f"{d.path}: columns differ from {first.path}: "
                f"{d.columns} != {first.columns}"
            )
        if d.shard_count != first.shard_count:
            raise MergeError(
                f"{d.path}: shard_count {d.shard_count} != "
                f"{first.shard_count} of {first.path}"
            )
        if d.strategy != first.strategy:
            raise MergeError(
                f"{d.path}: partitioning strategy {d.strategy!r} != "
                f"{first.strategy!r} of {first.path}; all legs of one sweep "
                "must shard the same way"
            )
    seen_indices: dict[int, str] = {}
    for d in loaded:
        if d.shard_index in seen_indices:
            raise ShardOverlapError(
                f"shard {d.spelling} appears twice: "
                f"{seen_indices[d.shard_index]} and {d.path}"
            )
        seen_indices[d.shard_index] = d.path

    try:
        coord_slots = [first.columns.index(c) for c in COORD_COLUMNS]
    except ValueError as exc:
        raise MergeError(
            f"{first.path}: dump lacks the coordinate columns "
            f"{COORD_COLUMNS}: {exc}"
        ) from exc

    expected = Counter(first.grid)
    got: Counter = Counter()
    by_coord: dict[tuple, deque] = {}
    sources: dict[tuple, list[str]] = {}
    for d in loaded:
        for row in d.rows:
            coord = _coord_of(row, coord_slots)
            got[coord] += 1
            by_coord.setdefault(coord, deque()).append(row)
            sources.setdefault(coord, []).append(d.spelling)

    extras = got - expected
    if extras:
        detail = "; ".join(
            f"{coord} x{n} (from shard {', '.join(sources[coord])})"
            for coord, n in list(extras.items())[:5])
        raise ShardOverlapError(
            f"{sum(extras.values())} duplicate or foreign row(s) across "
            f"{len(loaded)} dump(s): {detail}"
        )
    missing = expected - got
    if missing:
        detail = "; ".join(str(coord) for coord in list(missing)[:5])
        raise ShardGapError(
            f"{sum(missing.values())} grid coordinate(s) uncovered by the "
            f"{len(loaded)} dump(s) (shard leg missing or truncated?): {detail}"
        )

    merged = Table(columns=list(first.columns),
                   title=f"{title} [{len(loaded)} shards, "
                         f"fingerprint {first.fingerprint}]")
    for coord in first.grid:
        merged.rows.append(list(by_coord[coord].popleft()))
    merged.manifest = {
        "fingerprint": first.fingerprint,
        "shard_index": 0,
        "shard_count": 1,
        "strategy": "merged",
        "params": dict(first.params),
        "grid": [list(coord) for coord in first.grid],
    }
    return merged


def merge_report(dumps: Sequence[ShardDump], merged: Table) -> dict[str, Any]:
    """Human-oriented summary counters of a completed merge."""
    return {
        "fingerprint": dumps[0].fingerprint if dumps else "",
        "n_shards": len(dumps),
        "shard_rows": {d.spelling: len(d.rows)
                       for d in sorted(dumps, key=lambda d: d.shard_index)},
        "total_rows": len(merged),
    }


def rows_signature(table: Table, *, digits: int = 9) -> list[tuple]:
    """Order-independent signature of a sweep table's result content.

    One tuple per row: the grid coordinates plus the result columns that are
    deterministic across machines (``ok``, ``solver``, ``energy``,
    ``makespan`` — rounded to ``digits`` — and ``error``), excluding
    wall-clock, cache and shard provenance columns.  Two tables describe the
    same sweep outcome exactly when their signatures match — the acceptance
    check for "sharded + merged == unsharded".
    """
    keep = list(COORD_COLUMNS) + ["ok", "solver", "energy", "makespan", "error"]
    slots = [list(table.columns).index(c) for c in keep]
    signature = []
    for row in table.rows:
        values = []
        for c, i in zip(keep, slots):
            v = row[i]
            if c in ("energy", "makespan") and isinstance(v, float):
                v = round(v, digits)
            values.append(v)
        signature.append(tuple(values))
    return sorted(signature, key=repr)
