"""Grid sweeps over deadline slack, power exponent and graph size.

:func:`sweep` expands a Cartesian grid of workload parameters into concrete
``MinEnergy(G, D)`` instances, fans them out through
:func:`repro.batch.engine.solve_many`, and returns one table row per
instance (failures included, with the error recorded) so trajectories can
be compared across runs or dumped to CSV/JSON.

The grid axes mirror the experiment harness: graph class and size (the
generators of :mod:`repro.graphs.generators`), deadline slack (``D`` as a
multiple of the minimum makespan), power exponent ``alpha`` and the energy
model.  Repetitions re-draw the random graph with per-cell derived seeds,
so a sweep is reproducible from its base seed alone — and every row records
its own instance seed and ``cache_hit`` flag, so a single row is too.

Passing a :class:`repro.cache.ResultCache` makes repeated sweeps
near-free: a second identical run is served entirely from the cache (the
``cache_hit`` column reports it per row, :func:`sweep_cache_stats`
aggregates the hit rate).

Sharding: passing ``shard=`` (a :class:`repro.batch.shard.ShardSpec` or its
``"I/N"`` CLI spelling) solves only that shard's deterministic slice of the
grid.  Coordinate enumeration is separate from problem materialisation, so
a shard leg derives the *full* grid (cheap) but only builds and solves its
own instances; every emitted row is tagged with ``shard_index`` /
``shard_count`` / ``grid_fingerprint`` and the per-shard dumps reassemble
through :mod:`repro.batch.merge`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping, Sequence

from repro.core.models import ContinuousModel
from repro.core.power import PowerLaw
from repro.core.problem import MinEnergyProblem
from repro.experiments.workloads import WorkloadSpec, make_workload, matching_models
from repro.utils.errors import (
    InvalidArgumentTypeError,
    InvalidModelError,
    InvalidParameterError,
)
from repro.utils.rng import spawn_rngs
from repro.utils.tables import Table
from repro.batch.engine import BatchResult, solve_many
from repro.batch.shard import ShardSpec, grid_fingerprint

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cache import ResultCache

#: Columns of the table returned by :func:`sweep`, one row per instance.
SWEEP_COLUMNS = (
    "graph_class", "n_tasks", "slack", "alpha", "seed", "ok", "solver",
    "energy", "makespan", "seconds", "build_seconds", "solve_seconds",
    "cache_hit", "error",
    "shard_index", "shard_count", "grid_fingerprint",
)

#: Leading columns identifying an instance; merge keys rows on these.
COORD_COLUMNS = ("graph_class", "n_tasks", "slack", "alpha", "seed")

#: ``build_sweep_problems`` keyword defaults, applied when fingerprinting a
#: grid so an implicit and an explicit default produce the same fingerprint.
GRID_DEFAULTS: dict[str, Any] = dict(
    graph_classes=("chain", "tree", "layered"), sizes=(32,), slacks=(1.5,),
    alphas=(3.0,), model="continuous", n_modes=5, s_max=1.0,
    n_processors=0, mapping="none", repetitions=1, seed=0,
)


def build_sweep_coords(*, graph_classes: Sequence[str] = ("chain", "tree", "layered"),
                       sizes: Sequence[int] = (32,),
                       slacks: Sequence[float] = (1.5,),
                       alphas: Sequence[float] = (3.0,),
                       model: str = "continuous",
                       repetitions: int = 1, seed: int = 0) -> list[tuple]:
    """Enumerate the full grid coordinates of a sweep (no graphs built).

    Returns ``(graph_class, n_tasks, slack, alpha, instance_seed)`` per
    instance, in canonical grid order.  This is the cheap half of
    :func:`build_sweep_problems`: instance seeds derive from the base seed
    alone, so every shard of a distributed sweep re-derives the identical
    list and partitions it identically.
    """
    if model not in ("continuous", "discrete", "vdd", "incremental"):
        raise InvalidModelError(
            f"unknown sweep model {model!r}; choose continuous, discrete, "
            "vdd or incremental"
        )
    cells = [(cls, int(n), float(slack), float(alpha))
             for cls in graph_classes
             for n in sizes
             for slack in slacks
             for alpha in alphas]
    rngs = spawn_rngs(seed, len(cells) * repetitions)
    coords: list[tuple] = []
    for c, (cls, n, slack, alpha) in enumerate(cells):
        for rep in range(repetitions):
            instance_seed = int(rngs[c * repetitions + rep].integers(0, 2**31 - 1))
            coords.append((cls, n, slack, alpha, instance_seed))
    return coords


def build_sweep_problems(*, graph_classes: Sequence[str] = ("chain", "tree", "layered"),
                         sizes: Sequence[int] = (32,),
                         slacks: Sequence[float] = (1.5,),
                         alphas: Sequence[float] = (3.0,),
                         model: str = "continuous", n_modes: int = 5,
                         s_max: float = 1.0,
                         n_processors: int = 0, mapping: str = "none",
                         repetitions: int = 1, seed: int = 0,
                         positions: Sequence[int] | None = None,
                         grid: Sequence[tuple] | None = None,
                         ) -> tuple[list[MinEnergyProblem], list[tuple]]:
    """Materialise the problem grid of a sweep.

    Returns the problem list and, aligned with it, the grid coordinates
    ``(graph_class, n_tasks, slack, alpha, instance_seed)`` of every
    instance.  ``positions`` restricts materialisation to those indices of
    the full grid (the sharding fast path: coordinates are always derived
    for the whole grid, but graphs are only generated for the selected
    slice), and ``grid`` supplies pre-enumerated full-grid coordinates
    (from :func:`build_sweep_coords` with the same axes) so callers that
    already derived them do not pay the enumeration twice.

    ``s_max`` only applies to the Continuous model; pass ``float("inf")``
    for the uncapped Theorem-2 regime, where deep trees and chains stay on
    the O(n) structured solvers instead of falling back to the numerical
    one when the closed form exceeds the cap.  (The deadline is always
    measured against the reference speed 1.0, so rows stay comparable
    across caps.)
    """
    if grid is None:
        grid = build_sweep_coords(graph_classes=graph_classes, sizes=sizes,
                                  slacks=slacks, alphas=alphas, model=model,
                                  repetitions=repetitions, seed=seed)
    if positions is None:
        selected = list(range(len(grid)))
    else:
        selected = list(positions)
        out_of_range = [p for p in selected if not 0 <= p < len(grid)]
        if out_of_range:
            raise InvalidParameterError(
                f"positions out of range for a {len(grid)}-instance grid: "
                f"{out_of_range}"
            )
    models = matching_models(1.0, n_modes)
    if model == "continuous":
        models = dict(models, continuous=ContinuousModel(s_max=float(s_max)))
    problems: list[MinEnergyProblem] = []
    coords: list[tuple] = []
    for p in selected:
        cls, n, slack, alpha, instance_seed = grid[p]
        spec = WorkloadSpec(graph_class=cls, n_tasks=n,
                            n_processors=n_processors, mapping=mapping,
                            slack=slack, seed=instance_seed)
        base = make_workload(spec, model=models[model])
        problem = MinEnergyProblem(
            graph=base.graph, deadline=base.deadline, model=base.model,
            power=PowerLaw(alpha=alpha), name=base.name,
        )
        problems.append(problem)
        coords.append(grid[p])
    return problems, coords


def grid_identity(*, method: str | None = None, exact: bool | None = None,
                  **grid_kwargs: Any
                  ) -> tuple[list[tuple], str, dict[str, Any]]:
    """The cheap half of :func:`plan_sweep`: coordinates + fingerprint.

    Returns ``(grid, fingerprint, params)`` without materialising a single
    graph, so callers that only need the grid's identity — fleet shard
    submission stamping N records with one fingerprint, pre-flight
    validation — do not pay for problem construction.  This is the single
    definition of the fingerprint recipe; :func:`plan_sweep` (and through
    it every sweep run) uses it, which is what guarantees a fingerprint
    stamped at submit time matches the one the runner computes.
    """
    unknown = set(grid_kwargs) - set(GRID_DEFAULTS)
    if unknown:
        raise InvalidArgumentTypeError(f"unknown sweep grid arguments: {sorted(unknown)}")
    params = {**GRID_DEFAULTS, **grid_kwargs}
    grid = build_sweep_coords(
        graph_classes=params["graph_classes"], sizes=params["sizes"],
        slacks=params["slacks"], alphas=params["alphas"],
        model=params["model"], repetitions=params["repetitions"],
        seed=params["seed"])
    fingerprint = grid_fingerprint(grid, {
        "model": params["model"], "n_modes": params["n_modes"],
        "s_max": float(params["s_max"]),
        "n_processors": int(params["n_processors"]),
        "mapping": params["mapping"], "method": method, "exact": exact,
    })
    return grid, fingerprint, params


@dataclass
class SweepPlan:
    """A fully resolved sweep: instances, grid identity and shard slice.

    ``grid`` always holds the *full* grid coordinates (what a merge must
    cover); ``problems``/``coords`` hold only this plan's slice — the whole
    grid when ``shard`` is ``None``.  ``fingerprint`` identifies the grid
    plus the result-shaping parameters, and is what the merge layer
    validates across shard dumps.
    """

    problems: list[MinEnergyProblem]
    coords: list[tuple]
    grid: list[tuple]
    fingerprint: str
    shard: ShardSpec | None = None
    params: dict[str, Any] = field(default_factory=dict)

    def manifest(self) -> dict[str, Any]:
        """JSON-able shard-dump header (see :mod:`repro.batch.merge`)."""
        return {
            "fingerprint": self.fingerprint,
            "shard_index": self.shard.index if self.shard else 0,
            "shard_count": self.shard.count if self.shard else 1,
            "strategy": self.shard.strategy if self.shard else "unsharded",
            "params": {k: (list(v) if isinstance(v, tuple) else v)
                       for k, v in self.params.items()},
            "grid": [list(coord) for coord in self.grid],
        }


def plan_sweep(*, shard: "ShardSpec | str | None" = None,
               method: str | None = None, exact: bool | None = None,
               priors: Mapping[str, tuple[float, float]] | None = None,
               **grid_kwargs: Any) -> SweepPlan:
    """Resolve a (possibly sharded) sweep grid into a :class:`SweepPlan`.

    ``grid_kwargs`` are the keyword arguments of
    :func:`build_sweep_problems`; unspecified axes take the same defaults.
    The fingerprint hashes the *normalised* grid coordinates (so an axis
    spelled ``2`` vs ``2.0``, or a default spelled out explicitly, does not
    change the grid identity) plus the parameters that shape results
    without appearing in the coordinates: the model knobs (``n_modes``,
    ``s_max``, ``n_processors``, ``mapping``) and ``method``/``exact`` —
    shards solved with different solver methods refuse to merge.
    """
    grid, fingerprint, params = grid_identity(method=method, exact=exact,
                                              **grid_kwargs)
    spec = ShardSpec.parse(shard) if shard is not None else None
    positions = (spec.select(grid, model=params["model"], priors=priors)
                 if spec is not None else None)
    problems, coords = build_sweep_problems(**params, positions=positions,
                                            grid=grid)
    return SweepPlan(problems=problems, coords=coords, grid=grid,
                     fingerprint=fingerprint, shard=spec,
                     params={**params, "method": method, "exact": exact})


def sweep_table(coords: Sequence[tuple], results: Sequence[BatchResult], *,
                title: str = "batch sweep", shard: ShardSpec | None = None,
                fingerprint: str = "") -> Table:
    """Assemble the one-row-per-instance sweep table.

    Shared by :func:`sweep` and the :class:`repro.service.SolverService`
    job front-end, so CLI sweeps and submitted jobs emit identical rows.
    Every row is tagged with its shard identity (``0``/``1`` for an
    unsharded run) and the grid fingerprint, which is what lets the merge
    layer validate per-shard dumps against each other.

    The leading cells are the *grid coordinates* verbatim — in particular
    ``n_tasks`` is the requested size, not the generated graph's task
    count (a ``fork(n)`` has ``n + 1`` tasks, mappings can reshape the
    graph) — so every row keys back to exactly one grid coordinate and
    shard dumps merge for every graph class.
    """
    shard_index = shard.index if shard is not None else 0
    shard_count = shard.count if shard is not None else 1
    table = Table(columns=list(SWEEP_COLUMNS), title=title)
    for coord, result in zip(coords, results):
        cls, n, slack, alpha, instance_seed = coord
        table.add_row(cls, n, slack, alpha, instance_seed,
                      result.ok, result.solver, result.energy,
                      result.makespan, result.seconds,
                      result.build_seconds, result.solve_seconds,
                      result.cache_hit,
                      result.error, shard_index, shard_count, fingerprint)
    return table


def sweep(*, graph_classes: Sequence[str] = ("chain", "tree", "layered"),
          sizes: Sequence[int] = (32,),
          slacks: Sequence[float] = (1.5,),
          alphas: Sequence[float] = (3.0,),
          model: str = "continuous", n_modes: int = 5,
          s_max: float = 1.0,
          n_processors: int = 0, mapping: str = "none",
          repetitions: int = 1, seed: int = 0,
          workers: int | None = None, chunk: int = 1,
          method: str | None = None,
          exact: bool | None = None, validate: bool = True,
          cache: "ResultCache | None" = None,
          shard: "ShardSpec | str | None" = None,
          priors: Mapping[str, tuple[float, float]] | None = None,
          title: str = "batch sweep") -> Table:
    """Run a deadline/alpha/graph-size grid and return one row per instance.

    Parameters mirror :func:`build_sweep_problems` plus the fan-out knobs of
    :func:`repro.batch.engine.solve_many` (``workers``, ``chunk``,
    ``method``, ``exact``, ``validate``, ``cache``).  Failed instances
    appear as rows with ``ok=False`` and the error recorded, so a sweep
    never dies half way through a grid.

    ``shard`` (a :class:`ShardSpec` or the 1-based ``"I/N"`` CLI spelling)
    restricts the run to one deterministic slice of the grid; the returned
    table then holds only that shard's rows, tagged accordingly.  The
    table's ``manifest`` attribute carries the full-grid coordinates,
    fingerprint and parameters needed to write a mergeable shard dump (see
    :func:`repro.batch.merge.write_shard_dump`).

    ``priors`` overrides the static per-graph-class timing priors of the
    cost-weighted partitioner — typically the output of
    :func:`repro.batch.shard.priors_from_rows` fitted on a previous run's
    measured ``seconds`` (the ``repro sweep --priors-from`` hook).  Every
    shard leg must pass the same priors or the partitions will disagree.
    """
    plan = plan_sweep(
        shard=shard, method=method, exact=exact, priors=priors,
        graph_classes=graph_classes, sizes=sizes, slacks=slacks, alphas=alphas,
        model=model, n_modes=n_modes, s_max=s_max, n_processors=n_processors,
        mapping=mapping, repetitions=repetitions, seed=seed,
    )
    results = solve_many(plan.problems, workers=workers, chunk=chunk,
                         method=method, exact=exact, validate=validate,
                         cache=cache, seeds=[coord[-1] for coord in plan.coords])
    if plan.shard is not None:
        title = f"{title} [shard {plan.shard.spelling}]"
    table = sweep_table(plan.coords, results, title=title, shard=plan.shard,
                        fingerprint=plan.fingerprint)
    table.manifest = plan.manifest()
    return table


def sweep_failures(table: Table) -> list[str]:
    """Error messages of the failed rows of a sweep table."""
    errors = table.column("error")
    return [e for ok, e in zip(table.column("ok"), errors) if not ok]


def sweep_cache_stats(table: Table) -> dict[str, float | int]:
    """Cache counters of a sweep table: hits, misses and the hit rate."""
    hits = sum(1 for h in table.column("cache_hit") if h)
    total = len(table)
    return {
        "hits": hits,
        "misses": total - hits,
        "hit_rate": hits / total if total else 0.0,
    }
