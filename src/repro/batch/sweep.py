"""Grid sweeps over deadline slack, power exponent and graph size.

:func:`sweep` expands a Cartesian grid of workload parameters into concrete
``MinEnergy(G, D)`` instances, fans them out through
:func:`repro.batch.engine.solve_many`, and returns one table row per
instance (failures included, with the error recorded) so trajectories can
be compared across runs or dumped to CSV/JSON.

The grid axes mirror the experiment harness: graph class and size (the
generators of :mod:`repro.graphs.generators`), deadline slack (``D`` as a
multiple of the minimum makespan), power exponent ``alpha`` and the energy
model.  Repetitions re-draw the random graph with per-cell derived seeds,
so a sweep is reproducible from its base seed alone — and every row records
its own instance seed and ``cache_hit`` flag, so a single row is too.

Passing a :class:`repro.cache.ResultCache` makes repeated sweeps
near-free: a second identical run is served entirely from the cache (the
``cache_hit`` column reports it per row, :func:`sweep_cache_stats`
aggregates the hit rate).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.core.models import ContinuousModel
from repro.core.power import PowerLaw
from repro.core.problem import MinEnergyProblem
from repro.experiments.workloads import WorkloadSpec, make_workload, matching_models
from repro.utils.errors import InvalidModelError
from repro.utils.rng import spawn_rngs
from repro.utils.tables import Table
from repro.batch.engine import BatchResult, solve_many

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cache import ResultCache

#: Columns of the table returned by :func:`sweep`, one row per instance.
SWEEP_COLUMNS = (
    "graph_class", "n_tasks", "slack", "alpha", "seed", "ok", "solver",
    "energy", "makespan", "seconds", "cache_hit", "error",
)


def build_sweep_problems(*, graph_classes: Sequence[str] = ("chain", "tree", "layered"),
                         sizes: Sequence[int] = (32,),
                         slacks: Sequence[float] = (1.5,),
                         alphas: Sequence[float] = (3.0,),
                         model: str = "continuous", n_modes: int = 5,
                         s_max: float = 1.0,
                         n_processors: int = 0, mapping: str = "none",
                         repetitions: int = 1, seed: int = 0,
                         ) -> tuple[list[MinEnergyProblem], list[tuple]]:
    """Materialise the problem grid of a sweep.

    Returns the problem list and, aligned with it, the grid coordinates
    ``(graph_class, n_tasks, slack, alpha, instance_seed)`` of every
    instance.

    ``s_max`` only applies to the Continuous model; pass ``float("inf")``
    for the uncapped Theorem-2 regime, where deep trees and chains stay on
    the O(n) structured solvers instead of falling back to the numerical
    one when the closed form exceeds the cap.  (The deadline is always
    measured against the reference speed 1.0, so rows stay comparable
    across caps.)
    """
    if model not in ("continuous", "discrete", "vdd", "incremental"):
        raise InvalidModelError(
            f"unknown sweep model {model!r}; choose continuous, discrete, "
            "vdd or incremental"
        )
    cells = [(cls, int(n), float(slack), float(alpha))
             for cls in graph_classes
             for n in sizes
             for slack in slacks
             for alpha in alphas]
    rngs = spawn_rngs(seed, len(cells) * repetitions)
    models = matching_models(1.0, n_modes)
    if model == "continuous":
        models = dict(models, continuous=ContinuousModel(s_max=float(s_max)))
    problems: list[MinEnergyProblem] = []
    coords: list[tuple] = []
    for c, cell in enumerate(cells):
        cls, n, slack, alpha = cell
        for rep in range(repetitions):
            instance_seed = int(rngs[c * repetitions + rep].integers(0, 2**31 - 1))
            spec = WorkloadSpec(graph_class=cls, n_tasks=n,
                                n_processors=n_processors, mapping=mapping,
                                slack=slack, seed=instance_seed)
            base = make_workload(spec, model=models[model])
            problem = MinEnergyProblem(
                graph=base.graph, deadline=base.deadline, model=base.model,
                power=PowerLaw(alpha=alpha), name=base.name,
            )
            problems.append(problem)
            coords.append((cls, n, slack, alpha, instance_seed))
    return problems, coords


def sweep_table(coords: Sequence[tuple], results: Sequence[BatchResult], *,
                title: str = "batch sweep") -> Table:
    """Assemble the one-row-per-instance sweep table.

    Shared by :func:`sweep` and the :class:`repro.service.SolverService`
    job front-end, so CLI sweeps and submitted jobs emit identical rows.
    """
    table = Table(columns=list(SWEEP_COLUMNS), title=title)
    for coord, result in zip(coords, results):
        cls, n, slack, alpha, instance_seed = coord
        table.add_row(cls, result.n_tasks, slack, alpha, instance_seed,
                      result.ok, result.solver, result.energy,
                      result.makespan, result.seconds, result.cache_hit,
                      result.error)
    return table


def sweep(*, graph_classes: Sequence[str] = ("chain", "tree", "layered"),
          sizes: Sequence[int] = (32,),
          slacks: Sequence[float] = (1.5,),
          alphas: Sequence[float] = (3.0,),
          model: str = "continuous", n_modes: int = 5,
          s_max: float = 1.0,
          n_processors: int = 0, mapping: str = "none",
          repetitions: int = 1, seed: int = 0,
          workers: int | None = None, chunk: int = 1,
          method: str | None = None,
          exact: bool | None = None, validate: bool = True,
          cache: "ResultCache | None" = None,
          title: str = "batch sweep") -> Table:
    """Run a deadline/alpha/graph-size grid and return one row per instance.

    Parameters mirror :func:`build_sweep_problems` plus the fan-out knobs of
    :func:`repro.batch.engine.solve_many` (``workers``, ``chunk``,
    ``method``, ``exact``, ``validate``, ``cache``).  Failed instances
    appear as rows with ``ok=False`` and the error message in the last
    column, so a sweep never dies half way through a grid.
    """
    problems, coords = build_sweep_problems(
        graph_classes=graph_classes, sizes=sizes, slacks=slacks, alphas=alphas,
        model=model, n_modes=n_modes, s_max=s_max, n_processors=n_processors,
        mapping=mapping, repetitions=repetitions, seed=seed,
    )
    results = solve_many(problems, workers=workers, chunk=chunk, method=method,
                         exact=exact, validate=validate, cache=cache,
                         seeds=[coord[-1] for coord in coords])
    return sweep_table(coords, results, title=title)


def sweep_failures(table: Table) -> list[str]:
    """Error messages of the failed rows of a sweep table."""
    errors = table.column("error")
    return [e for ok, e in zip(table.column("ok"), errors) if not ok]


def sweep_cache_stats(table: Table) -> dict[str, float | int]:
    """Cache counters of a sweep table: hits, misses and the hit rate."""
    hits = sum(1 for h in table.column("cache_hit") if h)
    total = len(table)
    return {
        "hits": hits,
        "misses": total - hits,
        "hit_rate": hits / total if total else 0.0,
    }
